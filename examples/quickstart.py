"""Quickstart: build a bag-constrained instance, solve it, inspect the result.

Run with::

    python examples/quickstart.py

Covers the core public API: building an :class:`~repro.core.Instance`,
running baselines and the EPTAS, validating the schedules, comparing against
lower bounds and the exact optimum, and serialising instances/schedules.
"""

from __future__ import annotations

from repro.baselines import greedy_schedule, lpt_schedule
from repro.bounds import best_lower_bound
from repro.core import Instance
from repro.eptas import eptas_schedule
from repro.exact import exact_schedule


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Build an instance.  Jobs are (size, bag) pairs; at most one job of
    #    each bag may run on a machine.  Here: 4 machines, 3 "services" whose
    #    replicas must be separated, plus a handful of independent tasks.
    # ------------------------------------------------------------------
    sizes = [
        5.0, 5.0, 5.0, 5.0,      # service 0: four replicas
        3.0, 3.0, 3.0,           # service 1: three replicas
        4.0, 4.0,                # service 2: two replicas
        2.0, 2.5, 1.5, 1.0, 6.0, # independent tasks
    ]
    bags = [
        0, 0, 0, 0,
        1, 1, 1,
        2, 2,
        3, 4, 5, 6, 7,
    ]
    instance = Instance.from_sizes(sizes, bags, num_machines=4, name="quickstart")
    print(instance)
    print("instance stats:", instance.stats().to_dict())

    # ------------------------------------------------------------------
    # 2. Lower bounds tell us what any schedule must pay.
    # ------------------------------------------------------------------
    bounds = best_lower_bound(instance, use_lp=True)
    print("\nlower bounds:", bounds.to_dict())

    # ------------------------------------------------------------------
    # 3. Baselines: greedy list scheduling and bag-aware LPT.
    # ------------------------------------------------------------------
    greedy = greedy_schedule(instance)
    lpt = lpt_schedule(instance)
    print(f"\ngreedy list scheduling : makespan {greedy.makespan:.3f}")
    print(f"bag-aware LPT          : makespan {lpt.makespan:.3f}")

    # ------------------------------------------------------------------
    # 4. The paper's EPTAS.  eps controls the accuracy/cost trade-off.
    # ------------------------------------------------------------------
    eptas = eptas_schedule(instance, eps=0.25)
    print(f"EPTAS (eps = 1/4)      : makespan {eptas.makespan:.3f}")
    print("  diagnostics:", {
        key: eptas.diagnostics.get(key)
        for key in ("search_iterations", "num_patterns", "integer_variables", "k")
    })

    # ------------------------------------------------------------------
    # 5. Exact optimum (small instance, so this is cheap) and ratios.
    # ------------------------------------------------------------------
    exact = exact_schedule(instance)
    print(f"exact optimum          : makespan {exact.makespan:.3f}")
    for result in (greedy, lpt, eptas):
        print(f"  {result.solver:12s} ratio to optimum: {result.makespan / exact.makespan:.4f}")

    # ------------------------------------------------------------------
    # 6. Every schedule is a validated, feasible assignment; inspect it.
    # ------------------------------------------------------------------
    schedule = eptas.schedule
    schedule.validate()
    print("\nEPTAS schedule (machine -> jobs):")
    for machine, jobs in enumerate(schedule.machine_jobs()):
        described = ", ".join(f"job{job.id}(bag {job.bag}, {job.size:g})" for job in jobs)
        print(f"  machine {machine} [load {schedule.load(machine):.2f}]: {described}")

    # ------------------------------------------------------------------
    # 7. Instances and schedules serialise to JSON.
    # ------------------------------------------------------------------
    print("\ninstance JSON snippet:", instance.to_json(indent=None)[:100], "...")
    print("schedule JSON snippet:", schedule.to_json(indent=None)[:100], "...")


if __name__ == "__main__":
    main()
