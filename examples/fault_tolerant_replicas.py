"""Fault-tolerant replica placement — the paper's motivating scenario.

The introduction of the paper motivates bag constraints with parallel and
distributed systems: replicas of a service must run on *different* machines
so that a single machine failure cannot take the whole service down.

This example:

1. generates a replicated-services workload (each service's replicas form a
   bag),
2. schedules it twice — once respecting the bag constraints (EPTAS) and once
   ignoring them (a bag-oblivious first-fit packing),
3. executes both schedules on the discrete-event cluster simulator while
   injecting machine failures, and
4. compares makespan and service survivability.

Run with::

    python examples/fault_tolerant_replicas.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines import first_fit_schedule
from repro.core import Instance, Schedule
from repro.eptas import eptas_schedule
from repro.generators import replica_workload_instance
from repro.simulation import ClusterSimulator


def bag_oblivious_schedule(instance: Instance, capacity: float) -> Schedule:
    """Pack the same jobs while ignoring the replica-separation constraint.

    ``capacity`` keeps the packing honest: the oblivious scheduler balances
    to roughly the same makespan as the bag-constrained one, it just does not
    care which machine a replica lands on — so replicas of one service often
    end up co-located.
    """
    relaxed = Instance(
        [job.with_bag(job.id) for job in instance.jobs],
        instance.num_machines,
        name=f"{instance.name}#no-bags",
    )
    packed = first_fit_schedule(relaxed, capacity=capacity).schedule
    # Interpret the assignment on the original instance (bags restored), so
    # the simulator can report per-service survivability.
    return Schedule(instance, packed.assignment, allow_partial=True)


def main() -> None:
    generated = replica_workload_instance(
        num_services=12,
        num_machines=8,
        replicas_range=(2, 3),
        size_range=(0.2, 0.9),
        seed=7,
    )
    instance = generated.instance
    print(instance)
    print(f"services (bags): {instance.num_bags}, replicas (jobs): {instance.num_jobs}")

    # Schedule with the bag constraint (the EPTAS) and without it.
    constrained = eptas_schedule(instance, eps=0.25)
    oblivious = bag_oblivious_schedule(instance, capacity=constrained.makespan)
    print(f"\nbag-constrained makespan : {constrained.makespan:.3f}")
    print(f"bag-oblivious  makespan  : {oblivious.makespan():.3f}")
    premium = constrained.makespan / max(oblivious.makespan(), 1e-9) - 1.0
    print(f"price of replica separation: {premium * 100:+.1f}% makespan")

    # Inject failures and measure how many services survive.
    trials = 30
    failures_per_trial = 2
    survivability = {"with bags": [], "without bags": []}
    lost_services = {"with bags": [], "without bags": []}
    for trial in range(trials):
        for label, schedule in (
            ("with bags", constrained.schedule),
            ("without bags", oblivious),
        ):
            simulator = ClusterSimulator.__new__(ClusterSimulator)
            simulator.instance = instance
            simulator.schedule = schedule
            report = simulator.run_with_random_failures(
                num_failures=failures_per_trial, seed=1000 + trial
            )
            survivability[label].append(report.survivability())
            lost_services[label].append(report.bags_fully_lost)

    print(f"\nsimulated {trials} trials with {failures_per_trial} machine failures each:")
    for label in ("with bags", "without bags"):
        mean_survival = float(np.mean(survivability[label]))
        mean_lost = float(np.mean(lost_services[label]))
        print(
            f"  {label:13s}: {mean_survival * 100:5.1f}% of services keep at least one "
            f"replica, {mean_lost:.2f} services fully lost on average"
        )

    print(
        "\nTakeaway: with replica separation a single machine failure can never take a "
        "whole service down, and even multiple simultaneous failures rarely do; the "
        "bag-oblivious packing loses whole services regularly.  The price is a small "
        "makespan premium — exactly the trade-off the paper's introduction describes."
    )


if __name__ == "__main__":
    main()
