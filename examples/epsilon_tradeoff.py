"""Explore the accuracy-versus-cost trade-off of the EPTAS in eps.

The EPTAS guarantees a makespan of at most (1 + O(eps)) * OPT in time
f(1/eps) * poly(n).  This example makes both halves of that statement
tangible on one instance:

* the measured approximation ratio as eps shrinks, and
* the size of the configuration MILP (patterns, integral variables) plus the
  wall-clock time — the f(1/eps) part — including the *theory* constants of
  Lemma 6 that explain why practical constants are used (experiment E7).

Run with::

    python examples/epsilon_tradeoff.py
"""

from __future__ import annotations

import time

from repro.eptas import eptas_schedule, normalise_eps, theory_constants_report
from repro.exact import exact_milp_schedule
from repro.experiments.tables import ExperimentTable
from repro.generators import uniform_random_instance


def main() -> None:
    instance = uniform_random_instance(
        num_jobs=22, num_machines=4, num_bags=7, seed=3
    ).instance
    print(instance)
    optimum = exact_milp_schedule(instance).makespan
    print(f"exact optimum: {optimum:.4f}\n")

    table = ExperimentTable("eps-sweep", "EPTAS accuracy vs cost")
    for eps in (1.0, 0.5, 1 / 3, 0.25):
        start = time.perf_counter()
        result = eptas_schedule(instance, eps=eps)
        elapsed = time.perf_counter() - start
        table.add_row(
            {
                "eps": normalise_eps(eps),
                "ratio": result.makespan / optimum,
                "paper budget (1+2e+e^2)": 1 + 2 * eps + eps**2,
                "time_s": elapsed,
                "patterns": result.diagnostics.get("num_patterns"),
                "integer_vars": result.diagnostics.get("integer_variables"),
                "search_iters": result.diagnostics.get("search_iterations"),
            }
        )
    print(table.to_text())

    print("\nLemma-6 theory constants (why the worst-case MILP is impractical):")
    theory = ExperimentTable("lemma6", "worst-case constants as eps shrinks")
    for eps in (1.0, 0.5, 0.25, 0.125):
        report = theory_constants_report(eps)["k=worst"]
        theory.add_row(
            {
                "eps": normalise_eps(eps),
                "q (jobs/machine)": report["q"],
                "b' (priority bags per size)": report["b_prime"],
                "log10(pattern bound)": report["log10_pattern_bound"],
            }
        )
    print(theory.to_text())
    print(
        "\nThe measured MILP stays small because the implementation caps the priority-bag "
        "constant in practical mode (DESIGN.md §4) — the guarantee is then certified "
        "empirically, as the ratio column shows."
    )


if __name__ == "__main__":
    main()
