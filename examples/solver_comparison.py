"""Compare every solver in the library across instance families.

Runs greedy list scheduling, bag-aware LPT, the coloring 2-approximation,
the Das–Wiese-style PTAS baseline, the paper's EPTAS and (where affordable)
the exact MILP on a spread of synthetic families, and prints a ratio table
per family — a miniature version of experiment E2.

Run with::

    python examples/solver_comparison.py
"""

from __future__ import annotations

from repro.baselines import (
    coloring_schedule,
    das_wiese_schedule,
    greedy_schedule,
    lpt_schedule,
)
from repro.bounds import best_lower_bound
from repro.eptas import eptas_schedule
from repro.exact import exact_milp_schedule
from repro.experiments.tables import ExperimentTable
from repro.generators import (
    bag_heavy_instance,
    figure1_adversarial_instance,
    replica_workload_instance,
    uniform_random_instance,
)

SOLVERS = {
    "greedy": lambda inst: greedy_schedule(inst),
    "lpt": lambda inst: lpt_schedule(inst),
    "coloring": lambda inst: coloring_schedule(inst),
    "das-wiese(1/4)": lambda inst: das_wiese_schedule(inst, eps=0.25),
    "eptas(1/2)": lambda inst: eptas_schedule(inst, eps=0.5),
    "eptas(1/4)": lambda inst: eptas_schedule(inst, eps=0.25),
}

FAMILIES = {
    "figure1 (adversarial)": figure1_adversarial_instance(num_machines=6, seed=1).instance,
    "uniform random": uniform_random_instance(
        num_jobs=18, num_machines=4, num_bags=6, seed=1
    ).instance,
    "replicated services": replica_workload_instance(
        num_services=8, num_machines=5, seed=1
    ).instance,
    "bag heavy": bag_heavy_instance(
        num_machines=4, num_full_bags=3, extra_jobs=6, seed=1
    ).instance,
}


def main() -> None:
    table = ExperimentTable("compare", "makespan ratio to the exact optimum, per family")
    for family, instance in FAMILIES.items():
        optimum = exact_milp_schedule(instance).makespan
        row: dict[str, object] = {"family": family, "optimum": optimum}
        for name, solver in SOLVERS.items():
            result = solver(instance)
            result.schedule.validate()
            row[name] = result.makespan / optimum
        table.add_row(row)

    print(table.to_text())
    print()
    # Also show how tight the combinatorial lower bounds are: the EPTAS's
    # binary search uses them as the starting bracket.
    bounds_table = ExperimentTable("bounds", "lower-bound tightness (bound / optimum)")
    for family, instance in FAMILIES.items():
        optimum = exact_milp_schedule(instance).makespan
        report = best_lower_bound(instance, use_lp=True)
        bounds_table.add_row(
            {
                "family": family,
                "area": report.area / optimum,
                "max_job": report.max_job / optimum,
                "pairwise": report.pairwise / optimum,
                "bag_cardinality": report.bag_cardinality / optimum,
                "lp_relaxation": (report.lp_relaxation or 0.0) / optimum,
            }
        )
    print(bounds_table.to_text())


if __name__ == "__main__":
    main()
