"""Exact reference solvers (optimum oracle for the experiments)."""

from __future__ import annotations

from ..core.instance import Instance
from ..core.result import SolverResult
from .assignment_milp import (
    ExactConfig,
    ExactMilpConfig,
    build_assignment_model,
    exact_milp_schedule,
)
from .brute_force import BruteForceConfig, brute_force_optimum, brute_force_schedule

__all__ = [
    "BruteForceConfig",
    "ExactConfig",
    "ExactMilpConfig",
    "brute_force_optimum",
    "brute_force_schedule",
    "build_assignment_model",
    "exact_milp_schedule",
    "exact_schedule",
]


def exact_schedule(
    instance: Instance,
    *,
    method: str = "auto",
    milp_config: ExactMilpConfig | None = None,
    brute_config: BruteForceConfig | None = None,
) -> SolverResult:
    """Solve an instance to optimality with the most appropriate exact method.

    ``method``:
      * ``"auto"`` (default) — brute force for very small instances
        (``n <= 12``), the assignment MILP otherwise;
      * ``"milp"`` — always use the assignment MILP;
      * ``"brute"`` — always use the exhaustive search.
    """
    if method == "auto":
        method = "brute" if instance.num_jobs <= 12 else "milp"
    if method == "milp":
        return exact_milp_schedule(instance, config=milp_config)
    if method == "brute":
        return brute_force_schedule(instance, config=brute_config)
    raise ValueError(f"unknown exact method {method!r}; expected 'auto', 'milp' or 'brute'")
