"""Exact makespan minimisation via an assignment MILP.

The reference optimum for the approximation-ratio experiments (E1, E2, E4).
Variables ``x[j, i] in {0, 1}`` assign job ``j`` to machine ``i``; ``T`` is
the makespan.  Constraints: every job on exactly one machine, machine load at
most ``T``, at most one job per bag per machine.  Optional symmetry breaking
orders the machine loads, which prunes the machine-permutation symmetry of
identical machines.

This model has ``n*m`` binary variables, so it is only intended for the small
instances on which the experiments report exact ratios; larger experiments
fall back to lower bounds.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import InfeasibleModelError
from ..core.instance import Instance
from ..core.result import SolverResult, timed_solver_result
from ..core.schedule import Schedule
from ..milp import LinearModel, SolutionStatus
from ..solver import BackendSpec, get_solver_service

__all__ = [
    "ExactConfig",
    "ExactMilpConfig",
    "exact_milp_schedule",
    "build_assignment_model",
]


@dataclass(frozen=True, slots=True)
class ExactMilpConfig:
    """Options of the exact assignment MILP.

    ``backend`` accepts a registered backend name or a
    :class:`repro.solver.BackendSpec`; it is validated at construction so an
    unknown backend fails before any model is built.
    """

    backend: str | BackendSpec = "scipy"
    time_limit: float | None = 120.0
    symmetry_breaking: bool = True
    mip_rel_gap: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "backend", BackendSpec.coerce(self.backend))

    @property
    def backend_spec(self) -> BackendSpec:
        assert isinstance(self.backend, BackendSpec)
        return self.backend


# The name the solver-service layer (and the issue tracker) uses; the
# historical ``ExactMilpConfig`` stays as the canonical definition.
ExactConfig = ExactMilpConfig


def build_assignment_model(
    instance: Instance, *, symmetry_breaking: bool = True
) -> LinearModel:
    """Construct the assignment MILP for an instance (exposed for tests)."""
    model = LinearModel(f"exact-{instance.name}")
    jobs = instance.jobs
    machines = range(instance.num_machines)

    model.add_variable("T", lower=0.0, objective=1.0)
    for job in jobs:
        for machine in machines:
            model.add_variable(f"x_{job.id}_{machine}", integer=True, lower=0.0, upper=1.0)

    # Every job on exactly one machine.
    for job in jobs:
        model.add_eq(
            f"assign_{job.id}",
            {f"x_{job.id}_{machine}": 1.0 for machine in machines},
            1.0,
        )
    # Machine load at most T.
    for machine in machines:
        coefficients = {f"x_{job.id}_{machine}": job.size for job in jobs}
        coefficients["T"] = -1.0
        model.add_le(f"load_{machine}", coefficients, 0.0)
    # Bag constraint: at most one job of a bag per machine.
    for bag, members in instance.bags().items():
        if len(members) <= 1:
            continue
        for machine in machines:
            model.add_le(
                f"bag_{bag}_m{machine}",
                {f"x_{job.id}_{machine}": 1.0 for job in members},
                1.0,
            )
    # Symmetry breaking: machine loads non-increasing in the machine index.
    if symmetry_breaking and instance.num_machines > 1:
        for machine in range(instance.num_machines - 1):
            coefficients: dict[str, float] = {}
            for job in jobs:
                coefficients[f"x_{job.id}_{machine}"] = -job.size
                coefficients[f"x_{job.id}_{machine + 1}"] = job.size
            model.add_le(f"sym_{machine}", coefficients, 0.0)
    return model


def exact_milp_schedule(
    instance: Instance, *, config: ExactMilpConfig | None = None
) -> SolverResult:
    """Solve an instance to optimality (subject to the backend's exactness)."""
    config = config or ExactMilpConfig()
    diagnostics: dict[str, object] = {}

    def build() -> Schedule:
        model = build_assignment_model(
            instance, symmetry_breaking=config.symmetry_breaking
        )
        diagnostics.update(model.summary())
        solution = get_solver_service().solve(
            model,
            spec=config.backend_spec,
            time_limit=config.time_limit,
            mip_rel_gap=config.mip_rel_gap,
        )
        diagnostics["milp_status"] = solution.status.value
        if solution.telemetry is not None:
            diagnostics["milp_telemetry"] = solution.telemetry.to_dict()
        if solution.status not in (SolutionStatus.OPTIMAL, SolutionStatus.FEASIBLE):
            raise InfeasibleModelError(
                f"exact MILP for {instance.name!r} returned status {solution.status.value}"
            )
        schedule = Schedule(instance, allow_partial=True)
        for job in instance.jobs:
            assigned_machine: int | None = None
            best_value = 0.5
            for machine in range(instance.num_machines):
                value = solution.value(f"x_{job.id}_{machine}")
                if value > best_value:
                    best_value = value
                    assigned_machine = machine
            if assigned_machine is None:
                raise InfeasibleModelError(
                    f"exact MILP left job {job.id} unassigned (numerical issue)"
                )
            schedule.assign(job.id, assigned_machine)
        return schedule

    result = timed_solver_result(
        "exact-milp",
        build,
        params={
            "backend": config.backend_spec.to_dict(),
            "symmetry_breaking": config.symmetry_breaking,
        },
        diagnostics=diagnostics,
        optimal=True,
    )
    return result
