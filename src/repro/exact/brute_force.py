"""Exhaustive branch-and-bound over job-to-machine assignments.

A solver-free exact reference for *tiny* instances (roughly ``n <= 14``),
used by property-based tests to validate both the exact MILP and the
approximation guarantees on randomly generated micro-instances.  The search
assigns jobs one at a time (largest first), prunes on

* bag conflicts,
* partial loads that already reach the incumbent makespan,
* an area/remaining-work bound, and
* machine symmetry (a job may open at most one previously empty machine).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import SolverLimitError
from ..core.instance import Instance
from ..core.result import SolverResult, timed_solver_result
from ..core.schedule import Schedule

__all__ = ["BruteForceConfig", "brute_force_schedule", "brute_force_optimum"]


@dataclass(frozen=True, slots=True)
class BruteForceConfig:
    """Limits of the exhaustive search."""

    max_nodes: int = 2_000_000
    raise_on_limit: bool = True


def _search(instance: Instance, config: BruteForceConfig) -> tuple[dict[int, int], float, int]:
    jobs = sorted(instance.jobs, key=lambda job: (-job.size, job.id))
    num_machines = instance.num_machines
    sizes = [job.size for job in jobs]
    bags = [job.bag for job in jobs]
    suffix_work = [0.0] * (len(jobs) + 1)
    for index in range(len(jobs) - 1, -1, -1):
        suffix_work[index] = suffix_work[index + 1] + sizes[index]

    best_assignment: dict[int, int] = {}
    best_makespan = float("inf")
    loads = [0.0] * num_machines
    machine_bags: list[set[int]] = [set() for _ in range(num_machines)]
    current: dict[int, int] = {}
    nodes = 0

    def lower_bound(index: int) -> float:
        # Remaining work spread perfectly over all machines, measured from
        # the current minimum load, is a valid completion bound.
        remaining = suffix_work[index]
        return max(max(loads), (sum(loads) + remaining) / num_machines)

    def recurse(index: int) -> None:
        nonlocal best_makespan, best_assignment, nodes
        nodes += 1
        if nodes > config.max_nodes:
            if config.raise_on_limit:
                raise SolverLimitError(
                    f"brute force exceeded max_nodes={config.max_nodes} on "
                    f"{instance.name!r} (n={instance.num_jobs})"
                )
            return
        if index == len(jobs):
            makespan = max(loads)
            if makespan < best_makespan - 1e-12:
                best_makespan = makespan
                best_assignment = dict(current)
            return
        if lower_bound(index) >= best_makespan - 1e-12:
            return
        job = jobs[index]
        size = sizes[index]
        bag = bags[index]
        opened_empty = False
        for machine in range(num_machines):
            if bag in machine_bags[machine]:
                continue
            is_empty = loads[machine] == 0.0
            if is_empty:
                # Machine symmetry: trying more than one empty machine for
                # the same job only permutes machine names.
                if opened_empty:
                    continue
                opened_empty = True
            if loads[machine] + size >= best_makespan - 1e-12:
                continue
            loads[machine] += size
            machine_bags[machine].add(bag)
            current[job.id] = machine
            recurse(index + 1)
            del current[job.id]
            machine_bags[machine].discard(bag)
            loads[machine] -= size

    recurse(0)
    return best_assignment, best_makespan, nodes


def brute_force_schedule(
    instance: Instance, *, config: BruteForceConfig | None = None
) -> SolverResult:
    """Exact optimum by exhaustive search (tiny instances only)."""
    config = config or BruteForceConfig()
    diagnostics: dict[str, object] = {}

    def build() -> Schedule:
        assignment, makespan, nodes = _search(instance, config)
        diagnostics["nodes"] = nodes
        diagnostics["optimum"] = makespan
        schedule = Schedule(instance, assignment)
        return schedule

    return timed_solver_result(
        "brute-force",
        build,
        params={"max_nodes": config.max_nodes},
        diagnostics=diagnostics,
        optimal=True,
    )


def brute_force_optimum(
    instance: Instance, *, config: BruteForceConfig | None = None
) -> float:
    """Return only the optimal makespan (convenience for tests)."""
    return brute_force_schedule(instance, config=config).makespan
