"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library-specific failures with a single ``except`` clause
while still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all exceptions raised by the :mod:`repro` package."""


class InvalidInstanceError(ReproError):
    """Raised when an :class:`~repro.core.instance.Instance` is malformed.

    Examples: a job with non-positive processing time, a bag with more jobs
    than machines (which makes the bag-constraint unsatisfiable), zero
    machines, or duplicate job identifiers.
    """


class InvalidScheduleError(ReproError):
    """Raised when a :class:`~repro.core.schedule.Schedule` is infeasible.

    A schedule is infeasible when a job is unassigned, assigned to a
    non-existent machine, assigned more than once, or when two jobs of the
    same bag share a machine (a *conflict* in the paper's terminology).
    """


class InfeasibleModelError(ReproError):
    """Raised when an LP/MILP model has no feasible solution.

    The EPTAS driver catches this during the dual-approximation binary
    search: an infeasible configuration MILP for a candidate makespan ``T``
    is the signal that ``T`` is below the optimum.
    """


class SolverLimitError(ReproError):
    """Raised when a solver exceeds a configured resource limit.

    Used by the pattern enumerator (``max_patterns``), the branch-and-bound
    solver (``max_nodes``), and the exact solvers (``time_limit``).  The
    message always states which limit was exceeded and the configured value
    so that callers can decide whether to retry with a larger budget or to
    fall back to a heuristic.
    """


class AlgorithmError(ReproError):
    """Raised when an internal invariant of an algorithm is violated.

    This indicates a bug (or an input outside the documented preconditions),
    e.g. the Lemma-7 swap repair failing to find a swap partner even though
    the paper guarantees one exists.
    """
