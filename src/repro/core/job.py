"""Job model for machine scheduling with bag-constraints.

A *job* is the atomic unit of work.  Each job has a processing time (the
paper calls it height or ``p_j``) and belongs to exactly one *bag*.  A
feasible schedule never places two jobs of the same bag on one machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["Job"]


@dataclass(frozen=True, slots=True)
class Job:
    """A single job of a bag-constrained scheduling instance.

    Attributes
    ----------
    id:
        Unique non-negative integer identifier within an instance.  The
        library never renumbers jobs: transformed instances (Section 2.2 of
        the paper) allocate fresh identifiers for filler jobs but keep the
        original identifiers for original jobs so that solutions can be
        mapped back.
    size:
        Processing time ``p_j``.  Must be strictly positive for original
        jobs; *dummy* jobs of size ``0.0`` are permitted because the
        bag-LPT algorithm of Section 4 pads bags with zero-height dummy
        jobs.
    bag:
        Index of the bag this job belongs to (``0``-based).  Bags partition
        the job set; the constraint is "at most one job of each bag per
        machine".
    meta:
        Free-form metadata.  Used by the instance transformation to remember
        the provenance of filler jobs (``{"filler_for": original_job_id}``)
        and by the simulator to attach task names / replica groups.  The
        mapping is not hashed and does not participate in equality.
    """

    id: int
    size: float
    bag: int
    meta: Mapping[str, Any] = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self) -> None:
        if self.id < 0:
            raise ValueError(f"job id must be non-negative, got {self.id}")
        if self.size < 0:
            raise ValueError(f"job size must be non-negative, got {self.size}")
        if self.bag < 0:
            raise ValueError(f"bag index must be non-negative, got {self.bag}")

    # ------------------------------------------------------------------
    # Convenience predicates used by classification code and tests.
    # ------------------------------------------------------------------
    def is_dummy(self) -> bool:
        """Return ``True`` if this is a zero-size dummy job."""
        return self.size == 0.0

    def is_filler(self) -> bool:
        """Return ``True`` if this job was created as a filler job.

        Filler jobs are introduced by the instance transformation of
        Section 2.2: every large or medium job of a non-priority bag is
        replaced inside its original bag by a small copy of height
        ``p_max`` (the largest small-job size of the bag).
        """
        return "filler_for" in self.meta

    def filler_source(self) -> int | None:
        """Identifier of the job this filler job stands in for, if any."""
        value = self.meta.get("filler_for")
        return int(value) if value is not None else None

    def with_size(self, size: float) -> "Job":
        """Return a copy of this job with a different processing time.

        Used by the rounding step (sizes are rounded up to powers of
        ``1 + eps``) and by the transformation (medium/large jobs shrink to
        filler height).  Identity, bag membership and metadata are kept.
        """
        return Job(id=self.id, size=size, bag=self.bag, meta=dict(self.meta))

    def with_bag(self, bag: int) -> "Job":
        """Return a copy of this job that belongs to a different bag."""
        return Job(id=self.id, size=self.size, bag=bag, meta=dict(self.meta))

    def with_meta(self, **meta: Any) -> "Job":
        """Return a copy of this job with additional metadata entries."""
        merged = dict(self.meta)
        merged.update(meta)
        return Job(id=self.id, size=self.size, bag=self.bag, meta=merged)

    def to_dict(self) -> dict[str, Any]:
        """Serialize the job to a JSON-compatible dictionary."""
        data: dict[str, Any] = {"id": self.id, "size": self.size, "bag": self.bag}
        if self.meta:
            data["meta"] = dict(self.meta)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Job":
        """Deserialize a job from :meth:`to_dict` output."""
        return cls(
            id=int(data["id"]),
            size=float(data["size"]),
            bag=int(data["bag"]),
            meta=dict(data.get("meta", {})),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tag = " filler" if self.is_filler() else ""
        return f"Job(id={self.id}, size={self.size:.6g}, bag={self.bag}{tag})"
