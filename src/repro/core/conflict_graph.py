"""Conflict-graph view of a bag-constrained instance.

The bag constraint is equivalent to a *cluster* conflict graph: every bag is
a clique, and a feasible schedule is a partition of the jobs into ``m``
independent sets (one per machine).  This module builds that graph (both as
an adjacency structure of our own and as a :mod:`networkx` graph for
cross-checking), and provides the coloring primitives that the classical
2-approximation of Bodlaender, Jansen and Woeginger uses.
"""

from __future__ import annotations

from typing import Iterable

import networkx as nx

from .instance import Instance

__all__ = [
    "build_conflict_graph",
    "conflict_adjacency",
    "is_cluster_graph",
    "greedy_clique_coloring",
    "chromatic_number_lower_bound",
]


def conflict_adjacency(instance: Instance) -> dict[int, set[int]]:
    """Adjacency mapping of the conflict graph (job id -> conflicting job ids).

    Two jobs conflict exactly when they belong to the same bag.  The mapping
    is symmetric and contains an entry for every job (possibly empty).
    """
    adjacency: dict[int, set[int]] = {job.id: set() for job in instance.jobs}
    for _, members in instance.bags().items():
        ids = [job.id for job in members]
        for i, a in enumerate(ids):
            for b in ids[i + 1 :]:
                adjacency[a].add(b)
                adjacency[b].add(a)
    return adjacency


def build_conflict_graph(instance: Instance) -> nx.Graph:
    """Build the conflict graph as a :class:`networkx.Graph`.

    Nodes are job identifiers (with ``size`` and ``bag`` attributes), edges
    connect jobs of the same bag.  Used by tests to cross-check our own
    adjacency construction and by the coloring baseline.
    """
    graph = nx.Graph()
    for job in instance.jobs:
        graph.add_node(job.id, size=job.size, bag=job.bag)
    for _, members in instance.bags().items():
        ids = [job.id for job in members]
        for i, a in enumerate(ids):
            for b in ids[i + 1 :]:
                graph.add_edge(a, b)
    return graph


def is_cluster_graph(graph: nx.Graph) -> bool:
    """Check that a graph is a disjoint union of cliques.

    A graph is a cluster graph iff it contains no induced path on three
    vertices (P3).  We check each connected component for completeness,
    which is equivalent and faster for our graphs.
    """
    for component in nx.connected_components(graph):
        nodes = list(component)
        size = len(nodes)
        expected_edges = size * (size - 1) // 2
        actual_edges = graph.subgraph(nodes).number_of_edges()
        if actual_edges != expected_edges:
            return False
    return True


def greedy_clique_coloring(instance: Instance) -> dict[int, int]:
    """Color the conflict graph of a bag-constrained instance optimally.

    Because the conflict graph is a cluster graph, an optimal coloring simply
    assigns color ``0, 1, 2, …`` to the jobs of each bag independently; the
    chromatic number equals the size of the largest bag.  The returned
    mapping is ``job id -> color``.  Colors can be interpreted as "machine
    classes": jobs of the same color never conflict.
    """
    coloring: dict[int, int] = {}
    for _, members in instance.bags().items():
        # Color larger jobs first so color classes are balanced by area,
        # which helps the coloring-based scheduling baseline.
        for color, job in enumerate(sorted(members, key=lambda j: -j.size)):
            coloring[job.id] = color
    return coloring


def chromatic_number_lower_bound(instance: Instance) -> int:
    """Chromatic number of the conflict graph (= size of the largest bag)."""
    sizes = instance.bag_sizes()
    return max(sizes.values()) if sizes else 0


def color_classes(coloring: dict[int, int]) -> dict[int, list[int]]:
    """Group a coloring into ``color -> sorted job ids``."""
    classes: dict[int, list[int]] = {}
    for job_id, color in coloring.items():
        classes.setdefault(color, []).append(job_id)
    return {color: sorted(ids) for color, ids in sorted(classes.items())}


def verify_coloring(instance: Instance, coloring: dict[int, int]) -> bool:
    """Check that a coloring assigns distinct colors within every bag."""
    for _, members in instance.bags().items():
        seen: set[int] = set()
        for job in members:
            color = coloring.get(job.id)
            if color is None or color in seen:
                return False
            seen.add(color)
    return True


def conflicting_pairs(instance: Instance) -> Iterable[tuple[int, int]]:
    """Yield every conflicting (unordered) pair of job identifiers."""
    for _, members in instance.bags().items():
        ids = sorted(job.id for job in members)
        for i, a in enumerate(ids):
            for b in ids[i + 1 :]:
                yield (a, b)
