"""Schedule analysis: load statistics, imbalance metrics, certificates.

Experiments and examples frequently need the same handful of derived
quantities — machine-load statistics, imbalance measures, per-bag spread,
and a human-readable certificate that a schedule is feasible and how far it
is from the known lower bounds.  This module centralises them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from .instance import Instance
from .schedule import Schedule

__all__ = ["ScheduleMetrics", "analyze_schedule", "schedule_certificate"]


@dataclass(frozen=True, slots=True)
class ScheduleMetrics:
    """Derived quantities of a (complete) schedule.

    Attributes
    ----------
    makespan / min_load / mean_load / load_std:
        Machine-load statistics.
    imbalance:
        ``makespan / mean_load`` (1.0 = perfectly balanced).  The area lower
        bound equals the mean load, so this is also an upper bound on the
        approximation ratio of the schedule.
    utilisation:
        ``total work / (m * makespan)`` — the fraction of the schedule's
        rectangle that is actually busy.
    num_used_machines:
        Machines with at least one job.
    bag_spread:
        Mean over bags of (number of distinct machines used by the bag /
        number of jobs of the bag); always 1.0 for a feasible schedule.
    """

    makespan: float
    min_load: float
    mean_load: float
    load_std: float
    imbalance: float
    utilisation: float
    num_used_machines: int
    bag_spread: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "makespan": self.makespan,
            "min_load": self.min_load,
            "mean_load": self.mean_load,
            "load_std": self.load_std,
            "imbalance": self.imbalance,
            "utilisation": self.utilisation,
            "num_used_machines": self.num_used_machines,
            "bag_spread": self.bag_spread,
        }


def analyze_schedule(schedule: Schedule) -> ScheduleMetrics:
    """Compute :class:`ScheduleMetrics` for a complete schedule."""
    instance: Instance = schedule.instance
    loads = schedule.loads()
    makespan = float(loads.max()) if loads.size else 0.0
    mean_load = float(loads.mean()) if loads.size else 0.0
    total_work = instance.total_work

    spreads: list[float] = []
    for _, members in instance.bags().items():
        machines = {schedule.machine_of(job.id) for job in members}
        machines.discard(None)
        if members:
            spreads.append(len(machines) / len(members))
    return ScheduleMetrics(
        makespan=makespan,
        min_load=float(loads.min()) if loads.size else 0.0,
        mean_load=mean_load,
        load_std=float(loads.std()) if loads.size else 0.0,
        imbalance=(makespan / mean_load) if mean_load > 0 else 1.0,
        utilisation=(total_work / (instance.num_machines * makespan))
        if makespan > 0
        else 1.0,
        num_used_machines=int(np.count_nonzero(loads)),
        bag_spread=float(np.mean(spreads)) if spreads else 1.0,
    )


def schedule_certificate(schedule: Schedule, *, lower_bound: float | None = None) -> dict[str, Any]:
    """A compact, serialisable certificate for a schedule.

    Contains the feasibility verdict, the metrics, and (when a lower bound is
    supplied) the certified approximation-ratio upper bound.  Used by the CLI
    and by the experiment harness when persisting results.
    """
    report = schedule.validation_report()
    metrics = analyze_schedule(schedule)
    certificate: dict[str, Any] = {
        "instance": schedule.instance.name,
        "num_jobs": schedule.instance.num_jobs,
        "num_bags": schedule.instance.num_bags,
        "num_machines": schedule.instance.num_machines,
        "feasible": report.is_feasible,
        "feasibility_summary": report.summary(),
        "metrics": metrics.to_dict(),
    }
    if lower_bound is not None and lower_bound > 0:
        certificate["lower_bound"] = lower_bound
        certificate["ratio_upper_bound"] = metrics.makespan / lower_bound
    return certificate
