"""Common result type returned by every solver in the library.

All solvers (baselines, exact solvers, the EPTAS) return a
:class:`SolverResult` so that experiments and the CLI can treat them
uniformly: a validated schedule, the achieved makespan, the solver name and
parameters, wall-clock time, and solver-specific diagnostics (e.g. number of
MILP patterns, number of repair swaps, binary-search iterations).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from .schedule import Schedule

__all__ = ["SolverResult", "timed_solver_result"]


@dataclass(slots=True)
class SolverResult:
    """Outcome of running a scheduling solver on an instance.

    Attributes
    ----------
    schedule:
        The (validated, complete) schedule produced by the solver.
    solver:
        Short identifier of the solver, e.g. ``"eptas"``, ``"lpt"``,
        ``"exact-milp"``.
    makespan:
        Makespan of ``schedule`` (cached so reports do not recompute it).
    wall_time:
        Wall-clock seconds spent inside the solver.
    params:
        Solver parameters relevant for reproducibility (``eps``, limits, …).
    diagnostics:
        Free-form per-solver counters (patterns enumerated, MILP variables,
        repair swaps, binary search iterations, lower bound used, …).
    optimal:
        ``True`` when the solver certifies optimality of the schedule.
    """

    schedule: Schedule
    solver: str
    makespan: float
    wall_time: float = 0.0
    params: dict[str, Any] = field(default_factory=dict)
    diagnostics: dict[str, Any] = field(default_factory=dict)
    optimal: bool = False

    @property
    def instance_name(self) -> str:
        return self.schedule.instance.name

    def ratio_to(self, reference: float) -> float:
        """Makespan ratio against a reference value (optimum or lower bound).

        Returns ``float('inf')`` when the reference is non-positive, which
        only happens for degenerate (empty) instances.
        """
        if reference <= 0:
            return float("inf") if self.makespan > 0 else 1.0
        return self.makespan / reference

    def to_dict(self) -> dict[str, Any]:
        """Serialize the result (without the full assignment) for reports."""
        return {
            "solver": self.solver,
            "instance": self.instance_name,
            "makespan": self.makespan,
            "wall_time": self.wall_time,
            "optimal": self.optimal,
            "params": dict(self.params),
            "diagnostics": dict(self.diagnostics),
        }


def timed_solver_result(
    solver: str,
    build: Callable[[], Schedule],
    *,
    params: Mapping[str, Any] | None = None,
    diagnostics: Mapping[str, Any] | None = None,
    optimal: bool = False,
    validate: bool = True,
) -> SolverResult:
    """Run ``build``, time it, validate the schedule and wrap it in a result.

    Every public solver funnels through this helper so that validation is
    impossible to forget and timing is measured consistently (monotonic
    clock, excludes instance construction).
    """
    start = time.perf_counter()
    schedule = build()
    elapsed = time.perf_counter() - start
    if validate:
        schedule.validate()
    return SolverResult(
        schedule=schedule,
        solver=solver,
        makespan=schedule.makespan(),
        wall_time=elapsed,
        params=dict(params or {}),
        diagnostics=dict(diagnostics or {}),
        optimal=optimal,
    )
