"""Core data model: jobs, bags, instances, schedules, conflicts, results."""

from .errors import (
    AlgorithmError,
    InfeasibleModelError,
    InvalidInstanceError,
    InvalidScheduleError,
    ReproError,
    SolverLimitError,
)
from .job import Job
from .instance import Instance, InstanceStats
from .schedule import Conflict, Schedule, ValidationReport
from .result import SolverResult, timed_solver_result
from .conflict_graph import (
    build_conflict_graph,
    chromatic_number_lower_bound,
    conflict_adjacency,
    greedy_clique_coloring,
    is_cluster_graph,
    verify_coloring,
)
from .analysis import ScheduleMetrics, analyze_schedule, schedule_certificate

__all__ = [
    "AlgorithmError",
    "Conflict",
    "ScheduleMetrics",
    "analyze_schedule",
    "schedule_certificate",
    "InfeasibleModelError",
    "Instance",
    "InstanceStats",
    "InvalidInstanceError",
    "InvalidScheduleError",
    "Job",
    "ReproError",
    "Schedule",
    "SolverLimitError",
    "SolverResult",
    "ValidationReport",
    "build_conflict_graph",
    "chromatic_number_lower_bound",
    "conflict_adjacency",
    "greedy_clique_coloring",
    "is_cluster_graph",
    "timed_solver_result",
    "verify_coloring",
]
