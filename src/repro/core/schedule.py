"""Schedule model: an assignment of jobs to machines plus feasibility checks.

A :class:`Schedule` maps every job of an :class:`~repro.core.instance.Instance`
to one of the ``m`` machines.  The central feasibility notion of the paper is
*conflict-freeness*: no machine may hold two jobs of the same bag.  The class
offers makespan/load computation, conflict enumeration, validation, mutation
helpers used by the repair procedures (Lemmas 4, 7 and 11), and serialization.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from .errors import InvalidScheduleError
from .instance import Instance
from .job import Job

__all__ = ["Schedule", "Conflict", "ValidationReport"]


@dataclass(frozen=True, slots=True)
class Conflict:
    """A violation of the bag constraint: two jobs of one bag on one machine."""

    machine: int
    bag: int
    job_a: int
    job_b: int

    def to_dict(self) -> dict[str, int]:
        return {
            "machine": self.machine,
            "bag": self.bag,
            "job_a": self.job_a,
            "job_b": self.job_b,
        }


@dataclass(frozen=True, slots=True)
class ValidationReport:
    """Outcome of :meth:`Schedule.validation_report`.

    ``is_feasible`` is ``True`` iff all jobs are assigned to valid machines
    and there are no conflicts.
    """

    missing_jobs: tuple[int, ...]
    unknown_jobs: tuple[int, ...]
    invalid_machines: tuple[int, ...]
    conflicts: tuple[Conflict, ...]

    @property
    def is_feasible(self) -> bool:
        return not (
            self.missing_jobs
            or self.unknown_jobs
            or self.invalid_machines
            or self.conflicts
        )

    def summary(self) -> str:
        if self.is_feasible:
            return "feasible"
        parts = []
        if self.missing_jobs:
            parts.append(f"{len(self.missing_jobs)} unassigned jobs")
        if self.unknown_jobs:
            parts.append(f"{len(self.unknown_jobs)} unknown jobs")
        if self.invalid_machines:
            parts.append(f"{len(self.invalid_machines)} invalid machine indices")
        if self.conflicts:
            parts.append(f"{len(self.conflicts)} bag conflicts")
        return "infeasible: " + ", ".join(parts)


class Schedule:
    """An assignment of jobs to machines for a fixed instance.

    Parameters
    ----------
    instance:
        The instance being scheduled.
    assignment:
        Mapping ``job id -> machine index``.  Machine indices are
        ``0``-based and must lie in ``range(instance.num_machines)``.
    allow_partial:
        If ``True`` the schedule may leave jobs unassigned.  Partial
        schedules are used internally while the EPTAS builds a solution in
        stages (large jobs first, then small jobs); the final result of
        every public solver is always complete and validated.
    """

    __slots__ = ("_instance", "_assignment", "_allow_partial")

    def __init__(
        self,
        instance: Instance,
        assignment: Mapping[int, int] | None = None,
        *,
        allow_partial: bool = False,
    ) -> None:
        self._instance = instance
        self._assignment: dict[int, int] = dict(assignment or {})
        self._allow_partial = bool(allow_partial)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def instance(self) -> Instance:
        """The instance this schedule belongs to."""
        return self._instance

    @property
    def assignment(self) -> dict[int, int]:
        """A copy of the ``job id -> machine`` mapping."""
        return dict(self._assignment)

    @property
    def num_assigned(self) -> int:
        """Number of jobs currently assigned."""
        return len(self._assignment)

    @property
    def is_complete(self) -> bool:
        """``True`` when every job of the instance has a machine."""
        return len(self._assignment) == self._instance.num_jobs and all(
            job.id in self._assignment for job in self._instance.jobs
        )

    def machine_of(self, job_id: int) -> int | None:
        """Machine of the given job, or ``None`` when unassigned."""
        return self._assignment.get(job_id)

    def __contains__(self, job_id: int) -> bool:
        return job_id in self._assignment

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Schedule(instance={self._instance.name!r}, "
            f"assigned={self.num_assigned}/{self._instance.num_jobs}, "
            f"makespan={self.makespan():.6g})"
        )

    # ------------------------------------------------------------------
    # Mutation (returns self for chaining; schedules are cheap builders)
    # ------------------------------------------------------------------
    def assign(self, job_id: int, machine: int) -> "Schedule":
        """Assign (or move) a job to a machine."""
        if job_id not in self._instance:
            raise InvalidScheduleError(
                f"cannot assign unknown job {job_id} in instance {self._instance.name!r}"
            )
        if not 0 <= machine < self._instance.num_machines:
            raise InvalidScheduleError(
                f"machine index {machine} out of range [0, {self._instance.num_machines})"
            )
        self._assignment[job_id] = machine
        return self

    def assign_many(self, pairs: Iterable[tuple[int, int]]) -> "Schedule":
        """Assign many ``(job id, machine)`` pairs at once."""
        for job_id, machine in pairs:
            self.assign(job_id, machine)
        return self

    def unassign(self, job_id: int) -> "Schedule":
        """Remove a job from the schedule (no error if it was unassigned)."""
        self._assignment.pop(job_id, None)
        return self

    def swap(self, job_a: int, job_b: int) -> "Schedule":
        """Exchange the machines of two assigned jobs.

        This is the primitive used by the repair procedures of Lemmas 4, 7
        and 11: conflicts are resolved by swapping a conflicting job with a
        same-size (or filler) job on another machine.
        """
        machine_a = self._assignment.get(job_a)
        machine_b = self._assignment.get(job_b)
        if machine_a is None or machine_b is None:
            raise InvalidScheduleError(
                f"both jobs must be assigned before swapping (jobs {job_a}, {job_b})"
            )
        self._assignment[job_a], self._assignment[job_b] = machine_b, machine_a
        return self

    def copy(self) -> "Schedule":
        """Return an independent copy of this schedule."""
        return Schedule(
            self._instance, dict(self._assignment), allow_partial=self._allow_partial
        )

    def reassigned_to_instance(self, instance: Instance, *, drop_missing: bool = True) -> "Schedule":
        """Carry this assignment over to another instance sharing job ids.

        Used when mapping a solution of the transformed instance ``I'`` back
        to the original instance ``I``: jobs that exist in both instances
        keep their machine, jobs that only exist in ``I'`` (filler jobs) are
        dropped when ``drop_missing`` is true.
        """
        mapping = {
            job_id: machine
            for job_id, machine in self._assignment.items()
            if (job_id in instance) or not drop_missing
        }
        return Schedule(instance, mapping, allow_partial=True)

    # ------------------------------------------------------------------
    # Loads and makespan
    # ------------------------------------------------------------------
    def loads(self) -> np.ndarray:
        """Vector of machine loads (length ``m``)."""
        loads = np.zeros(self._instance.num_machines, dtype=float)
        for job_id, machine in self._assignment.items():
            loads[machine] += self._instance.job(job_id).size
        return loads

    def load(self, machine: int) -> float:
        """Load of a single machine."""
        total = 0.0
        for job_id, assigned in self._assignment.items():
            if assigned == machine:
                total += self._instance.job(job_id).size
        return total

    def makespan(self) -> float:
        """Maximum machine load (``0.0`` for an empty schedule)."""
        if not self._assignment:
            return 0.0
        return float(self.loads().max())

    def machine_jobs(self) -> list[list[Job]]:
        """Per-machine job lists (length ``m``), in arbitrary order."""
        machines: list[list[Job]] = [[] for _ in range(self._instance.num_machines)]
        for job_id, machine in self._assignment.items():
            machines[machine].append(self._instance.job(job_id))
        return machines

    def jobs_on(self, machine: int) -> list[Job]:
        """Jobs assigned to one machine."""
        return [
            self._instance.job(job_id)
            for job_id, assigned in self._assignment.items()
            if assigned == machine
        ]

    def bags_on(self, machine: int) -> set[int]:
        """Set of bag indices present on a machine."""
        return {job.bag for job in self.jobs_on(machine)}

    # ------------------------------------------------------------------
    # Feasibility
    # ------------------------------------------------------------------
    def conflicts(self) -> list[Conflict]:
        """Enumerate all bag-constraint violations in the current assignment."""
        per_machine_bag: dict[tuple[int, int], list[int]] = {}
        for job_id, machine in self._assignment.items():
            bag = self._instance.job(job_id).bag
            per_machine_bag.setdefault((machine, bag), []).append(job_id)
        found: list[Conflict] = []
        for (machine, bag), job_ids in per_machine_bag.items():
            if len(job_ids) > 1:
                job_ids = sorted(job_ids)
                anchor = job_ids[0]
                for other in job_ids[1:]:
                    found.append(
                        Conflict(machine=machine, bag=bag, job_a=anchor, job_b=other)
                    )
        found.sort(key=lambda c: (c.machine, c.bag, c.job_a, c.job_b))
        return found

    def num_conflicts(self) -> int:
        """Number of bag-constraint violations."""
        return len(self.conflicts())

    def is_conflict_free(self) -> bool:
        """``True`` when no machine holds two jobs of one bag."""
        seen: set[tuple[int, int]] = set()
        for job_id, machine in self._assignment.items():
            key = (machine, self._instance.job(job_id).bag)
            if key in seen:
                return False
            seen.add(key)
        return True

    def validation_report(self) -> ValidationReport:
        """Full structural + feasibility report (never raises)."""
        missing = tuple(
            sorted(
                job.id for job in self._instance.jobs if job.id not in self._assignment
            )
        )
        unknown = tuple(
            sorted(job_id for job_id in self._assignment if job_id not in self._instance)
        )
        invalid = tuple(
            sorted(
                job_id
                for job_id, machine in self._assignment.items()
                if not 0 <= machine < self._instance.num_machines
            )
        )
        return ValidationReport(
            missing_jobs=missing,
            unknown_jobs=unknown,
            invalid_machines=invalid,
            conflicts=tuple(self.conflicts()),
        )

    def validate(self, *, require_complete: bool = True) -> "Schedule":
        """Raise :class:`InvalidScheduleError` if the schedule is infeasible.

        Parameters
        ----------
        require_complete:
            If ``True`` (default) every job of the instance must be
            assigned.  Partial schedules used internally pass ``False``.
        """
        report = self.validation_report()
        problems: list[str] = []
        if require_complete and report.missing_jobs:
            problems.append(f"unassigned jobs: {list(report.missing_jobs)[:10]}")
        if report.unknown_jobs:
            problems.append(f"unknown jobs: {list(report.unknown_jobs)[:10]}")
        if report.invalid_machines:
            problems.append(
                f"jobs on invalid machines: {list(report.invalid_machines)[:10]}"
            )
        if report.conflicts:
            problems.append(
                "bag conflicts: "
                + ", ".join(
                    f"(machine {c.machine}, bag {c.bag}, jobs {c.job_a}/{c.job_b})"
                    for c in report.conflicts[:5]
                )
                + (" ..." if len(report.conflicts) > 5 else "")
            )
        if problems:
            raise InvalidScheduleError(
                f"schedule for {self._instance.name!r} is infeasible: "
                + "; ".join(problems)
            )
        return self

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Serialize the assignment (not the instance) to a dictionary."""
        return {
            "instance": self._instance.name,
            "makespan": self.makespan(),
            "assignment": {str(job_id): machine for job_id, machine in sorted(self._assignment.items())},
        }

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.to_json())
        return path

    @classmethod
    def from_dict(cls, instance: Instance, data: Mapping[str, Any]) -> "Schedule":
        assignment = {int(job_id): int(machine) for job_id, machine in data["assignment"].items()}
        return cls(instance, assignment)

    @classmethod
    def from_machine_lists(
        cls, instance: Instance, machines: Sequence[Sequence[int]]
    ) -> "Schedule":
        """Build a schedule from per-machine lists of job identifiers."""
        assignment: dict[int, int] = {}
        for machine, job_ids in enumerate(machines):
            for job_id in job_ids:
                assignment[job_id] = machine
        return cls(instance, assignment)
