"""Instance model for machine scheduling with bag-constraints.

An :class:`Instance` bundles the job set, the bag partition (implicit in the
jobs' ``bag`` attributes) and the number of identical machines.  It offers
vectorised accessors (NumPy arrays of sizes), bag-level views, summary
statistics, and JSON serialization.  Instances are immutable; all algorithms
that "modify the instance" (rounding, the Section-2.2 transformation) return
new instances.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping, Sequence

import numpy as np

from .errors import InvalidInstanceError
from .job import Job

__all__ = ["Instance", "InstanceStats"]


@dataclass(frozen=True, slots=True)
class InstanceStats:
    """Summary statistics of an instance, used in reports and experiments."""

    num_jobs: int
    num_bags: int
    num_machines: int
    total_work: float
    max_job_size: float
    min_job_size: float
    mean_job_size: float
    max_bag_size: int
    mean_bag_size: float
    area_lower_bound: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "num_jobs": self.num_jobs,
            "num_bags": self.num_bags,
            "num_machines": self.num_machines,
            "total_work": self.total_work,
            "max_job_size": self.max_job_size,
            "min_job_size": self.min_job_size,
            "mean_job_size": self.mean_job_size,
            "max_bag_size": self.max_bag_size,
            "mean_bag_size": self.mean_bag_size,
            "area_lower_bound": self.area_lower_bound,
        }


class Instance:
    """An immutable instance of machine scheduling with bag-constraints.

    Parameters
    ----------
    jobs:
        The jobs of the instance.  Job identifiers must be unique.  Bag
        indices may be sparse (e.g. only bags 0 and 7 used); the instance
        exposes both the raw indices and a densely numbered view.
    num_machines:
        Number of identical machines ``m`` (must be >= 1).
    name:
        Optional human-readable name used in experiment reports.
    validate:
        If ``True`` (default), run structural validation on construction.
        Note that validation checks *satisfiability* of the bag constraint
        (no bag may contain more jobs than machines) because such instances
        admit no feasible schedule at all.
    """

    __slots__ = ("_jobs", "_num_machines", "_name", "_by_id", "_bags", "_sizes")

    def __init__(
        self,
        jobs: Iterable[Job],
        num_machines: int,
        *,
        name: str = "instance",
        validate: bool = True,
    ) -> None:
        job_tuple = tuple(jobs)
        self._jobs: tuple[Job, ...] = job_tuple
        self._num_machines = int(num_machines)
        self._name = str(name)
        self._by_id: dict[int, Job] = {job.id: job for job in job_tuple}
        bags: dict[int, list[Job]] = {}
        for job in job_tuple:
            bags.setdefault(job.bag, []).append(job)
        self._bags: dict[int, tuple[Job, ...]] = {
            bag: tuple(members) for bag, members in sorted(bags.items())
        }
        self._sizes = np.array([job.size for job in job_tuple], dtype=float)
        if validate:
            self.validate()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`InvalidInstanceError` if the instance is malformed."""
        if self._num_machines < 1:
            raise InvalidInstanceError(
                f"number of machines must be >= 1, got {self._num_machines}"
            )
        if len(self._by_id) != len(self._jobs):
            seen: set[int] = set()
            dupes = sorted(
                {job.id for job in self._jobs if job.id in seen or seen.add(job.id)}
            )
            raise InvalidInstanceError(f"duplicate job identifiers: {dupes}")
        for job in self._jobs:
            if job.size < 0:
                raise InvalidInstanceError(
                    f"job {job.id} has negative size {job.size}"
                )
        for bag, members in self._bags.items():
            if len(members) > self._num_machines:
                raise InvalidInstanceError(
                    f"bag {bag} has {len(members)} jobs but only "
                    f"{self._num_machines} machines are available; "
                    "no feasible schedule exists"
                )

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def jobs(self) -> tuple[Job, ...]:
        """All jobs in construction order."""
        return self._jobs

    @property
    def num_machines(self) -> int:
        """Number of identical machines ``m``."""
        return self._num_machines

    @property
    def name(self) -> str:
        """Human-readable instance name."""
        return self._name

    @property
    def num_jobs(self) -> int:
        """Number of jobs ``n``."""
        return len(self._jobs)

    @property
    def num_bags(self) -> int:
        """Number of non-empty bags ``b``."""
        return len(self._bags)

    @property
    def bag_indices(self) -> tuple[int, ...]:
        """Sorted tuple of bag indices that actually contain jobs."""
        return tuple(self._bags.keys())

    @property
    def sizes(self) -> np.ndarray:
        """Vector of job sizes in construction order (read-only view)."""
        view = self._sizes.view()
        view.setflags(write=False)
        return view

    @property
    def total_work(self) -> float:
        """Sum of all processing times."""
        return float(self._sizes.sum())

    @property
    def max_job_size(self) -> float:
        """Largest processing time (``0.0`` for an empty instance)."""
        return float(self._sizes.max()) if len(self._jobs) else 0.0

    def job(self, job_id: int) -> Job:
        """Look up a job by identifier."""
        try:
            return self._by_id[job_id]
        except KeyError as exc:  # pragma: no cover - defensive
            raise KeyError(f"no job with id {job_id} in instance {self._name}") from exc

    def __contains__(self, job_id: int) -> bool:
        return job_id in self._by_id

    def __iter__(self) -> Iterator[Job]:
        return iter(self._jobs)

    def __len__(self) -> int:
        return len(self._jobs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Instance(name={self._name!r}, n={self.num_jobs}, "
            f"b={self.num_bags}, m={self._num_machines})"
        )

    # ------------------------------------------------------------------
    # Bag-level views
    # ------------------------------------------------------------------
    def bag(self, bag_index: int) -> tuple[Job, ...]:
        """All jobs of the given bag (empty tuple if the bag is unused)."""
        return self._bags.get(bag_index, ())

    def bags(self) -> Mapping[int, tuple[Job, ...]]:
        """Mapping ``bag index -> jobs of that bag`` (sorted by index)."""
        return dict(self._bags)

    def bag_sizes(self) -> dict[int, int]:
        """Mapping ``bag index -> number of jobs in that bag``."""
        return {bag: len(members) for bag, members in self._bags.items()}

    def bag_of(self, job_id: int) -> int:
        """Bag index of the given job."""
        return self.job(job_id).bag

    def size_restricted_bag(self, bag_index: int, size: float, *, tol: float = 1e-12) -> tuple[Job, ...]:
        """Jobs of bag ``bag_index`` whose size equals ``size``.

        This realises the paper's ``B_l^s`` notation (Definition 1): the
        *size-restricted bag* containing all jobs of bag ``l`` with
        processing time exactly ``s``.  A small tolerance is used because
        rounded sizes are floats.
        """
        return tuple(
            job for job in self.bag(bag_index) if abs(job.size - size) <= tol * max(1.0, size)
        )

    def distinct_sizes(self) -> tuple[float, ...]:
        """Sorted tuple of distinct job sizes present in the instance."""
        return tuple(sorted({float(job.size) for job in self._jobs}))

    # ------------------------------------------------------------------
    # Derived constructions
    # ------------------------------------------------------------------
    def with_jobs(self, jobs: Iterable[Job], *, name: str | None = None) -> "Instance":
        """Return a new instance with the same machine count but new jobs."""
        return Instance(
            jobs,
            self._num_machines,
            name=name if name is not None else self._name,
            validate=False,
        )

    def with_machines(self, num_machines: int, *, name: str | None = None) -> "Instance":
        """Return a new instance with the same jobs but a new machine count."""
        return Instance(
            self._jobs,
            num_machines,
            name=name if name is not None else self._name,
            validate=False,
        )

    def scaled(self, factor: float, *, name: str | None = None) -> "Instance":
        """Return a copy of the instance with every job size multiplied by ``factor``.

        Used by the EPTAS to normalise the guessed optimum to ``1``.
        """
        if factor <= 0:
            raise ValueError(f"scaling factor must be positive, got {factor}")
        return Instance(
            (job.with_size(job.size * factor) for job in self._jobs),
            self._num_machines,
            name=name if name is not None else f"{self._name}*{factor:g}",
            validate=False,
        )

    def subset(self, job_ids: Iterable[int], *, name: str | None = None) -> "Instance":
        """Return a new instance restricted to the given job identifiers."""
        wanted = set(job_ids)
        return Instance(
            (job for job in self._jobs if job.id in wanted),
            self._num_machines,
            name=name if name is not None else f"{self._name}-subset",
            validate=False,
        )

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def stats(self) -> InstanceStats:
        """Compute summary statistics for reports and sanity checks."""
        sizes = self._sizes
        bag_counts = [len(members) for members in self._bags.values()]
        total = float(sizes.sum()) if sizes.size else 0.0
        return InstanceStats(
            num_jobs=self.num_jobs,
            num_bags=self.num_bags,
            num_machines=self._num_machines,
            total_work=total,
            max_job_size=float(sizes.max()) if sizes.size else 0.0,
            min_job_size=float(sizes.min()) if sizes.size else 0.0,
            mean_job_size=float(sizes.mean()) if sizes.size else 0.0,
            max_bag_size=max(bag_counts) if bag_counts else 0,
            mean_bag_size=float(np.mean(bag_counts)) if bag_counts else 0.0,
            area_lower_bound=total / self._num_machines if self._num_machines else 0.0,
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Serialize to a JSON-compatible dictionary."""
        return {
            "name": self._name,
            "num_machines": self._num_machines,
            "jobs": [job.to_dict() for job in self._jobs],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], *, validate: bool = True) -> "Instance":
        """Deserialize from :meth:`to_dict` output."""
        return cls(
            (Job.from_dict(entry) for entry in data["jobs"]),
            int(data["num_machines"]),
            name=str(data.get("name", "instance")),
            validate=validate,
        )

    def to_json(self, *, indent: int | None = 2) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str, *, validate: bool = True) -> "Instance":
        """Deserialize from a JSON string."""
        return cls.from_dict(json.loads(text), validate=validate)

    def save(self, path: str | Path) -> Path:
        """Write the instance to a JSON file and return the path."""
        path = Path(path)
        path.write_text(self.to_json())
        return path

    @classmethod
    def load(cls, path: str | Path, *, validate: bool = True) -> "Instance":
        """Read an instance from a JSON file."""
        return cls.from_json(Path(path).read_text(), validate=validate)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_sizes(
        cls,
        sizes: Sequence[float],
        bags: Sequence[int],
        num_machines: int,
        *,
        name: str = "instance",
        validate: bool = True,
    ) -> "Instance":
        """Build an instance from parallel lists of sizes and bag indices.

        The ``i``-th job receives identifier ``i``.  This is the most
        convenient constructor for tests and examples::

            Instance.from_sizes([3, 2, 2, 1], bags=[0, 0, 1, 1], num_machines=2)
        """
        if len(sizes) != len(bags):
            raise InvalidInstanceError(
                f"sizes and bags must have equal length, got {len(sizes)} and {len(bags)}"
            )
        jobs = [
            Job(id=index, size=float(size), bag=int(bag))
            for index, (size, bag) in enumerate(zip(sizes, bags))
        ]
        return cls(jobs, num_machines, name=name, validate=validate)

    @classmethod
    def without_bags(
        cls,
        sizes: Sequence[float],
        num_machines: int,
        *,
        name: str = "instance",
    ) -> "Instance":
        """Build a classical makespan instance (every job in its own bag).

        Placing each job in a singleton bag makes the bag constraint vacuous,
        which recovers plain ``P || C_max``.  Useful for comparing against
        classical algorithms and for tests.
        """
        return cls.from_sizes(sizes, bags=list(range(len(sizes))), num_machines=num_machines, name=name)
