"""Bipartite assignment helpers built on the max-flow substrate.

Lemma 3 of the paper assigns medium jobs of non-priority bags to machines
through a flow network: one node per bag, one node per machine, unit
capacities between a bag and every machine that carries no large job of the
bag, demand ``|B_l^med|`` at the bag side, and per-machine capacity
``ceil(sum_j x_{i,j})`` derived from an even fractional spreading.  This
module exposes the generic primitive (:func:`solve_bag_assignment`) plus a
bipartite maximum-matching convenience used in tests and in the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence

from .maxflow import FlowNetwork

__all__ = [
    "AssignmentProblem",
    "AssignmentResult",
    "solve_bag_assignment",
    "maximum_bipartite_matching",
]

_SOURCE = "__source__"
_SINK = "__sink__"


@dataclass(frozen=True, slots=True)
class AssignmentProblem:
    """A bag-to-machine assignment problem with capacities.

    Attributes
    ----------
    demands:
        Mapping ``group -> number of items to place`` (the paper: bag ->
        number of medium jobs).
    machine_capacities:
        Mapping ``machine -> maximum number of items it may receive``.
    allowed:
        Mapping ``group -> machines eligible for that group`` (the paper:
        machines holding no large job of the bag).  At most one item of a
        group may go to a single machine (unit edge capacity), mirroring the
        bag constraint.
    """

    demands: Mapping[Hashable, int]
    machine_capacities: Mapping[Hashable, int]
    allowed: Mapping[Hashable, Sequence[Hashable]]

    def total_demand(self) -> int:
        return sum(int(v) for v in self.demands.values())


@dataclass(frozen=True, slots=True)
class AssignmentResult:
    """Result of :func:`solve_bag_assignment`.

    ``assignment`` maps ``group -> list of machines``, one entry per placed
    item.  ``placed`` is the number of items placed; the problem is fully
    satisfied iff ``placed == total demand``.
    """

    assignment: dict[Hashable, list[Hashable]]
    placed: int
    satisfied: bool


def solve_bag_assignment(problem: AssignmentProblem) -> AssignmentResult:
    """Place as many items as possible subject to the capacities.

    Builds the Lemma-3 flow network (source -> group with capacity
    ``demand``, group -> machine with capacity ``1`` for allowed machines,
    machine -> sink with the machine capacity) and solves a single max-flow.
    Integrality of the flow gives an integral assignment; the paper's
    argument shows that when the fractional spreading is feasible the flow
    saturates every demand.
    """
    network = FlowNetwork()
    network.add_node(_SOURCE)
    network.add_node(_SINK)
    group_nodes: dict[Hashable, tuple[str, Hashable]] = {}
    machine_nodes: dict[Hashable, tuple[str, Hashable]] = {}

    for group, demand in problem.demands.items():
        node = ("group", group)
        group_nodes[group] = node
        network.add_edge(_SOURCE, node, int(demand))
    for machine, capacity in problem.machine_capacities.items():
        node = ("machine", machine)
        machine_nodes[machine] = node
        network.add_edge(node, _SINK, int(capacity))
    for group, machines in problem.allowed.items():
        if group not in group_nodes:
            continue
        for machine in machines:
            if machine not in machine_nodes:
                # Machines without declared capacity default to capacity 0;
                # adding the edge would be pointless.
                continue
            network.add_edge(group_nodes[group], machine_nodes[machine], 1)

    result = network.max_flow(_SOURCE, _SINK)
    assignment: dict[Hashable, list[Hashable]] = {group: [] for group in problem.demands}
    for (u, v), amount in result.edge_flows.items():
        if (
            isinstance(u, tuple)
            and isinstance(v, tuple)
            and u[0] == "group"
            and v[0] == "machine"
            and amount > 0
        ):
            assignment[u[1]].extend([v[1]] * amount)
    placed = result.value
    return AssignmentResult(
        assignment=assignment,
        placed=placed,
        satisfied=placed >= problem.total_demand(),
    )


def maximum_bipartite_matching(
    left: Sequence[Hashable],
    right: Sequence[Hashable],
    edges: Sequence[tuple[Hashable, Hashable]],
) -> dict[Hashable, Hashable]:
    """Maximum matching in a bipartite graph via unit-capacity max-flow.

    Returns a mapping ``left node -> matched right node`` for matched nodes
    only.  Used by tests as an independent check of the flow solver and by
    the simulator to pair replicas with machines.
    """
    network = FlowNetwork()
    network.add_node(_SOURCE)
    network.add_node(_SINK)
    for node in left:
        network.add_edge(_SOURCE, ("L", node), 1)
    for node in right:
        network.add_edge(("R", node), _SINK, 1)
    for u, v in edges:
        network.add_edge(("L", u), ("R", v), 1)
    result = network.max_flow(_SOURCE, _SINK)
    matching: dict[Hashable, Hashable] = {}
    for (a, b), amount in result.edge_flows.items():
        if (
            amount > 0
            and isinstance(a, tuple)
            and isinstance(b, tuple)
            and a[0] == "L"
            and b[0] == "R"
        ):
            matching[a[1]] = b[1]
    return matching
