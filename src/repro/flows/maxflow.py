"""Maximum-flow solver (Dinic's algorithm) implemented from scratch.

Lemma 3 of the paper re-inserts the medium jobs of non-priority bags through
an integral flow in a bipartite network (bags on one side, machines on the
other).  The paper invokes classical flow integrality; this module provides
the flow substrate: a capacity-scaled Dinic implementation on integer
capacities with deterministic behaviour, plus helpers to extract flows on
edges and to verify flow conservation.  Tests cross-check the values against
:func:`networkx.maximum_flow`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Mapping

__all__ = ["FlowNetwork", "FlowResult", "max_flow"]


@dataclass(slots=True)
class _Edge:
    """Internal residual-graph edge."""

    to: int
    capacity: int
    flow: int
    # Index of the reverse edge in the adjacency list of `to`.
    rev: int
    # True for edges that exist in the original network (not residual mirrors).
    original: bool


@dataclass(frozen=True, slots=True)
class FlowResult:
    """Result of a max-flow computation.

    ``value`` is the total flow from source to sink; ``edge_flows`` maps each
    original edge ``(u, v)`` to the integral flow routed over it (parallel
    edges are aggregated).
    """

    value: int
    edge_flows: dict[tuple[int, int], int]

    def flow_on(self, u: int, v: int) -> int:
        return self.edge_flows.get((u, v), 0)


class FlowNetwork:
    """A directed flow network with integer capacities.

    Nodes are referenced by arbitrary hashable labels; the network maps them
    to dense indices internally.  Capacities must be non-negative integers —
    the callers in this library only ever need unit and small integral
    capacities (Lemma 3's network has capacities ``|B_l^med|``, ``1`` and
    ``ceil(...)``), so integer arithmetic keeps the solver exact.
    """

    def __init__(self) -> None:
        self._index: dict[object, int] = {}
        self._labels: list[object] = []
        self._graph: list[list[_Edge]] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, label: object) -> int:
        """Add a node (idempotent) and return its dense index."""
        if label in self._index:
            return self._index[label]
        index = len(self._labels)
        self._index[label] = index
        self._labels.append(label)
        self._graph.append([])
        return index

    def add_edge(self, u: object, v: object, capacity: int) -> None:
        """Add a directed edge with the given non-negative integer capacity."""
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        if int(capacity) != capacity:
            raise ValueError(f"capacity must be integral, got {capacity}")
        ui = self.add_node(u)
        vi = self.add_node(v)
        forward = _Edge(to=vi, capacity=int(capacity), flow=0, rev=len(self._graph[vi]), original=True)
        backward = _Edge(to=ui, capacity=0, flow=0, rev=len(self._graph[ui]), original=False)
        self._graph[ui].append(forward)
        self._graph[vi].append(backward)

    @property
    def num_nodes(self) -> int:
        return len(self._labels)

    def nodes(self) -> list[object]:
        return list(self._labels)

    # ------------------------------------------------------------------
    # Dinic's algorithm
    # ------------------------------------------------------------------
    def _bfs_levels(self, source: int, sink: int) -> list[int] | None:
        levels = [-1] * self.num_nodes
        levels[source] = 0
        queue: deque[int] = deque([source])
        while queue:
            node = queue.popleft()
            for edge in self._graph[node]:
                if edge.capacity - edge.flow > 0 and levels[edge.to] < 0:
                    levels[edge.to] = levels[node] + 1
                    queue.append(edge.to)
        return levels if levels[sink] >= 0 else None

    def _dfs_blocking(
        self,
        node: int,
        sink: int,
        pushed: int,
        levels: list[int],
        iters: list[int],
    ) -> int:
        if node == sink:
            return pushed
        graph_node = self._graph[node]
        while iters[node] < len(graph_node):
            edge = graph_node[iters[node]]
            residual = edge.capacity - edge.flow
            if residual > 0 and levels[edge.to] == levels[node] + 1:
                amount = self._dfs_blocking(
                    edge.to, sink, min(pushed, residual), levels, iters
                )
                if amount > 0:
                    edge.flow += amount
                    self._graph[edge.to][edge.rev].flow -= amount
                    return amount
            iters[node] += 1
        return 0

    def max_flow(self, source: object, sink: object) -> FlowResult:
        """Compute a maximum integral flow from ``source`` to ``sink``."""
        if source not in self._index or sink not in self._index:
            raise KeyError("source and sink must be nodes of the network")
        src = self._index[source]
        dst = self._index[sink]
        if src == dst:
            raise ValueError("source and sink must differ")
        total = 0
        infinity = 1 << 60
        while True:
            levels = self._bfs_levels(src, dst)
            if levels is None:
                break
            iters = [0] * self.num_nodes
            while True:
                pushed = self._dfs_blocking(src, dst, infinity, levels, iters)
                if pushed == 0:
                    break
                total += pushed
        edge_flows: dict[tuple[int, int], int] = {}
        for u_index, edges in enumerate(self._graph):
            for edge in edges:
                if edge.original and edge.flow > 0:
                    key = (self._labels[u_index], self._labels[edge.to])
                    edge_flows[key] = edge_flows.get(key, 0) + edge.flow
        return FlowResult(value=total, edge_flows=edge_flows)

    # ------------------------------------------------------------------
    # Verification helpers (used by tests and by defensive checks)
    # ------------------------------------------------------------------
    def check_conservation(self, result: FlowResult, source: object, sink: object) -> bool:
        """Verify flow conservation of a result at every internal node."""
        balance: dict[object, int] = {label: 0 for label in self._labels}
        for (u, v), amount in result.edge_flows.items():
            balance[u] -= amount
            balance[v] += amount
        for label, net in balance.items():
            if label == source:
                if net != -result.value:
                    return False
            elif label == sink:
                if net != result.value:
                    return False
            elif net != 0:
                return False
        return True


def max_flow(
    edges: Iterable[tuple[object, object, int]] | Mapping[tuple[object, object], int],
    source: object,
    sink: object,
) -> FlowResult:
    """Convenience wrapper: build a network from an edge list and solve it.

    ``edges`` is either an iterable of ``(u, v, capacity)`` triples or a
    mapping ``(u, v) -> capacity``.
    """
    network = FlowNetwork()
    network.add_node(source)
    network.add_node(sink)
    if isinstance(edges, Mapping):
        items: Iterable[tuple[object, object, int]] = (
            (u, v, capacity) for (u, v), capacity in edges.items()
        )
    else:
        items = edges
    for u, v, capacity in items:
        network.add_edge(u, v, capacity)
    return network.max_flow(source, sink)
