"""Flow-network substrate: Dinic max-flow, bag-to-machine assignment, matching."""

from .maxflow import FlowNetwork, FlowResult, max_flow
from .assignment import (
    AssignmentProblem,
    AssignmentResult,
    maximum_bipartite_matching,
    solve_bag_assignment,
)

__all__ = [
    "AssignmentProblem",
    "AssignmentResult",
    "FlowNetwork",
    "FlowResult",
    "max_flow",
    "maximum_bipartite_matching",
    "solve_bag_assignment",
]
