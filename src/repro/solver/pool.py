"""Async subprocess solver pool: long-lived solver servers + futures API.

A :class:`SolverPool` owns ``N`` long-lived *solver server* processes, each
running :func:`_server_main`: a loop that receives compiled models over a
pipe, solves them with the registered backend, and sends the solution back.
The client side exposes a futures-based API:

* :meth:`SolverPool.submit` — enqueue one solve, get a
  :class:`concurrent.futures.Future` immediately;
* :meth:`SolverPool.solve_many` — submit a batch and gather the results in
  submission order, so ``k`` independent MILPs overlap across the servers
  instead of serialising in one process.

Reliability model
-----------------
* **Crash recovery** — a server that dies mid-solve (segfault, ``os._exit``,
  OOM kill) is detected via its process sentinel, restarted, and the
  in-flight request is retried on the fresh server up to ``max_retries``
  times; past that the request's future fails with
  :class:`SolverServerCrashError`.  Other requests are unaffected.
* **Per-solve hard timeout** — each request carries a wall-clock deadline
  (``hard_timeout``, defaulting to ``time_limit + grace`` when a backend
  time limit is set).  A server that blows the deadline is killed and
  restarted and the future fails with :class:`SolverPoolTimeoutError`; the
  pool itself stays healthy, so a timeout never poisons later solves.

Servers are started with the ``fork`` start method when available so they
inherit the parent's registered backends (including test doubles); under
``spawn`` an ``initializer`` callable can re-register custom backends.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import pickle
import threading
import time
import traceback
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from multiprocessing.connection import Connection, wait as connection_wait
from typing import Any, Callable, Mapping, Sequence

from ..analysis import racecheck
from ..core.errors import ReproError
from ..milp.model import CompiledModel, LinearModel, MilpSolution
from .registry import BackendSpec, resolve_backend

__all__ = [
    "PoolStats",
    "SolveRequest",
    "SolverBackendError",
    "SolverPool",
    "SolverPoolError",
    "SolverPoolTimeoutError",
    "SolverServerCrashError",
]

_POLL_INTERVAL = 0.05
DEFAULT_TIMEOUT_GRACE = 10.0


class SolverPoolError(ReproError):
    """Base class for solver-pool infrastructure failures."""


class SolverServerCrashError(SolverPoolError):
    """A solver server died while working on the request (after retries)."""


class SolverPoolTimeoutError(SolverPoolError):
    """The request exceeded its hard wall-clock deadline and was cancelled."""


class SolverBackendError(SolverPoolError):
    """The backend raised inside the server; carries the remote traceback."""


@dataclass(frozen=True, slots=True)
class SolveRequest:
    """One unit of work for :meth:`SolverPool.solve_many` / the service."""

    model: LinearModel | CompiledModel
    spec: BackendSpec | str = "scipy"
    time_limit: float | None = None
    mip_rel_gap: float = 0.0
    hard_timeout: float | None = None
    tag: str | None = None


@dataclass(slots=True)
class PoolStats:
    """Counters exposed by :meth:`SolverPool.stats`."""

    submitted: int = 0
    completed: int = 0
    crashes: int = 0
    restarts: int = 0
    timeouts: int = 0
    retries: int = 0


@dataclass(slots=True)
class _PendingSolve:
    request_id: int
    payload: tuple[CompiledModel, str, dict[str, Any], float | None, float]
    hard_timeout: float | None
    future: Future
    attempts: int = 0
    submitted_at: float = 0.0
    dispatched_at: float = 0.0
    started: bool = False


@dataclass(slots=True)
class _Server:
    index: int
    process: multiprocessing.process.BaseProcess
    conn: Connection
    current: _PendingSolve | None = None
    generation: int = 0


def _server_main(conn: Connection, initializer: Callable[[], None] | None) -> None:
    """Body of one solver server process: recv → solve → send, forever."""
    if initializer is not None:
        initializer()
    parent_pid = os.getppid()
    while True:
        try:
            # Under the fork start method this child inherits the parent's
            # end of its own pipe, so a SIGKILLed parent never produces EOF
            # here — and daemonic cleanup only runs on graceful parent exit.
            # Poll with a timeout and watch for re-parenting instead, so a
            # hard-killed pool owner (e.g. a solver-serve endpoint) does not
            # strand its solver processes.
            while not conn.poll(timeout=1.0):
                if os.getppid() != parent_pid:
                    return
            message = conn.recv()
        except (EOFError, OSError):
            return
        kind = message[0]
        if kind == "exit":
            return
        if kind == "ping":
            conn.send(("pong", os.getpid()))
            continue
        request_id, (model, backend_name, options, time_limit, mip_rel_gap) = message[1], message[2]
        try:
            backend = resolve_backend(backend_name)
            started = time.perf_counter()
            solution = backend.solve(
                model,
                time_limit=time_limit,
                mip_rel_gap=mip_rel_gap,
                options=options,
            )
            conn.send((request_id, "ok", solution, time.perf_counter() - started, os.getpid()))
        except BaseException as exc:  # noqa: BLE001 — report, don't die
            # Ship the exception object itself when it pickles, so library
            # errors (SolverLimitError & co.) keep their type on the client
            # and callers' isinstance-based fallback logic works identically
            # for inline and pooled solves.
            remote_traceback = traceback.format_exc()
            try:
                pickle.dumps(exc)
            except Exception:  # noqa: BLE001 — unpicklable: degrade to text
                conn.send(
                    (
                        request_id,
                        "error",
                        f"{type(exc).__name__}: {exc}",
                        remote_traceback,
                    )
                )
            else:
                conn.send((request_id, "raise", exc, remote_traceback))


def _default_context() -> multiprocessing.context.BaseContext:
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


class SolverPool:
    """N long-lived solver server subprocesses behind a futures API."""

    def __init__(
        self,
        num_servers: int = 2,
        *,
        max_retries: int = 1,
        timeout_grace: float = DEFAULT_TIMEOUT_GRACE,
        default_hard_timeout: float | None = None,
        mp_context: str | None = None,
        initializer: Callable[[], None] | None = None,
    ) -> None:
        if num_servers < 1:
            raise ValueError(f"num_servers must be >= 1, got {num_servers}")
        self.num_servers = int(num_servers)
        self.max_retries = int(max_retries)
        self.timeout_grace = float(timeout_grace)
        self.default_hard_timeout = default_hard_timeout
        self._initializer = initializer
        self._ctx = (
            multiprocessing.get_context(mp_context) if mp_context else _default_context()
        )
        self._lock = racecheck.tracked_lock("solver.pool")
        self._queue: deque[_PendingSolve] = deque()
        self._request_ids = itertools.count(1)
        self._stats = PoolStats()
        self._closed = False
        self._servers: list[_Server] = [self._start_server(i) for i in range(self.num_servers)]
        self._wake_r, self._wake_w = multiprocessing.Pipe(duplex=False)
        self._manager = threading.Thread(
            target=self._manage, name="solver-pool-manager", daemon=True
        )
        self._manager.start()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def submit(
        self,
        model: LinearModel | CompiledModel,
        *,
        spec: BackendSpec | str = "scipy",
        time_limit: float | None = None,
        mip_rel_gap: float = 0.0,
        hard_timeout: float | None = None,
    ) -> Future:
        """Enqueue one solve; returns a future resolving to a MilpSolution.

        The future's result carries the server-side wall time and pid in
        ``future.result().diagnostics`` (the service layer turns these into
        uniform telemetry).  Failure modes: :class:`SolverServerCrashError`,
        :class:`SolverPoolTimeoutError`, :class:`SolverBackendError`.
        """
        backend_spec = BackendSpec.coerce(spec)
        compiled = model.compile() if isinstance(model, LinearModel) else model
        if hard_timeout is None:
            if time_limit is not None:
                hard_timeout = float(time_limit) + self.timeout_grace
            else:
                hard_timeout = self.default_hard_timeout
        pending = _PendingSolve(
            request_id=next(self._request_ids),
            payload=(
                compiled,
                backend_spec.name,
                backend_spec.options_dict(),
                time_limit,
                float(mip_rel_gap),
            ),
            hard_timeout=hard_timeout,
            future=Future(),
            submitted_at=time.monotonic(),
        )
        with self._lock:
            # Checked under the lock: a submit racing close() must either
            # enqueue before the queue is drained or fail here — never park
            # a request on a dead queue where its future would hang forever.
            if self._closed:
                raise SolverPoolError("pool is closed")
            self._stats.submitted += 1
            self._queue.append(pending)
        self._wake()
        return pending.future

    def solve_many(self, requests: Sequence[SolveRequest]) -> list[MilpSolution]:
        """Solve a batch concurrently; results come back in request order.

        Infrastructure failures (crash after retries, hard timeout) raise —
        use the :class:`~repro.solver.service.SolverService` wrapper for the
        degrade-to-LIMIT behaviour the algorithm layer wants.
        """
        futures = [
            self.submit(
                request.model,
                spec=request.spec,
                time_limit=request.time_limit,
                mip_rel_gap=request.mip_rel_gap,
                hard_timeout=request.hard_timeout,
            )
            for request in requests
        ]
        return [future.result() for future in futures]

    def stats(self) -> PoolStats:
        with self._lock:
            return PoolStats(
                submitted=self._stats.submitted,
                completed=self._stats.completed,
                crashes=self._stats.crashes,
                restarts=self._stats.restarts,
                timeouts=self._stats.timeouts,
                retries=self._stats.retries,
            )

    def close(self) -> None:
        """Stop all servers; pending futures fail with SolverPoolError."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pending = list(self._queue)
            self._queue.clear()
        for item in pending:
            if not item.future.done():
                item.future.set_exception(SolverPoolError("pool closed before dispatch"))
        self._wake()
        self._manager.join(timeout=5.0)
        for server in self._servers:
            inflight = server.current
            server.current = None
            if inflight is not None and not inflight.future.done():
                inflight.future.set_exception(SolverPoolError("pool closed mid-solve"))
            self._stop_server(server)

    def __enter__(self) -> "SolverPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Server lifecycle
    # ------------------------------------------------------------------
    def _start_server(self, index: int, generation: int = 0) -> _Server:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_server_main,
            args=(child_conn, self._initializer),
            name=f"solver-server-{index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _Server(index=index, process=process, conn=parent_conn, generation=generation)

    def _stop_server(self, server: _Server) -> None:
        try:
            if server.process.is_alive():
                try:
                    server.conn.send(("exit",))
                except (BrokenPipeError, OSError):
                    pass
                server.process.join(timeout=1.0)
                if server.process.is_alive():
                    server.process.terminate()
                    server.process.join(timeout=1.0)
                    if server.process.is_alive():
                        server.process.kill()
                        server.process.join(timeout=1.0)
        finally:
            server.conn.close()

    def _restart_server(self, server: _Server) -> None:
        """Replace a dead/hung server with a fresh process in-place."""
        try:
            if server.process.is_alive():
                server.process.terminate()
                server.process.join(timeout=1.0)
                if server.process.is_alive():
                    server.process.kill()
                    server.process.join(timeout=1.0)
            server.conn.close()
        except OSError:
            pass
        fresh = self._start_server(server.index, generation=server.generation + 1)
        server.process = fresh.process
        server.conn = fresh.conn
        server.generation = fresh.generation
        server.current = None
        self._stats.restarts += 1

    # ------------------------------------------------------------------
    # Manager thread
    # ------------------------------------------------------------------
    def _wake(self) -> None:
        try:
            self._wake_w.send(b"x")
        except (BrokenPipeError, OSError):
            pass

    def _dispatch_locked(self) -> None:
        for server in self._servers:
            if server.current is not None:
                continue
            if not server.process.is_alive():
                # Died while idle (e.g. killed externally): bring it back so
                # the pool never silently loses capacity.
                self._stats.crashes += 1
                self._restart_server(server)
            pending = None
            while self._queue:
                candidate = self._queue.popleft()
                if not candidate.started:
                    # First dispatch: honour Future.cancel() called while
                    # the request was still queued.  Retries are already in
                    # RUNNING state and cannot be cancelled.
                    if not candidate.future.set_running_or_notify_cancel():
                        continue
                    candidate.started = True
                pending = candidate
                break
            if pending is None:
                continue
            pending.attempts += 1
            pending.dispatched_at = time.monotonic()
            try:
                server.conn.send(("solve", pending.request_id, pending.payload))
            except (BrokenPipeError, OSError):
                # Server died between liveness check and send: restart and
                # put the request back (the attempt did not reach a solver).
                pending.attempts -= 1
                self._queue.appendleft(pending)
                self._stats.crashes += 1
                self._restart_server(server)
                continue
            server.current = pending

    def _fail_or_retry_locked(
        self,
        pending: _PendingSolve | None,
        error: Exception,
        settlements: "list[tuple[Future, Exception | None, Any]]",
    ) -> None:
        if pending is None:
            return
        if isinstance(error, SolverServerCrashError) and pending.attempts <= self.max_retries:
            self._stats.retries += 1
            self._queue.appendleft(pending)
        else:
            settlements.append((pending.future, error, None))

    def _manage(self) -> None:
        while True:
            with self._lock:
                if self._closed:
                    return
                self._dispatch_locked()
                waitables: list[Any] = [self._wake_r]
                for server in self._servers:
                    if server.current is not None:
                        waitables.append(server.conn)
                        waitables.append(server.process.sentinel)
            ready = connection_wait(waitables, timeout=_POLL_INTERVAL)
            if self._wake_r in ready:
                try:
                    while self._wake_r.poll():
                        self._wake_r.recv_bytes()
                except (EOFError, OSError):
                    pass
            now = time.monotonic()
            # Futures are settled only *after* the lock is released: a done
            # callback may take its owner's lock (the fabric's _local_done
            # takes the fabric client lock), and that owner may hold its
            # lock while calling submit() — settling under our lock is a
            # lock-order inversion away from a deadlock (racecheck catches
            # exactly this nesting).
            settlements: "list[tuple[Future, Exception | None, Any]]" = []
            with self._lock:
                if self._closed:
                    return
                for server in self._servers:
                    pending = server.current
                    if pending is None:
                        continue
                    # 1. A result (or backend error) arrived.
                    got_message = False
                    try:
                        while server.conn.poll():
                            message = server.conn.recv()
                            got_message = True
                            self._complete_locked(server, message, settlements)
                            break
                    except (EOFError, OSError):
                        got_message = False
                    if got_message:
                        continue
                    # 2. The server died mid-solve.
                    if not server.process.is_alive():
                        self._stats.crashes += 1
                        server.current = None
                        self._restart_server(server)
                        self._fail_or_retry_locked(
                            pending,
                            SolverServerCrashError(
                                f"solver server died during solve "
                                f"(request {pending.request_id}, attempt {pending.attempts})"
                            ),
                            settlements,
                        )
                        continue
                    # 3. The hard deadline passed: kill + restart the server.
                    if (
                        pending.hard_timeout is not None
                        and now - pending.dispatched_at > pending.hard_timeout
                    ):
                        self._stats.timeouts += 1
                        server.current = None
                        self._restart_server(server)
                        timeout_error = SolverPoolTimeoutError(
                            f"solve exceeded hard timeout of {pending.hard_timeout:.3g}s "
                            f"(request {pending.request_id}); server restarted"
                        )
                        # How long the solve actually ran before being
                        # killed — the service records this as the solve's
                        # wall time instead of the time since batch start.
                        timeout_error.solve_wall_time = now - pending.dispatched_at
                        self._fail_or_retry_locked(pending, timeout_error, settlements)
            for future, error, solution in settlements:
                if error is not None:
                    future.set_exception(error)
                else:
                    future.set_result(solution)

    def _complete_locked(
        self,
        server: _Server,
        message: tuple,
        settlements: "list[tuple[Future, Exception | None, Any]]",
    ) -> None:
        pending = server.current
        server.current = None
        if pending is None or message[0] != pending.request_id:
            # A stale reply from a generation we already gave up on.
            return
        if message[1] == "ok":
            _, _, solution, server_wall_time, server_pid = message
            solution.diagnostics.setdefault("server_wall_time", float(server_wall_time))
            solution.diagnostics.setdefault("server_pid", int(server_pid))
            # Time the solve sat in the queue before a server took it —
            # retries restamp dispatched_at, so this is wait before the
            # attempt that actually finished.
            solution.diagnostics.setdefault(
                "queue_wait_s",
                max(0.0, pending.dispatched_at - pending.submitted_at),
            )
            self._stats.completed += 1
            settlements.append((pending.future, None, solution))
        elif message[1] == "raise":
            _, _, exc, remote_traceback = message
            self._stats.completed += 1
            if isinstance(exc, ReproError):
                # Library errors keep their type so callers handle pooled
                # and inline solves identically; the remote traceback rides
                # along for debugging.
                exc.remote_traceback = remote_traceback
                settlements.append((pending.future, exc, None))
            else:
                settlements.append(
                    (
                        pending.future,
                        SolverBackendError(
                            f"{type(exc).__name__}: {exc}\n--- remote traceback ---\n"
                            f"{remote_traceback}"
                        ),
                        None,
                    )
                )
        else:
            _, _, summary, remote_traceback = message
            self._stats.completed += 1
            settlements.append(
                (
                    pending.future,
                    SolverBackendError(
                        f"{summary}\n--- remote traceback ---\n{remote_traceback}"
                    ),
                    None,
                )
            )
