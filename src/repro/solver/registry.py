"""Pluggable MILP backend registry.

Every solve in the repository goes through a :class:`BackendSpec` — a
validated ``(name, options)`` pair — resolved against a process-global
registry of :class:`SolverBackend` implementations.  This replaces the old
``if backend == "scipy": ...`` string dispatch that used to live in
:func:`repro.milp.solve_model`: new backends (a Gurobi shim, a remote
solver, a chaos backend for tests) plug in via :func:`register_backend`
without touching any call site.

The registry also emits the **backend fingerprint** used by the
orchestration result cache: ``name@version+digest12(options)``.  The
fingerprint changes when the backend implementation version changes (e.g. a
scipy upgrade) or when any solver option changes, so cached results are
never silently reused across a solver change.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Mapping, Protocol, runtime_checkable

from ..milp.model import CompiledModel, LinearModel, MilpSolution

__all__ = [
    "BackendSpec",
    "SolverBackend",
    "available_backends",
    "backend_fingerprint",
    "register_backend",
    "resolve_backend",
    "unregister_backend",
]


@runtime_checkable
class SolverBackend(Protocol):
    """The contract a pluggable MILP backend implements.

    ``name`` is the registry key; ``version`` feeds the cache fingerprint
    (bump it whenever results could change for the same model).  ``solve``
    receives an already-compiled model plus the per-solve limits and the
    spec's option mapping, and returns a :class:`MilpSolution`.
    """

    name: str

    @property
    def version(self) -> str: ...

    def solve(
        self,
        model: CompiledModel,
        *,
        time_limit: float | None,
        mip_rel_gap: float,
        options: Mapping[str, Any],
    ) -> MilpSolution: ...


_REGISTRY: dict[str, SolverBackend] = {}


def _canonical_options(options: Mapping[str, Any]) -> tuple[tuple[str, Any], ...]:
    return tuple(sorted(options.items()))


@dataclass(frozen=True, slots=True)
class BackendSpec:
    """A validated reference to a registered backend plus its options.

    Construct via :meth:`coerce` (accepts a bare name string, a mapping, or
    an existing spec) or :meth:`make`; both validate the backend name
    against the registry immediately, so a typo fails at *configuration
    construction* time rather than deep inside the first solve.
    """

    name: str
    options: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def make(cls, name: str, **options: Any) -> "BackendSpec":
        spec = cls(name=str(name), options=_canonical_options(options))
        resolve_backend(spec.name)  # fail fast on unknown names
        return spec

    @classmethod
    def coerce(cls, value: "BackendSpec | str | Mapping[str, Any]") -> "BackendSpec":
        """Normalise user input into a validated spec.

        Accepts ``"scipy"``, ``BackendSpec(...)`` or
        ``{"name": "bnb", "options": {...}}`` (the JSON form emitted by
        :meth:`to_dict`, so specs round-trip through grid parameter dicts).
        """
        if isinstance(value, BackendSpec):
            resolve_backend(value.name)
            return value
        if isinstance(value, str):
            return cls.make(value)
        if isinstance(value, Mapping):
            name = value.get("name")
            if not isinstance(name, str):
                raise ValueError(f"backend spec mapping needs a 'name' string, got {value!r}")
            return cls.make(name, **dict(value.get("options") or {}))
        raise TypeError(
            f"cannot coerce {type(value).__name__} into a BackendSpec; "
            "expected a backend name, a mapping or a BackendSpec"
        )

    def with_options(self, **options: Any) -> "BackendSpec":
        merged = dict(self.options)
        merged.update(options)
        return BackendSpec(name=self.name, options=_canonical_options(merged))

    def options_dict(self) -> dict[str, Any]:
        return dict(self.options)

    def to_dict(self) -> dict[str, Any] | str:
        """JSON-able form: the bare name when there are no options."""
        if not self.options:
            return self.name
        return {"name": self.name, "options": self.options_dict()}

    @property
    def fingerprint(self) -> str:
        return backend_fingerprint(self)


def register_backend(backend: SolverBackend, *, replace: bool = False) -> SolverBackend:
    """Add a backend to the registry.

    Re-registering an existing name raises unless ``replace=True`` — this
    protects the builtin backends from accidental shadowing while still
    letting tests swap in instrumented doubles deliberately.
    """
    name = backend.name
    if not replace and name in _REGISTRY:
        raise ValueError(f"backend {name!r} is already registered (pass replace=True)")
    _REGISTRY[name] = backend
    return backend


def unregister_backend(name: str) -> None:
    """Remove a backend (no-op when absent).  Mostly for test cleanup."""
    _REGISTRY.pop(name, None)


def resolve_backend(name: str) -> SolverBackend:
    """Look a backend up by name; unknown names raise ``ValueError``."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown MILP backend {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def available_backends() -> list[str]:
    _ensure_builtins()
    return sorted(_REGISTRY)


def backend_fingerprint(spec: "BackendSpec | str") -> str:
    """``name@version+digest12(options)`` — the cache identity of a backend."""
    if isinstance(spec, str):
        spec = BackendSpec.make(spec)
    backend = resolve_backend(spec.name)
    blob = json.dumps(spec.options_dict(), sort_keys=True, separators=(",", ":"), default=str)
    digest = hashlib.sha256(blob.encode()).hexdigest()[:12]
    return f"{spec.name}@{backend.version}+{digest}"


# ----------------------------------------------------------------------
# Builtin backends
# ----------------------------------------------------------------------
def _compiled(model: LinearModel | CompiledModel) -> CompiledModel:
    return model.compile() if isinstance(model, LinearModel) else model


class _ScipyBackend:
    """HiGHS via :func:`scipy.optimize.milp` (the default exact oracle)."""

    name = "scipy"

    @property
    def version(self) -> str:
        import scipy

        return scipy.__version__

    def solve(
        self,
        model: CompiledModel,
        *,
        time_limit: float | None,
        mip_rel_gap: float,
        options: Mapping[str, Any],
    ) -> MilpSolution:
        from ..milp.scipy_backend import solve_with_scipy

        return solve_with_scipy(
            _compiled(model),
            time_limit=time_limit,
            mip_rel_gap=mip_rel_gap,
            node_limit=options.get("node_limit"),
        )


class _BranchAndBoundBackend:
    """The repo's own LP-based branch and bound (cross-checks HiGHS)."""

    name = "bnb"

    @property
    def version(self) -> str:
        from .. import __version__

        return __version__

    def solve(
        self,
        model: CompiledModel,
        *,
        time_limit: float | None,
        mip_rel_gap: float,
        options: Mapping[str, Any],
    ) -> MilpSolution:
        from ..milp.branch_and_bound import BranchAndBoundConfig, solve_with_branch_and_bound

        known = {f for f in BranchAndBoundConfig.__dataclass_fields__}
        config_kwargs = {key: value for key, value in options.items() if key in known}
        if time_limit is not None and "time_limit" not in config_kwargs:
            config_kwargs["time_limit"] = time_limit
        config = BranchAndBoundConfig(**config_kwargs) if config_kwargs else None
        return solve_with_branch_and_bound(_compiled(model), config)


class _LpRelaxationBackend:
    """LP relaxation only — used for lower bounds and diagnostics."""

    name = "lp"

    @property
    def version(self) -> str:
        import scipy

        return scipy.__version__

    def solve(
        self,
        model: CompiledModel,
        *,
        time_limit: float | None,
        mip_rel_gap: float,
        options: Mapping[str, Any],
    ) -> MilpSolution:
        from ..milp.scipy_backend import solve_lp_relaxation

        return solve_lp_relaxation(_compiled(model))


def _ensure_builtins() -> None:
    for cls in (_ScipyBackend, _BranchAndBoundBackend, _LpRelaxationBackend):
        if cls.name not in _REGISTRY:
            _REGISTRY[cls.name] = cls()


_ensure_builtins()
