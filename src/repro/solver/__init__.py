"""Pluggable solver service layer (see docs/solver-backends.md).

Three pieces:

* :mod:`repro.solver.registry` — the :class:`SolverBackend` protocol, the
  process-global backend registry (``register_backend`` /
  ``resolve_backend``) and validated :class:`BackendSpec` references with
  cache fingerprints.
* :mod:`repro.solver.pool` — an async subprocess solver pool: N long-lived
  solver server processes behind a futures ``submit()`` / ``solve_many()``
  API with per-solve hard timeouts, cancellation and crash-recovery
  restarts.
* :mod:`repro.solver.service` — the :class:`SolverService` facade the whole
  repository calls through; attaches uniform telemetry to every solution
  and routes batches onto the pool when one is installed
  (:func:`pooled_service_scope`).

:func:`repro.milp.solve_model` is a thin shim over this package; no other
call site dispatches on raw backend strings.
"""

from __future__ import annotations

from .pool import (
    PoolStats,
    SolveRequest,
    SolverBackendError,
    SolverPool,
    SolverPoolError,
    SolverPoolTimeoutError,
    SolverServerCrashError,
)
from .registry import (
    BackendSpec,
    SolverBackend,
    available_backends,
    backend_fingerprint,
    register_backend,
    resolve_backend,
    unregister_backend,
)
from .service import (
    SolverService,
    get_solver_service,
    pooled_service_scope,
    service_scope,
)

__all__ = [
    "BackendSpec",
    "PoolStats",
    "SolveRequest",
    "SolverBackend",
    "SolverBackendError",
    "SolverPool",
    "SolverPoolError",
    "SolverPoolTimeoutError",
    "SolverServerCrashError",
    "SolverService",
    "available_backends",
    "backend_fingerprint",
    "get_solver_service",
    "pooled_service_scope",
    "register_backend",
    "resolve_backend",
    "service_scope",
    "unregister_backend",
]
