"""Pluggable solver service layer (see docs/solver-backends.md).

Three pieces:

* :mod:`repro.solver.registry` — the :class:`SolverBackend` protocol, the
  process-global backend registry (``register_backend`` /
  ``resolve_backend``) and validated :class:`BackendSpec` references with
  cache fingerprints.
* :mod:`repro.solver.pool` — an async subprocess solver pool: N long-lived
  solver server processes behind a futures ``submit()`` / ``solve_many()``
  API with per-solve hard timeouts, cancellation and crash-recovery
  restarts.
* :mod:`repro.solver.service` — the :class:`SolverService` facade the whole
  repository calls through; attaches uniform telemetry to every solution
  and routes batches onto the pool when one is installed
  (:func:`pooled_service_scope` / :func:`solver_service_scope`).
* :mod:`repro.solver.fabric` — the remote solver fabric: solver servers any
  host runs (``repro orch solver-serve``) and the :class:`SolverFabric`
  client that routes solves across them with least-loaded EWMA scheduling,
  a content-hash result memo, and exactly-once work-stealing around dead or
  wedged endpoints.  Imported lazily: plain single-host runs never touch
  the networking stack.

:func:`repro.milp.solve_model` is a thin shim over this package; no other
call site dispatches on raw backend strings.
"""

from __future__ import annotations

from .pool import (
    PoolStats,
    SolveRequest,
    SolverBackendError,
    SolverPool,
    SolverPoolError,
    SolverPoolTimeoutError,
    SolverServerCrashError,
)
from .registry import (
    BackendSpec,
    SolverBackend,
    available_backends,
    backend_fingerprint,
    register_backend,
    resolve_backend,
    unregister_backend,
)
from .service import (
    SolverService,
    get_solver_service,
    pooled_service_scope,
    service_scope,
    solver_service_scope,
)

_FABRIC_NAMES = frozenset(
    {
        "DEFAULT_SOLVER_PORT",
        "FabricStats",
        "SolverFabric",
        "SolverFabricError",
        "SolverFabricServer",
    }
)

__all__ = [
    "BackendSpec",
    "DEFAULT_SOLVER_PORT",
    "FabricStats",
    "PoolStats",
    "SolveRequest",
    "SolverBackend",
    "SolverBackendError",
    "SolverFabric",
    "SolverFabricError",
    "SolverFabricServer",
    "SolverPool",
    "SolverPoolError",
    "SolverPoolTimeoutError",
    "SolverServerCrashError",
    "SolverService",
    "available_backends",
    "backend_fingerprint",
    "get_solver_service",
    "pooled_service_scope",
    "register_backend",
    "resolve_backend",
    "service_scope",
    "solver_service_scope",
    "unregister_backend",
]


def __getattr__(name: str) -> object:
    # Fabric symbols resolve lazily so importing repro.solver stays free of
    # the sockets/select machinery for single-host runs.
    if name in _FABRIC_NAMES:
        from . import fabric

        return getattr(fabric, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
