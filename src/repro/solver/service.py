"""SolverService: the single facade every MILP call site goes through.

The service resolves a :class:`~repro.solver.registry.BackendSpec` against
the backend registry, runs the solve either **inline** (no pool) or on the
attached :class:`~repro.solver.pool.SolverPool`, and attaches uniform
:class:`~repro.milp.model.SolveTelemetry` (wall time, status, backend
fingerprint, pooled flag) to every returned
:class:`~repro.milp.model.MilpSolution`.

A process-global *current service* makes the pool pluggable without
threading it through every config object: the orchestration worker installs
a pooled service around its claim–execute loop via
:func:`pooled_service_scope`, and all solves inside the cell (EPTAS
configuration MILPs, exact assignment MILPs, the Das–Wiese ILP) pick it up
through :func:`get_solver_service`.

Failure semantics: a pool *hard timeout* degrades to a ``LIMIT`` solution
(exactly like an inline backend hitting its time limit) so algorithms treat
it as "guess infeasible"; a server crash that survives retries raises
:class:`~repro.solver.pool.SolverServerCrashError` — that is an
infrastructure failure worth surfacing, not a property of the model.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterator, Sequence

from ..milp.model import LinearModel, CompiledModel, MilpSolution, SolutionStatus, SolveTelemetry
from .pool import SolveRequest, SolverPool, SolverPoolTimeoutError
from .registry import BackendSpec, backend_fingerprint, resolve_backend

__all__ = [
    "SolverService",
    "get_solver_service",
    "pooled_service_scope",
    "service_scope",
]


class SolverService:
    """Facade over the backend registry and an optional subprocess pool."""

    def __init__(self, pool: SolverPool | None = None) -> None:
        self.pool = pool
        self._stats: dict[str, Any] = {
            "solves": 0,
            "pooled_solves": 0,
            "wall_time": 0.0,
            "backends": {},
        }

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    @property
    def concurrency(self) -> int:
        """How many solves can genuinely overlap (1 without a pool)."""
        return self.pool.num_servers if self.pool is not None else 1

    def solve(
        self,
        model: LinearModel | CompiledModel,
        *,
        spec: BackendSpec | str = "scipy",
        time_limit: float | None = None,
        mip_rel_gap: float = 0.0,
    ) -> MilpSolution:
        """Solve one model inline (single solves never pay pool overhead)."""
        backend_spec = BackendSpec.coerce(spec)
        started = time.perf_counter()
        solution = self._solve_inline(
            model, backend_spec, time_limit=time_limit, mip_rel_gap=mip_rel_gap
        )
        self._finish(solution, backend_spec, time.perf_counter() - started, pooled=False)
        return solution

    def solve_many(
        self, requests: Sequence[SolveRequest], *, return_exceptions: bool = False
    ) -> list["MilpSolution | Exception"]:
        """Solve a batch, overlapping on the pool when one is attached.

        Results are returned in request order.  Without a pool (or for a
        single request) this degrades to sequential inline solves, so
        callers can batch unconditionally.

        With ``return_exceptions=True`` a failing solve yields its exception
        in that request's slot instead of aborting the batch — the solver
        analogue of ``asyncio.gather`` — so callers with per-item fallback
        logic (the EPTAS search) never lose the rest of a round.
        """
        requests = list(requests)
        if self.pool is None or len(requests) <= 1:
            results: list[MilpSolution | Exception] = []
            for request in requests:
                try:
                    results.append(
                        self.solve(
                            request.model,
                            spec=request.spec,
                            time_limit=request.time_limit,
                            mip_rel_gap=request.mip_rel_gap,
                        )
                    )
                except Exception as exc:  # noqa: BLE001 — re-raised unless opted in
                    if not return_exceptions:
                        raise
                    results.append(exc)
            return results
        specs = [BackendSpec.coerce(request.spec) for request in requests]
        started = time.perf_counter()
        futures = [
            self.pool.submit(
                request.model,
                spec=spec,
                time_limit=request.time_limit,
                mip_rel_gap=request.mip_rel_gap,
                hard_timeout=request.hard_timeout,
            )
            for request, spec in zip(requests, specs)
        ]
        # Completion times recorded by callback, not at sequential result()
        # time: the fallback wall for a solve with no server-side measurement
        # (e.g. a timeout) must not absorb the wait on earlier futures.
        finished_at: dict[int, float] = {}
        for index, future in enumerate(futures):
            future.add_done_callback(
                lambda _future, index=index: finished_at.setdefault(
                    index, time.perf_counter()
                )
            )
        results = []
        for index, (future, spec) in enumerate(zip(futures, specs)):
            try:
                solution = future.result()
            except SolverPoolTimeoutError as exc:
                # Same contract as an inline backend hitting its time limit.
                # The pool reports how long the killed solve actually ran;
                # without it the fallback below would charge the whole
                # batch-queue wait to this one solve.
                diagnostics: dict[str, Any] = {"pool_timeout": str(exc)}
                solve_wall_time = getattr(exc, "solve_wall_time", None)
                if solve_wall_time is not None:
                    diagnostics["server_wall_time"] = float(solve_wall_time)
                solution = MilpSolution(
                    status=SolutionStatus.LIMIT,
                    objective=float("inf"),
                    diagnostics=diagnostics,
                )
            except Exception as exc:  # noqa: BLE001 — re-raised unless opted in
                if not return_exceptions:
                    raise
                results.append(exc)
                continue
            elapsed = finished_at.get(index, time.perf_counter()) - started
            wall = float(solution.diagnostics.get("server_wall_time", elapsed))
            self._finish(solution, spec, wall, pooled=True)
            results.append(solution)
        return results

    def _solve_inline(
        self,
        model: LinearModel | CompiledModel,
        spec: BackendSpec,
        *,
        time_limit: float | None,
        mip_rel_gap: float,
    ) -> MilpSolution:
        backend = resolve_backend(spec.name)
        compiled = model.compile() if isinstance(model, LinearModel) else model
        return backend.solve(
            compiled,
            time_limit=time_limit,
            mip_rel_gap=mip_rel_gap,
            options=spec.options_dict(),
        )

    def _finish(
        self, solution: MilpSolution, spec: BackendSpec, wall_time: float, *, pooled: bool
    ) -> None:
        fingerprint = backend_fingerprint(spec)
        solution.telemetry = SolveTelemetry(
            backend=spec.name,
            fingerprint=fingerprint,
            wall_time=float(wall_time),
            status=solution.status.value,
            pooled=pooled,
            server_pid=solution.diagnostics.get("server_pid"),
        )
        self._stats["solves"] += 1
        if pooled:
            self._stats["pooled_solves"] += 1
        self._stats["wall_time"] += float(wall_time)
        per_backend = self._stats["backends"]
        per_backend[fingerprint] = per_backend.get(fingerprint, 0) + 1

    # ------------------------------------------------------------------
    # Telemetry counters (per process, per service)
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        return {
            "solves": self._stats["solves"],
            "pooled_solves": self._stats["pooled_solves"],
            "wall_time": self._stats["wall_time"],
            "backends": dict(self._stats["backends"]),
        }

    def stats_delta(self, before: dict[str, Any]) -> dict[str, Any]:
        """Difference between :meth:`stats` now and an earlier snapshot."""
        now = self.stats()
        backends = {
            fp: count - before.get("backends", {}).get(fp, 0)
            for fp, count in now["backends"].items()
            if count - before.get("backends", {}).get(fp, 0)
        }
        return {
            "solves": now["solves"] - before.get("solves", 0),
            "pooled_solves": now["pooled_solves"] - before.get("pooled_solves", 0),
            "wall_time": now["wall_time"] - before.get("wall_time", 0.0),
            "backends": backends,
        }


_default_service = SolverService()
_current_service: SolverService = _default_service


def get_solver_service() -> SolverService:
    """The service in effect for this process (pooled inside scopes)."""
    return _current_service


@contextmanager
def service_scope(service: SolverService) -> Iterator[SolverService]:
    """Install ``service`` as the current one for the scope's duration."""
    global _current_service
    previous = _current_service
    _current_service = service
    try:
        yield service
    finally:
        _current_service = previous


@contextmanager
def pooled_service_scope(
    num_servers: int, **pool_kwargs: Any
) -> Iterator[SolverService]:
    """Run the scope with a fresh subprocess pool attached to the service.

    ``num_servers <= 0`` is a no-op scope yielding the ambient service, so
    callers can pass a CLI value straight through.
    """
    if num_servers <= 0:
        yield get_solver_service()
        return
    pool = SolverPool(num_servers, **pool_kwargs)
    try:
        with service_scope(SolverService(pool)) as service:
            yield service
    finally:
        pool.close()
