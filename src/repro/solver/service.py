"""SolverService: the single facade every MILP call site goes through.

The service resolves a :class:`~repro.solver.registry.BackendSpec` against
the backend registry, runs the solve either **inline** (no pool) or on the
attached :class:`~repro.solver.pool.SolverPool`, and attaches uniform
:class:`~repro.milp.model.SolveTelemetry` (wall time, status, backend
fingerprint, pooled flag) to every returned
:class:`~repro.milp.model.MilpSolution`.

A process-global *current service* makes the pool pluggable without
threading it through every config object: the orchestration worker installs
a pooled service around its claim–execute loop via
:func:`pooled_service_scope`, and all solves inside the cell (EPTAS
configuration MILPs, exact assignment MILPs, the Das–Wiese ILP) pick it up
through :func:`get_solver_service`.

Failure semantics: a pool *hard timeout* degrades to a ``LIMIT`` solution
(exactly like an inline backend hitting its time limit) so algorithms treat
it as "guess infeasible"; a server crash that survives retries raises
:class:`~repro.solver.pool.SolverServerCrashError` — that is an
infrastructure failure worth surfacing, not a property of the model.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Iterator, Sequence

from ..milp.model import LinearModel, CompiledModel, MilpSolution, SolutionStatus, SolveTelemetry
from .pool import SolveRequest, SolverPool, SolverPoolTimeoutError
from .registry import BackendSpec, backend_fingerprint, resolve_backend

if TYPE_CHECKING:  # pragma: no cover — import cycle at runtime
    from .fabric import SolverFabric

__all__ = [
    "SolverService",
    "get_solver_service",
    "pooled_service_scope",
    "service_scope",
    "solver_service_scope",
]


class SolverService:
    """Facade over the backend registry and an optional subprocess pool.

    ``pool`` is anything with the pool futures API — a local
    :class:`~repro.solver.pool.SolverPool` or a
    :class:`~repro.solver.fabric.SolverFabric` routing solves across remote
    endpoints; the service cannot tell them apart and does not try to.
    """

    def __init__(self, pool: "SolverPool | SolverFabric | None" = None) -> None:
        self.pool = pool
        self._stats: dict[str, Any] = {
            "solves": 0,
            "pooled_solves": 0,
            "wall_time": 0.0,
            "queue_wait_s": 0.0,
            "solve_s": 0.0,
            "wire_s": 0.0,
            "backends": {},
            "endpoints": {},
        }

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    @property
    def concurrency(self) -> int:
        """How many solves can genuinely overlap (1 without a pool)."""
        return self.pool.num_servers if self.pool is not None else 1

    def solve(
        self,
        model: LinearModel | CompiledModel,
        *,
        spec: BackendSpec | str = "scipy",
        time_limit: float | None = None,
        mip_rel_gap: float = 0.0,
    ) -> MilpSolution:
        """Solve one model inline (single solves never pay pool overhead)."""
        backend_spec = BackendSpec.coerce(spec)
        started = time.perf_counter()
        solution = self._solve_inline(
            model, backend_spec, time_limit=time_limit, mip_rel_gap=mip_rel_gap
        )
        self._finish(solution, backend_spec, time.perf_counter() - started, pooled=False)
        return solution

    def solve_many(
        self, requests: Sequence[SolveRequest], *, return_exceptions: bool = False
    ) -> list["MilpSolution | Exception"]:
        """Solve a batch, overlapping on the pool when one is attached.

        Results are returned in request order.  Without a pool (or for a
        single request) this degrades to sequential inline solves, so
        callers can batch unconditionally.

        With ``return_exceptions=True`` a failing solve yields its exception
        in that request's slot instead of aborting the batch — the solver
        analogue of ``asyncio.gather`` — so callers with per-item fallback
        logic (the EPTAS search) never lose the rest of a round.
        """
        requests = list(requests)
        if self.pool is None or len(requests) <= 1:
            results: list[MilpSolution | Exception] = []
            for request in requests:
                try:
                    results.append(
                        self.solve(
                            request.model,
                            spec=request.spec,
                            time_limit=request.time_limit,
                            mip_rel_gap=request.mip_rel_gap,
                        )
                    )
                except Exception as exc:  # noqa: BLE001 — re-raised unless opted in
                    if not return_exceptions:
                        raise
                    results.append(exc)
            return results
        specs = [BackendSpec.coerce(request.spec) for request in requests]
        started = time.perf_counter()
        futures = [
            self.pool.submit(
                request.model,
                spec=spec,
                time_limit=request.time_limit,
                mip_rel_gap=request.mip_rel_gap,
                hard_timeout=request.hard_timeout,
            )
            for request, spec in zip(requests, specs)
        ]
        # Completion times recorded by callback, not at sequential result()
        # time: the fallback wall for a solve with no server-side measurement
        # (e.g. a timeout) must not absorb the wait on earlier futures.
        finished_at: dict[int, float] = {}
        for index, future in enumerate(futures):
            future.add_done_callback(
                lambda _future, index=index: finished_at.setdefault(
                    index, time.perf_counter()
                )
            )
        results = []
        for index, (future, spec) in enumerate(zip(futures, specs)):
            try:
                solution = future.result()
            except SolverPoolTimeoutError as exc:
                # Same contract as an inline backend hitting its time limit.
                # The pool reports how long the killed solve actually ran;
                # without it the fallback below would charge the whole
                # batch-queue wait to this one solve.
                diagnostics: dict[str, Any] = {"pool_timeout": str(exc)}
                solve_wall_time = getattr(exc, "solve_wall_time", None)
                if solve_wall_time is not None:
                    diagnostics["server_wall_time"] = float(solve_wall_time)
                solution = MilpSolution(
                    status=SolutionStatus.LIMIT,
                    objective=float("inf"),
                    diagnostics=diagnostics,
                )
            except Exception as exc:  # noqa: BLE001 — re-raised unless opted in
                if not return_exceptions:
                    raise
                results.append(exc)
                continue
            elapsed = finished_at.get(index, time.perf_counter()) - started
            wall = float(solution.diagnostics.get("server_wall_time", elapsed))
            self._finish(solution, spec, wall, pooled=True)
            results.append(solution)
        return results

    def _solve_inline(
        self,
        model: LinearModel | CompiledModel,
        spec: BackendSpec,
        *,
        time_limit: float | None,
        mip_rel_gap: float,
    ) -> MilpSolution:
        backend = resolve_backend(spec.name)
        compiled = model.compile() if isinstance(model, LinearModel) else model
        return backend.solve(
            compiled,
            time_limit=time_limit,
            mip_rel_gap=mip_rel_gap,
            options=spec.options_dict(),
        )

    def _finish(
        self, solution: MilpSolution, spec: BackendSpec, wall_time: float, *, pooled: bool
    ) -> None:
        fingerprint = backend_fingerprint(spec)
        diagnostics = solution.diagnostics
        if pooled:
            # Pool and fabric dispatch paths stamp the split; a degraded
            # (timed-out) solve may carry none of it.
            queue_wait = diagnostics.get("queue_wait_s")
            solve_s = diagnostics.get("server_wall_time")
            wire_s = diagnostics.get("wire_s")
            endpoint = diagnostics.get("endpoint")
        else:
            # Inline: the solve runs in this very call, so its wall clock
            # *is* the solve time and nothing ever queued or crossed a wire.
            queue_wait, solve_s, wire_s, endpoint = 0.0, wall_time, None, None
        solution.telemetry = SolveTelemetry(
            backend=spec.name,
            fingerprint=fingerprint,
            wall_time=float(wall_time),
            status=solution.status.value,
            pooled=pooled,
            server_pid=solution.diagnostics.get("server_pid"),
            queue_wait_s=float(queue_wait) if queue_wait is not None else None,
            solve_s=float(solve_s) if solve_s is not None else None,
            wire_s=float(wire_s) if wire_s is not None else None,
            endpoint=str(endpoint) if endpoint is not None else None,
        )
        self._stats["solves"] += 1
        if pooled:
            self._stats["pooled_solves"] += 1
        self._stats["wall_time"] += float(wall_time)
        if queue_wait is not None:
            self._stats["queue_wait_s"] += float(queue_wait)
        if solve_s is not None:
            self._stats["solve_s"] += float(solve_s)
        if wire_s is not None:
            self._stats["wire_s"] += float(wire_s)
        per_backend = self._stats["backends"]
        per_backend[fingerprint] = per_backend.get(fingerprint, 0) + 1
        if endpoint is not None:
            per_endpoint = self._stats["endpoints"]
            per_endpoint[endpoint] = per_endpoint.get(endpoint, 0) + 1

    # ------------------------------------------------------------------
    # Telemetry counters (per process, per service)
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        return {
            "solves": self._stats["solves"],
            "pooled_solves": self._stats["pooled_solves"],
            "wall_time": self._stats["wall_time"],
            "queue_wait_s": self._stats["queue_wait_s"],
            "solve_s": self._stats["solve_s"],
            "wire_s": self._stats["wire_s"],
            "backends": dict(self._stats["backends"]),
            "endpoints": dict(self._stats["endpoints"]),
        }

    def stats_delta(self, before: dict[str, Any]) -> dict[str, Any]:
        """Difference between :meth:`stats` now and an earlier snapshot."""
        now = self.stats()
        backends = {
            fp: count - before.get("backends", {}).get(fp, 0)
            for fp, count in now["backends"].items()
            if count - before.get("backends", {}).get(fp, 0)
        }
        endpoints = {
            ep: count - before.get("endpoints", {}).get(ep, 0)
            for ep, count in now["endpoints"].items()
            if count - before.get("endpoints", {}).get(ep, 0)
        }
        return {
            "solves": now["solves"] - before.get("solves", 0),
            "pooled_solves": now["pooled_solves"] - before.get("pooled_solves", 0),
            "wall_time": now["wall_time"] - before.get("wall_time", 0.0),
            "queue_wait_s": now["queue_wait_s"] - before.get("queue_wait_s", 0.0),
            "solve_s": now["solve_s"] - before.get("solve_s", 0.0),
            "wire_s": now["wire_s"] - before.get("wire_s", 0.0),
            "backends": backends,
            "endpoints": endpoints,
        }


_default_service = SolverService()
_current_service: SolverService = _default_service


def get_solver_service() -> SolverService:
    """The service in effect for this process (pooled inside scopes)."""
    return _current_service


@contextmanager
def service_scope(service: SolverService) -> Iterator[SolverService]:
    """Install ``service`` as the current one for the scope's duration."""
    global _current_service
    previous = _current_service
    _current_service = service
    try:
        yield service
    finally:
        _current_service = previous


@contextmanager
def pooled_service_scope(
    num_servers: int, **pool_kwargs: Any
) -> Iterator[SolverService]:
    """Run the scope with a fresh subprocess pool attached to the service.

    ``num_servers <= 0`` is a no-op scope yielding the ambient service, so
    callers can pass a CLI value straight through.
    """
    if num_servers <= 0:
        yield get_solver_service()
        return
    pool = SolverPool(num_servers, **pool_kwargs)
    try:
        with service_scope(SolverService(pool)) as service:
            yield service
    finally:
        pool.close()


@contextmanager
def solver_service_scope(
    num_servers: int = 0,
    connect: str | Sequence[str] | None = None,
    *,
    token: str | None = None,
    **pool_kwargs: Any,
) -> Iterator[SolverService]:
    """The one scope the worker loop uses, whatever its solver topology.

    * no ``connect`` — exactly :func:`pooled_service_scope`: a local pool of
      ``num_servers`` (or the ambient inline service when ``<= 0``).
    * with ``connect`` (``HOST:PORT`` targets, or one comma-separated
      string) — a :class:`~repro.solver.fabric.SolverFabric` over those
      endpoints; ``num_servers > 0`` additionally contributes a local pool
      of that size as one more fabric endpoint, and ``num_servers < 0``
      sizes that local pool to the host's cores.  The fabric (and the local
      pool it owns) is closed when the scope exits.
    """
    if not connect:
        with pooled_service_scope(num_servers, **pool_kwargs) as service:
            yield service
        return
    from .fabric import SolverFabric  # deferred: fabric imports this module

    local_pool = None
    if num_servers:
        size = num_servers if num_servers > 0 else (os.cpu_count() or 1)
        local_pool = SolverPool(size, **pool_kwargs)
    fabric = None
    try:
        fabric = SolverFabric(
            connect, token=token, local_pool=local_pool, own_local_pool=True
        )
        with service_scope(SolverService(fabric)) as service:
            yield service
    finally:
        if fabric is not None:
            fabric.close()
        elif local_pool is not None:  # fabric construction failed
            local_pool.close()
