"""The solver fabric: fleet-wide MILP solve routing with work-stealing.

Two halves:

* :class:`SolverFabricServer` — a solver *server* any host runs (``repro
  orch solver-serve``): N local :class:`~repro.solver.pool.SolverPool`
  workers behind one TCP socket, speaking the same length-prefixed frame
  protocol, token auth and structured errors as the store server
  (:mod:`repro.distributed.rpc`).  Each ``solve`` request decodes a
  compiled model, runs it on the owned pool, and replies with the solution
  plus the server-side queue-wait/solve-time split.
* :class:`SolverFabric` — the client.  :class:`~repro.solver.service.SolverService`
  treats it as just another pool (``submit`` / ``solve_many`` / ``stats`` /
  ``num_servers``), but behind the futures API it routes every compiled
  model to the *least-loaded endpoint* and work-steals around failures.

Wire format
-----------
A model crosses the wire as JSON: dense vectors as lists, the constraint
matrices in CSR form (``data``/``indices``/``indptr``/``shape``), ``±inf``
bounds riding Python's JSON ``Infinity`` literals (both ends of this
protocol are this codebase).  Solutions return as status/objective/values/
diagnostics.  Everything is one request frame → one reply frame on the
shared protocol, so the fabric inherits the frame ceiling, auth and
structured-error semantics the store traffic already has.

Routing policy
--------------
Each endpoint carries an EWMA *rate* (seconds per model unit, where a
model's units are ``variables + constraints``) seeded from the same
model-size cost signal the orchestration scheduler fits (a default
seconds-per-unit prior, refined by every completed solve).  A solve is
assigned to the live endpoint minimising ``(load + units) * rate /
capacity`` — queue depth scaled by measured speed — so a slow or busy
endpoint sheds work to faster ones.  Before dispatching over the wire the
fabric probes its content-hash memo (SHA-256 of the wire model + backend
fingerprint + limits): a deterministic result seen before is returned
without touching the network.

Failure semantics
-----------------
*Endpoint death* (connection drops mid-batch): the endpoint is marked dead,
its queued solves are re-routed, and each in-flight solve is re-dispatched
to another live endpoint **exactly once** — a second infrastructure failure
fails the future with :class:`~repro.solver.pool.SolverServerCrashError`.
*Per-solve deadline* (``hard_timeout + wire_grace`` passes with no reply):
the solve is stolen onto another endpoint the same way, while the original
socket lingers briefly as a lame duck so a slow original landing late is
*deduplicated* (first result wins the future; the op id names the solve, so
a late duplicate is counted in ``duplicates_dropped``, never double-counted
as a completion).  The op id also rides every request, so a resend of a
solve to the *same* endpoint (single-endpoint retry) replays server-side
instead of executing twice.  A solver-pool hard timeout on the server comes
back as :class:`~repro.solver.pool.SolverPoolTimeoutError` and degrades to
a ``LIMIT`` solution in the service layer, exactly like a local pool.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import select
import socket
import threading
import time
import uuid
from collections import OrderedDict, deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np
from scipy import sparse

from ..analysis import racecheck
from ..core.errors import ReproError
from ..distributed.protocol import (
    AddressError,
    AuthError,
    ConnectionClosed,
    FrameError,
    encode_frame,
    format_address,
    parse_address,
    recv_frame,
    send_encoded,
    send_frame,
)
from ..distributed.rpc import RpcServer, knock, raise_reply_error
from ..observability import metrics
from ..milp.model import CompiledModel, LinearModel, MilpSolution, SolutionStatus
from .pool import (
    DEFAULT_TIMEOUT_GRACE,
    SolveRequest,
    SolverBackendError,
    SolverPool,
    SolverPoolError,
    SolverPoolTimeoutError,
    SolverServerCrashError,
)
from .registry import BackendSpec, available_backends, backend_fingerprint

__all__ = [
    "DEFAULT_SOLVER_PORT",
    "SOLVER_PROTOCOL_VERSION",
    "SOLVER_RPC_METHODS",
    "FabricStats",
    "SolverFabric",
    "SolverFabricError",
    "SolverFabricServer",
    "model_from_wire",
    "model_to_wire",
    "parse_endpoint",
    "solution_from_wire",
    "solution_to_wire",
    "solve_content_key",
]

SOLVER_PROTOCOL_VERSION = 1

# Default TCP port of `repro orch solver-serve` (store server is 7479).
DEFAULT_SOLVER_PORT = 7480

SOLVER_RPC_METHODS = frozenset({"ping", "solver_info", "solve"})

# Seconds-per-model-unit seed for a fresh endpoint's EWMA rate — the same
# kind of size→seconds signal the orchestration cost model fits for cells,
# here at MILP granularity.  Refined by the first completed solve, so only
# the very first routing decisions lean on it.
DEFAULT_SECONDS_PER_UNIT = 2e-4

# EWMA smoothing for per-endpoint rates (matches the scheduler's refit
# weighting: recent solves dominate, history decays geometrically).
EWMA_ALPHA = 0.3

# Extra wall-clock a fabric client grants an endpoint past a solve's
# hard_timeout before stealing the solve: the server enforces hard_timeout
# itself (kill + structured timeout reply), so only a wedged endpoint ever
# reaches this client-side deadline.
DEFAULT_WIRE_GRACE = 15.0

# How long a slot keeps listening on the original socket after a deadline
# steal, so a slow original landing late is observed (and deduplicated)
# instead of desynchronising the connection.
DEFAULT_LAME_DUCK_GRACE = 30.0

# Deterministic solve outcomes worth memoising client-side; FEASIBLE and
# LIMIT depend on time limits and luck, so they are never cached.
_MEMOIZABLE = frozenset(
    {SolutionStatus.OPTIMAL, SolutionStatus.INFEASIBLE, SolutionStatus.UNBOUNDED}
)
DEFAULT_MEMO_SIZE = 256


class SolverFabricError(SolverPoolError):
    """Fabric infrastructure failure (no endpoints, bad endpoint, ...)."""


# ----------------------------------------------------------------------
# Wire codecs
# ----------------------------------------------------------------------
def _csr_to_wire(matrix: sparse.csr_matrix) -> dict[str, Any]:
    csr = sparse.csr_matrix(matrix)
    return {
        "data": np.asarray(csr.data, dtype=float).tolist(),
        "indices": np.asarray(csr.indices, dtype=np.int64).tolist(),
        "indptr": np.asarray(csr.indptr, dtype=np.int64).tolist(),
        "shape": [int(csr.shape[0]), int(csr.shape[1])],
    }


def _csr_from_wire(wire: Mapping[str, Any]) -> sparse.csr_matrix:
    return sparse.csr_matrix(
        (
            np.asarray(wire["data"], dtype=float),
            np.asarray(wire["indices"], dtype=np.int64),
            np.asarray(wire["indptr"], dtype=np.int64),
        ),
        shape=tuple(wire["shape"]),
    )


def model_to_wire(model: LinearModel | CompiledModel) -> dict[str, Any]:
    """A compiled model as a JSON-shaped dict (CSR matrices, dense lists)."""
    compiled = model.compile() if isinstance(model, LinearModel) else model
    return {
        "variable_names": list(compiled.variable_names),
        "objective": np.asarray(compiled.objective, dtype=float).tolist(),
        "lower": np.asarray(compiled.lower, dtype=float).tolist(),
        "upper": np.asarray(compiled.upper, dtype=float).tolist(),
        "integrality": np.asarray(compiled.integrality, dtype=float).tolist(),
        "a_ub": _csr_to_wire(compiled.a_ub),
        "b_ub": np.asarray(compiled.b_ub, dtype=float).tolist(),
        "a_eq": _csr_to_wire(compiled.a_eq),
        "b_eq": np.asarray(compiled.b_eq, dtype=float).tolist(),
    }


def model_from_wire(wire: Mapping[str, Any]) -> CompiledModel:
    """Rebuild a :class:`CompiledModel` from its wire form."""
    return CompiledModel(
        variable_names=tuple(wire["variable_names"]),
        objective=np.asarray(wire["objective"], dtype=float),
        lower=np.asarray(wire["lower"], dtype=float),
        upper=np.asarray(wire["upper"], dtype=float),
        integrality=np.asarray(wire["integrality"], dtype=float),
        a_ub=_csr_from_wire(wire["a_ub"]),
        b_ub=np.asarray(wire["b_ub"], dtype=float),
        a_eq=_csr_from_wire(wire["a_eq"]),
        b_eq=np.asarray(wire["b_eq"], dtype=float),
    )


def _jsonable(value: Any) -> Any:
    """Best-effort JSON shaping of solution diagnostics (lossy for objects)."""
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def solution_to_wire(solution: MilpSolution) -> dict[str, Any]:
    """A solution as a JSON-shaped dict (telemetry is client-side, not sent)."""
    return {
        "status": solution.status.value,
        "objective": float(solution.objective),
        "values": {name: float(value) for name, value in solution.values.items()},
        "diagnostics": _jsonable(solution.diagnostics),
    }


def solution_from_wire(wire: Mapping[str, Any]) -> MilpSolution:
    """Rebuild a :class:`MilpSolution` from its wire form."""
    return MilpSolution(
        status=SolutionStatus(wire["status"]),
        objective=float(wire["objective"]),
        values=dict(wire.get("values") or {}),
        diagnostics=dict(wire.get("diagnostics") or {}),
    )


def solve_content_key(
    wire_model: Mapping[str, Any],
    spec: BackendSpec,
    *,
    time_limit: float | None,
    mip_rel_gap: float,
) -> str:
    """Content hash identifying a solve: model bytes + backend + limits."""
    blob = json.dumps(
        {
            "model": wire_model,
            "backend": backend_fingerprint(spec),
            "time_limit": time_limit,
            "mip_rel_gap": mip_rel_gap,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode()).hexdigest()


def parse_endpoint(target: str) -> tuple[str, int]:
    """``HOST[:PORT]`` / ``tcp://HOST[:PORT]`` → ``(host, port)``.

    Like :func:`~repro.distributed.protocol.parse_address` but defaulting
    the *solver* port (:data:`DEFAULT_SOLVER_PORT`), which the store-centric
    parser cannot express.
    """
    text = target[len("tcp://") :] if target.startswith("tcp://") else target
    text = text.strip()
    if not text:
        raise AddressError(f"invalid solver endpoint {target!r}; expected HOST[:PORT]")
    if text.startswith("["):
        _, _, rest = text[1:].partition("]")
        has_port = rest.startswith(":")
    else:
        has_port = ":" in text
        if text.count(":") > 1:  # bare IPv6 literal must be bracketed
            return parse_address(target)
    if has_port:
        return parse_address(target)
    return text.strip("[]"), DEFAULT_SOLVER_PORT


def _revive_error(
    error_type: str, message: str, data: Mapping[str, Any] | None
) -> Exception:
    """Turn a structured error reply back into the library exception.

    Repro's own exception types survive the wire by name so callers'
    isinstance-based fallback logic (the EPTAS guess search, the service's
    timeout degrade) treats fabric solves exactly like inline and pooled
    ones; anything unrecognised degrades to :class:`SolverBackendError`.
    """
    if error_type == "SolverPoolTimeoutError":
        exc: Exception = SolverPoolTimeoutError(message)
        wall = (data or {}).get("solve_wall_time")
        if wall is not None:
            exc.solve_wall_time = float(wall)  # type: ignore[attr-defined]
        return exc
    from ..core import errors as core_errors

    candidate = getattr(core_errors, error_type, None)
    if isinstance(candidate, type) and issubclass(candidate, ReproError):
        return candidate(message)
    for pool_error in (SolverServerCrashError, SolverBackendError, SolverPoolError):
        if pool_error.__name__ == error_type:
            return pool_error(message)
    return SolverBackendError(f"{error_type}: {message}")


# ----------------------------------------------------------------------
# Server half
# ----------------------------------------------------------------------
class SolverFabricServer(RpcServer):
    """N subprocess solver servers behind one TCP socket.

    ``servers=None`` sizes the pool to the host's cores — the point of a
    fabric endpoint is to saturate its machine.  Requests dispatch
    *concurrently* (``serialize_dispatch = False``): each ``solve`` blocks
    its handler thread on the pool future while other connections keep
    being served; duplicate op ids are deduplicated by the shared RPC base
    (in-flight ops park the retry, finished ops replay the recorded reply).
    """

    rpc_methods = SOLVER_RPC_METHODS
    serialize_dispatch = False
    thread_name = "repro-solver-fabric-server"

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        token: str | None = None,
        servers: int | None = None,
        timeout_grace: float = DEFAULT_TIMEOUT_GRACE,
        initializer: Any = None,
    ) -> None:
        self.num_solver_servers = int(servers) if servers else (os.cpu_count() or 1)
        self._pool = SolverPool(
            self.num_solver_servers,
            timeout_grace=timeout_grace,
            initializer=initializer,
        )
        self._active = 0
        self._active_lock = racecheck.tracked_lock("fabric.server.active")
        try:
            super().__init__(host=host, port=port, token=token)
        except BaseException:
            self._pool.close()
            raise

    def _on_shutdown(self) -> None:
        # Fails every in-flight pool future, which unblocks the handler
        # threads parked on them; their sockets are already being dropped.
        self._pool.close()

    def _error_data(self, exc: Exception) -> dict[str, Any] | None:
        wall = getattr(exc, "solve_wall_time", None)
        if isinstance(exc, SolverPoolTimeoutError) and wall is not None:
            # The client re-raises with this attached, so the service's
            # LIMIT degrade charges the solve its true wall time instead of
            # the whole batch wait.
            return {"solve_wall_time": float(wall)}
        return None

    def _invoke(self, method: str, params: dict[str, Any]) -> Any:
        if method == "ping":
            return "pong"
        if method == "solver_info":
            stats = self._pool.stats()
            with self._active_lock:
                queue_depth = self._active
            return {
                "protocol": SOLVER_PROTOCOL_VERSION,
                "servers": self._pool.num_servers,
                "backends": available_backends(),
                "queue_depth": queue_depth,
                "completed": stats.completed,
                "pid": os.getpid(),
            }
        # method == "solve" (the allowlist admits nothing else)
        received = time.perf_counter()
        model = model_from_wire(params["model"])
        spec = BackendSpec.coerce(params.get("spec") or "scipy")
        time_limit = params.get("time_limit")
        hard_timeout = params.get("hard_timeout")
        with self._active_lock:
            self._active += 1
        metrics.gauge_add("fabric.server.active", 1)
        try:
            future = self._pool.submit(
                model,
                spec=spec,
                time_limit=float(time_limit) if time_limit is not None else None,
                mip_rel_gap=float(params.get("mip_rel_gap") or 0.0),
                hard_timeout=float(hard_timeout) if hard_timeout is not None else None,
            )
            solution = future.result()
        finally:
            with self._active_lock:
                self._active -= 1
            metrics.gauge_add("fabric.server.active", -1)
        total = time.perf_counter() - received
        solve_s = float(solution.diagnostics.get("server_wall_time", total))
        queue_wait = float(
            solution.diagnostics.get("queue_wait_s", max(0.0, total - solve_s))
        )
        return {
            "solution": solution_to_wire(solution),
            "solve_s": solve_s,
            "queue_wait_s": queue_wait,
            "server_pid": solution.diagnostics.get("server_pid"),
        }


# ----------------------------------------------------------------------
# Client half
# ----------------------------------------------------------------------
@dataclass(slots=True)
class FabricStats:
    """Counters exposed by :meth:`SolverFabric.stats`."""

    submitted: int = 0
    completed: int = 0
    dispatched: int = 0
    cache_hits: int = 0
    steals: int = 0
    duplicates_dropped: int = 0
    endpoint_failures: int = 0


class _FabricItem:
    """One solve travelling through the fabric."""

    __slots__ = (
        "op_id",
        "model",
        "spec",
        "time_limit",
        "mip_rel_gap",
        "hard_timeout",
        "params",
        "units",
        "content_key",
        "future",
        "started",
        "stolen",
        "settled",
    )

    def __init__(
        self,
        *,
        model: CompiledModel,
        spec: BackendSpec,
        time_limit: float | None,
        mip_rel_gap: float,
        hard_timeout: float | None,
        params: dict[str, Any],
        units: int,
        content_key: str,
    ) -> None:
        self.op_id = uuid.uuid4().hex
        self.model = model
        self.spec = spec
        self.time_limit = time_limit
        self.mip_rel_gap = mip_rel_gap
        self.hard_timeout = hard_timeout
        self.params = params
        self.units = units
        self.content_key = content_key
        self.future: Future = Future()
        self.started = False  # set_running_or_notify_cancel already called
        self.stolen = False  # the one-steal budget
        self.settled = False  # future claimed (result or exception)


@dataclass(slots=True, eq=False)
class _Endpoint:
    """Client-side view of one solve destination (remote or local pool)."""

    label: str
    capacity: int
    host: str = ""
    port: int = 0
    pool: SolverPool | None = None  # set → the local endpoint
    alive: bool = True
    rate: float = DEFAULT_SECONDS_PER_UNIT  # EWMA seconds per model unit
    load: float = 0.0  # units queued + in flight here
    completed: int = 0
    queue: deque = field(default_factory=deque)
    cond: threading.Condition | None = None
    threads: list = field(default_factory=list)

    @property
    def is_local(self) -> bool:
        return self.pool is not None


class _Abandon(Exception):
    """Internal: this slot's wait on a reply is over (stolen/closed)."""


class SolverFabric:
    """Route solves across solver-serve endpoints (and an optional local pool).

    Quacks like :class:`~repro.solver.pool.SolverPool` — ``submit`` /
    ``solve_many`` / ``stats`` / ``num_servers`` / ``close`` — so
    :class:`~repro.solver.service.SolverService` runs batches on it
    unchanged.  ``endpoints`` is a sequence of ``HOST[:PORT]`` targets (or
    one comma-separated string, the CLI's ``--solver-connect`` form); each
    endpoint is probed at construction (auth + protocol check, capacity
    discovery) and gets one client connection per remote pool worker so the
    endpoint can actually be saturated.  ``local_pool`` adds this process's
    own pool as one more endpoint (label ``local``); with
    ``own_local_pool=True`` the fabric closes it on :meth:`close`.
    """

    def __init__(
        self,
        endpoints: str | Sequence[str],
        *,
        token: str | None = None,
        local_pool: SolverPool | None = None,
        own_local_pool: bool = False,
        timeout: float = 60.0,
        connect_timeout: float = 10.0,
        wire_grace: float = DEFAULT_WIRE_GRACE,
        lame_duck_grace: float = DEFAULT_LAME_DUCK_GRACE,
        timeout_grace: float = DEFAULT_TIMEOUT_GRACE,
        default_hard_timeout: float | None = None,
        seed_rate: float = DEFAULT_SECONDS_PER_UNIT,
        memo_size: int = DEFAULT_MEMO_SIZE,
    ) -> None:
        if isinstance(endpoints, str):
            targets = [part.strip() for part in endpoints.split(",") if part.strip()]
        else:
            targets = [str(part) for part in endpoints]
        if not targets and local_pool is None:
            raise SolverFabricError("a solver fabric needs at least one endpoint")
        self._token = token
        self._timeout = float(timeout)
        self._connect_timeout = float(connect_timeout)
        self._wire_grace = float(wire_grace)
        self._lame_duck_grace = float(lame_duck_grace)
        self.timeout_grace = float(timeout_grace)
        self.default_hard_timeout = default_hard_timeout
        self._seed_rate = float(seed_rate)
        # One RLock for queue + endpoints + memo; endpoint conditions are
        # built on it (tracked locks expose the Condition compat surface).
        self._lock = racecheck.tracked_rlock("fabric.client")
        self._request_ids = itertools.count(1)
        self._stats = FabricStats()
        self._memo: OrderedDict[str, dict[str, Any]] = OrderedDict()
        self._memo_size = int(memo_size)
        self._closed = False
        self._own_local_pool = bool(own_local_pool)
        self._endpoints: list[_Endpoint] = []
        try:
            for target in targets:
                host, port = parse_endpoint(target)
                self._endpoints.append(self._open_endpoint(host, port))
            if local_pool is not None:
                self._endpoints.append(
                    _Endpoint(
                        label="local",
                        capacity=local_pool.num_servers,
                        pool=local_pool,
                        rate=self._seed_rate,
                    )
                )
        except BaseException:
            self.close()
            raise
        for endpoint in self._endpoints:
            if endpoint.is_local:
                continue
            endpoint.cond = threading.Condition(self._lock)
            for slot in range(endpoint.capacity):
                thread = threading.Thread(
                    target=self._slot_main,
                    args=(endpoint,),
                    name=f"solver-fabric-{endpoint.label}-{slot}",
                    daemon=True,
                )
                endpoint.threads.append(thread)
                thread.start()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _open_endpoint(self, host: str, port: int) -> _Endpoint:
        label = format_address(host, port)
        try:
            sock = knock(
                host, port, timeout=self._timeout, connect_timeout=self._connect_timeout
            )
        except OSError as exc:
            raise SolverFabricError(
                f"cannot connect to solver endpoint {label}: {exc}"
            ) from exc
        try:
            request: dict[str, Any] = {"id": 0, "method": "solver_info", "params": {}}
            if self._token is not None:
                request["token"] = self._token
            send_frame(sock, request)
            reply = recv_frame(sock)
        except (OSError, ConnectionClosed, FrameError) as exc:
            raise SolverFabricError(
                f"solver endpoint {label} failed its initial probe: {exc}"
            ) from exc
        finally:
            try:
                sock.close()
            except OSError:
                pass
        error = reply.get("error")
        if error is not None:
            raise_reply_error(error)  # AuthError keeps its own class
        info = reply.get("result") or {}
        if info.get("protocol") != SOLVER_PROTOCOL_VERSION:
            raise SolverFabricError(
                f"solver endpoint {label} speaks protocol {info.get('protocol')!r}; "
                f"this client speaks {SOLVER_PROTOCOL_VERSION}"
            )
        return _Endpoint(
            label=label,
            capacity=max(1, int(info.get("servers") or 1)),
            host=host,
            port=port,
            rate=self._seed_rate,
        )

    # ------------------------------------------------------------------
    # Pool-compatible API
    # ------------------------------------------------------------------
    @property
    def num_servers(self) -> int:
        """Total live solver capacity (what the service calls concurrency)."""
        with self._lock:
            total = sum(ep.capacity for ep in self._endpoints if ep.alive)
        return max(1, total)

    @property
    def endpoints(self) -> list[str]:
        return [ep.label for ep in self._endpoints]

    def submit(
        self,
        model: LinearModel | CompiledModel,
        *,
        spec: BackendSpec | str = "scipy",
        time_limit: float | None = None,
        mip_rel_gap: float = 0.0,
        hard_timeout: float | None = None,
    ) -> Future:
        """Enqueue one solve on the least-loaded endpoint; returns a future."""
        backend_spec = BackendSpec.coerce(spec)
        compiled = model.compile() if isinstance(model, LinearModel) else model
        if hard_timeout is None:
            if time_limit is not None:
                hard_timeout = float(time_limit) + self.timeout_grace
            else:
                hard_timeout = self.default_hard_timeout
        wire_model = model_to_wire(compiled)
        content_key = solve_content_key(
            wire_model, backend_spec, time_limit=time_limit, mip_rel_gap=mip_rel_gap
        )
        item = _FabricItem(
            model=compiled,
            spec=backend_spec,
            time_limit=time_limit,
            mip_rel_gap=mip_rel_gap,
            hard_timeout=hard_timeout,
            params={
                "model": wire_model,
                "spec": backend_spec.to_dict(),
                "time_limit": time_limit,
                "mip_rel_gap": float(mip_rel_gap),
                "hard_timeout": hard_timeout,
            },
            # Floor at 1 so degenerate (empty) models still accumulate load
            # and spread across endpoints instead of piling onto tied scores.
            units=max(1, compiled.num_variables + compiled.num_constraints),
            content_key=content_key,
        )
        with self._lock:
            if self._closed:
                raise SolverPoolError("fabric is closed")
            self._stats.submitted += 1
            metrics.counter("fabric.submitted")
            cached = self._memo.get(content_key)
            if cached is not None:
                self._memo.move_to_end(content_key)
                self._stats.cache_hits += 1
                metrics.counter("fabric.memo_hits")
                item.settled = True
                item.future.set_result(self._memo_solution(cached))
                return item.future
            endpoint = self._pick_endpoint(item, exclude=frozenset())
            if endpoint is None:
                raise SolverFabricError("no live solver endpoints")
            self._enqueue(endpoint, item)
        return item.future

    def solve_many(self, requests: Sequence[SolveRequest]) -> list[MilpSolution]:
        """Solve a batch across the fleet; results in request order."""
        futures = [
            self.submit(
                request.model,
                spec=request.spec,
                time_limit=request.time_limit,
                mip_rel_gap=request.mip_rel_gap,
                hard_timeout=request.hard_timeout,
            )
            for request in requests
        ]
        return [future.result() for future in futures]

    def stats(self) -> FabricStats:
        with self._lock:
            return FabricStats(
                submitted=self._stats.submitted,
                completed=self._stats.completed,
                dispatched=self._stats.dispatched,
                cache_hits=self._stats.cache_hits,
                steals=self._stats.steals,
                duplicates_dropped=self._stats.duplicates_dropped,
                endpoint_failures=self._stats.endpoint_failures,
            )

    def endpoint_stats(self) -> list[dict[str, Any]]:
        """Routing state per endpoint (tests, benchmarks, debugging)."""
        with self._lock:
            return [
                {
                    "endpoint": ep.label,
                    "capacity": ep.capacity,
                    "alive": ep.alive,
                    "rate": ep.rate,
                    "load": ep.load,
                    "completed": ep.completed,
                }
                for ep in self._endpoints
            ]

    def close(self) -> None:
        """Stop routing; queued futures fail, slot threads drain out."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            orphans: list[_FabricItem] = []
            for endpoint in self._endpoints:
                orphans.extend(endpoint.queue)
                endpoint.queue.clear()
                if endpoint.cond is not None:
                    endpoint.cond.notify_all()
            for item in orphans:
                self._settle_locked(
                    item, error=SolverPoolError("fabric closed before dispatch")
                )
        for endpoint in self._endpoints:
            for thread in endpoint.threads:
                thread.join(timeout=5.0)
            if endpoint.is_local and self._own_local_pool:
                endpoint.pool.close()

    def __enter__(self) -> "SolverFabric":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Routing (callers hold self._lock)
    # ------------------------------------------------------------------
    def _pick_endpoint(
        self, item: _FabricItem, *, exclude: frozenset | set
    ) -> _Endpoint | None:
        """The live endpoint with the least expected wait for this solve."""
        best: _Endpoint | None = None
        best_score = float("inf")
        for endpoint in self._endpoints:
            if not endpoint.alive or endpoint in exclude:
                continue
            score = (endpoint.load + item.units) * endpoint.rate / endpoint.capacity
            if score < best_score:
                best, best_score = endpoint, score
        return best

    def _enqueue(self, endpoint: _Endpoint, item: _FabricItem) -> None:
        self._stats.dispatched += 1
        endpoint.load += item.units
        if endpoint.is_local:
            self._dispatch_local(endpoint, item)
        else:
            endpoint.queue.append(item)
            endpoint.cond.notify()

    def _record_result(
        self, endpoint: _Endpoint, item: _FabricItem, solution: MilpSolution
    ) -> None:
        """Complete an item: first result wins, late duplicates are dropped."""
        with self._lock:
            if item.settled or item.future.done():
                self._stats.duplicates_dropped += 1
                metrics.counter("fabric.duplicates_dropped")
                return
            self._stats.completed += 1
            metrics.counter("fabric.completed")
            endpoint.completed += 1
            solve_s = solution.diagnostics.get("server_wall_time")
            if solve_s is not None and item.units > 0:
                sample = float(solve_s) / item.units
                endpoint.rate = (1 - EWMA_ALPHA) * endpoint.rate + EWMA_ALPHA * sample
                metrics.gauge(f"fabric.endpoint_rate.{endpoint.label}", endpoint.rate)
            if solution.status in _MEMOIZABLE:
                self._memo_put_locked(item.content_key, solution)
            self._settle_locked(item, result=solution)

    def _settle_locked(
        self,
        item: _FabricItem,
        *,
        result: MilpSolution | None = None,
        error: Exception | None = None,
    ) -> None:
        if item.settled or item.future.done():
            return
        item.settled = True
        if not item.started:
            # A queued item may still be in PENDING state; futures refuse
            # set_result/set_exception transitions only from CANCELLED.
            if not item.future.set_running_or_notify_cancel():
                return
            item.started = True
        if result is not None:
            item.future.set_result(result)
        else:
            item.future.set_exception(error)

    def _settle_error(self, item: _FabricItem, error: Exception) -> None:
        with self._lock:
            if item.settled or item.future.done():
                self._stats.duplicates_dropped += 1
                metrics.counter("fabric.duplicates_dropped")
                return
            self._settle_locked(item, error=error)

    # ------------------------------------------------------------------
    # Content-hash memo
    # ------------------------------------------------------------------
    def _memo_put_locked(self, key: str, solution: MilpSolution) -> None:
        diagnostics = {
            name: value
            for name, value in solution.diagnostics.items()
            # Per-dispatch measurements would be misleading on a replay.
            if name not in ("queue_wait_s", "wire_s")
        }
        self._memo[key] = {
            "status": solution.status,
            "objective": solution.objective,
            "values": dict(solution.values),
            "diagnostics": diagnostics,
        }
        self._memo.move_to_end(key)
        while len(self._memo) > self._memo_size:
            self._memo.popitem(last=False)

    def _memo_solution(self, snapshot: dict[str, Any]) -> MilpSolution:
        # A fresh object every hit: the service mutates .telemetry in place.
        return MilpSolution(
            status=snapshot["status"],
            objective=snapshot["objective"],
            values=dict(snapshot["values"]),
            diagnostics={**snapshot["diagnostics"], "fabric_cache_hit": True},
        )

    # ------------------------------------------------------------------
    # Local endpoint
    # ------------------------------------------------------------------
    def _dispatch_local(self, endpoint: _Endpoint, item: _FabricItem) -> None:
        if not item.started:
            if not item.future.set_running_or_notify_cancel():
                endpoint.load -= item.units
                return
            item.started = True
        try:
            inner = endpoint.pool.submit(
                item.model,
                spec=item.spec,
                time_limit=item.time_limit,
                mip_rel_gap=item.mip_rel_gap,
                hard_timeout=item.hard_timeout,
            )
        except Exception as exc:  # pool closed under us
            endpoint.load -= item.units
            self._settle_locked(item, error=exc)
            return
        inner.add_done_callback(
            lambda future: self._local_done(endpoint, item, future)
        )

    def _local_done(self, endpoint: _Endpoint, item: _FabricItem, future: Future) -> None:
        with self._lock:
            endpoint.load -= item.units
        try:
            solution = future.result()
        except SolverServerCrashError as exc:
            # The local pool already retried; treat a crash that escapes it
            # like an endpoint failure and steal onto the remote fleet once.
            with self._lock:
                if item.settled or item.future.done():
                    self._stats.duplicates_dropped += 1
                    metrics.counter("fabric.duplicates_dropped")
                    return
                target = None
                if not item.stolen:
                    target = self._pick_endpoint(item, exclude={endpoint})
                if target is None:
                    self._settle_locked(item, error=exc)
                    return
                item.stolen = True
                self._stats.steals += 1
                metrics.counter("fabric.steals")
                self._enqueue(target, item)
            return
        except Exception as exc:  # timeouts, backend errors: same as a pool
            self._settle_error(item, exc)
            return
        solution.diagnostics.setdefault("endpoint", "local")
        self._record_result(endpoint, item, solution)

    # ------------------------------------------------------------------
    # Remote endpoint slots
    # ------------------------------------------------------------------
    def _slot_main(self, endpoint: _Endpoint) -> None:
        sock: socket.socket | None = None
        try:
            while True:
                with self._lock:
                    while (
                        not self._closed and endpoint.alive and not endpoint.queue
                    ):
                        endpoint.cond.wait(0.5)
                    if self._closed or not endpoint.alive:
                        return
                    item = endpoint.queue.popleft()
                    if not item.started:
                        if not item.future.set_running_or_notify_cancel():
                            endpoint.load -= item.units
                            continue
                        item.started = True
                sock = self._process(endpoint, item, sock)
        finally:
            self._close_sock(sock)

    @staticmethod
    def _close_sock(sock: socket.socket | None) -> None:
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def _process(
        self, endpoint: _Endpoint, item: _FabricItem, sock: socket.socket | None
    ) -> socket.socket | None:
        """Run one item on this slot's connection; returns the live socket."""
        request_id = next(self._request_ids)
        payload: dict[str, Any] = {
            "id": request_id,
            "method": "solve",
            "params": item.params,
            "op": item.op_id,
        }
        if self._token is not None:
            payload["token"] = self._token
        try:
            frame = encode_frame(payload)
        except FrameError as exc:  # model over the frame ceiling: a local bug
            with self._lock:
                endpoint.load -= item.units
            self._settle_error(item, exc)
            return sock
        started = time.perf_counter()
        try:
            if sock is None:
                sock = knock(
                    endpoint.host,
                    endpoint.port,
                    timeout=self._timeout,
                    connect_timeout=self._connect_timeout,
                )
            send_encoded(sock, frame)
            reply = self._await_reply(sock, request_id, item, endpoint, started)
        except _Abandon:
            # The slot's wait is over without a usable reply: a lame-duck
            # window expired after a steal, the solve was settled with a
            # client-side timeout, or the fabric is closing.  The stream may
            # hold a half-delivered frame either way — drop the connection.
            self._close_sock(sock)
            with self._lock:
                endpoint.load -= item.units
                if self._closed:
                    self._settle_locked(
                        item, error=SolverPoolError("fabric closed mid-solve")
                    )
            return None
        except (OSError, ConnectionClosed, FrameError) as exc:
            self._close_sock(sock)
            with self._lock:
                endpoint.load -= item.units
            self._transport_failure(endpoint, item, exc)
            return None
        with self._lock:
            endpoint.load -= item.units
        round_trip = time.perf_counter() - started
        error = reply.get("error")
        if error is not None:
            if error.get("type") == "ServerClosed":
                self._close_sock(sock)
                self._transport_failure(
                    endpoint,
                    item,
                    ConnectionClosed(f"solver endpoint {endpoint.label} is shutting down"),
                )
                return None
            if error.get("type") == "AuthError":
                # The probe accepted this token, so a mid-run mismatch means
                # the server was restarted with another secret: not a
                # transport blip, never retried.
                self._settle_error(item, AuthError(str(error.get("message", ""))))
                return sock
            self._settle_error(
                item,
                _revive_error(
                    str(error.get("type", "Error")),
                    str(error.get("message", "")),
                    error.get("data"),
                ),
            )
            return sock
        result = reply.get("result") or {}
        solution = solution_from_wire(result.get("solution") or {})
        solve_s = float(result.get("solve_s") or 0.0)
        queue_wait = float(result.get("queue_wait_s") or 0.0)
        solution.diagnostics["server_wall_time"] = solve_s
        solution.diagnostics["queue_wait_s"] = queue_wait
        solution.diagnostics["wire_s"] = max(0.0, round_trip - solve_s - queue_wait)
        solution.diagnostics["endpoint"] = endpoint.label
        if result.get("server_pid") is not None:
            solution.diagnostics.setdefault("server_pid", int(result["server_pid"]))
        self._record_result(endpoint, item, solution)
        return sock

    def _await_reply(
        self,
        sock: socket.socket,
        request_id: int,
        item: _FabricItem,
        endpoint: _Endpoint,
        started: float,
    ) -> dict[str, Any]:
        """Wait for this request's reply, enforcing the per-solve deadline.

        Raises :class:`_Abandon` when waiting stops making sense: the fabric
        closed, the solve was stolen and its lame-duck window expired, or it
        was settled with a client-side timeout.  Transport errors propagate.
        """
        deadline = (
            started + item.hard_timeout + self._wire_grace
            if item.hard_timeout is not None
            else None
        )
        lame_until: float | None = None
        while True:
            now = time.perf_counter()
            if self._closed:
                raise _Abandon
            if lame_until is not None and now >= lame_until:
                raise _Abandon
            if deadline is not None and lame_until is None and now >= deadline:
                if self._steal_for_deadline(item, endpoint, now - started):
                    # Keep listening: if the slow original lands before the
                    # stolen copy, it wins the future and the copy becomes
                    # the deduplicated late arrival instead.
                    lame_until = now + self._lame_duck_grace
                    continue
                raise _Abandon
            wait = 0.25
            if deadline is not None and lame_until is None:
                wait = min(wait, max(0.01, deadline - now))
            readable, _, _ = select.select([sock], [], [], wait)
            if not readable:
                continue
            reply = recv_frame(sock)
            if reply.get("id") != request_id:
                raise FrameError(
                    f"reply id {reply.get('id')!r} does not match request "
                    f"{request_id!r}"
                )
            return reply

    def _steal_for_deadline(
        self, item: _FabricItem, endpoint: _Endpoint, elapsed: float
    ) -> bool:
        """Deadline passed with no reply: re-dispatch once, else time out.

        Returns True when the solve was stolen onto another endpoint (the
        caller becomes a lame duck), False when there is nothing left to
        wait for (already done, or settled with a timeout here).
        """
        with self._lock:
            if item.settled or item.future.done():
                return False
            target = None
            if not item.stolen:
                target = self._pick_endpoint(item, exclude={endpoint})
            if target is None:
                timeout_error = SolverPoolTimeoutError(
                    f"solver endpoint {endpoint.label} did not reply within "
                    f"hard timeout {item.hard_timeout:.3g}s + wire grace "
                    f"{self._wire_grace:.3g}s (op {item.op_id})"
                )
                timeout_error.solve_wall_time = elapsed  # type: ignore[attr-defined]
                self._settle_locked(item, error=timeout_error)
                return False
            item.stolen = True
            self._stats.steals += 1
            metrics.counter("fabric.steals")
            self._enqueue(target, item)
            return True

    def _transport_failure(
        self, endpoint: _Endpoint, item: _FabricItem | None, exc: Exception
    ) -> None:
        """The connection to ``endpoint`` died with ``item`` in flight.

        With other live endpoints available the endpoint is declared dead:
        its queued solves re-route and the in-flight solve is re-dispatched
        (the one steal).  As the *last* live endpoint it stays alive — the
        in-flight solve retries on a fresh connection once (op-id replay
        makes the resend safe), then fails.
        """
        with self._lock:
            self._stats.endpoint_failures += 1
            others = [
                ep for ep in self._endpoints if ep is not endpoint and ep.alive
            ]
            orphans: list[_FabricItem] = []
            if others and endpoint.alive:
                endpoint.alive = False
                orphans = list(endpoint.queue)
                endpoint.queue.clear()
                if endpoint.cond is not None:
                    endpoint.cond.notify_all()
            if item is not None and not item.settled and not item.future.done():
                if item.stolen:
                    self._settle_locked(
                        item,
                        error=SolverServerCrashError(
                            f"solver endpoint failed twice for op {item.op_id} "
                            f"(last: {endpoint.label}: {exc})"
                        ),
                    )
                else:
                    exclude = {endpoint} if others else set()
                    target = self._pick_endpoint(item, exclude=exclude)
                    if target is None:
                        self._settle_locked(
                            item,
                            error=SolverFabricError(
                                f"no live solver endpoints left for op "
                                f"{item.op_id}: {exc}"
                            ),
                        )
                    else:
                        item.stolen = True
                        self._stats.steals += 1
                        metrics.counter("fabric.steals")
                        self._enqueue(target, item)
            for orphan in orphans:
                if orphan.settled or orphan.future.done():
                    continue
                # Never-dispatched work re-routes freely; it does not spend
                # its steal budget (nothing could have executed it yet).
                target = self._pick_endpoint(orphan, exclude=set())
                if target is None:
                    self._settle_locked(
                        orphan,
                        error=SolverFabricError("all solver endpoints are gone"),
                    )
                else:
                    self._enqueue(target, orphan)
