"""A small model-builder for linear and mixed-integer linear programs.

The configuration MILP of Section 3, the Das–Wiese baseline, the exact
reference solver and the LP lower bound all need to assemble sparse linear
models with named variables.  :class:`LinearModel` collects variables and
constraints symbolically and compiles them to the arrays expected by the
solver backends (:mod:`repro.milp.scipy_backend` and
:mod:`repro.milp.branch_and_bound`).

The builder keeps everything sparse: constraints are stored as
``{variable name: coefficient}`` dictionaries and compiled into a
:class:`scipy.sparse.csr_matrix` once, right before solving.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

import numpy as np
from scipy import sparse

from ..core.errors import InfeasibleModelError

__all__ = [
    "Sense",
    "VarType",
    "Variable",
    "Constraint",
    "LinearModel",
    "CompiledModel",
    "MilpSolution",
    "SolutionStatus",
    "SolveTelemetry",
]


class Sense(enum.Enum):
    """Constraint sense."""

    LE = "<="
    GE = ">="
    EQ = "=="


class VarType(enum.Enum):
    """Variable integrality."""

    CONTINUOUS = "continuous"
    INTEGER = "integer"


class SolutionStatus(enum.Enum):
    """Status reported by the solver backends."""

    OPTIMAL = "optimal"
    FEASIBLE = "feasible"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    LIMIT = "limit"


@dataclass(frozen=True, slots=True)
class Variable:
    """A model variable with bounds and integrality."""

    name: str
    lower: float = 0.0
    upper: float | None = None
    vtype: VarType = VarType.CONTINUOUS
    objective: float = 0.0

    @property
    def is_integer(self) -> bool:
        return self.vtype is VarType.INTEGER


@dataclass(frozen=True, slots=True)
class Constraint:
    """A sparse linear constraint ``sum coeff*var  <sense>  rhs``."""

    name: str
    coefficients: Mapping[str, float]
    sense: Sense
    rhs: float


@dataclass(frozen=True, slots=True)
class CompiledModel:
    """Dense-index view of a :class:`LinearModel`, ready for a backend.

    ``a_ub x <= b_ub`` and ``a_eq x == b_eq``; ``integrality`` is a 0/1
    vector in scipy's convention.
    """

    variable_names: tuple[str, ...]
    objective: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    integrality: np.ndarray
    a_ub: sparse.csr_matrix
    b_ub: np.ndarray
    a_eq: sparse.csr_matrix
    b_eq: np.ndarray

    @property
    def num_variables(self) -> int:
        return len(self.variable_names)

    @property
    def num_integer_variables(self) -> int:
        return int(self.integrality.sum())

    @property
    def num_constraints(self) -> int:
        return self.a_ub.shape[0] + self.a_eq.shape[0]


@dataclass(slots=True)
class SolveTelemetry:
    """Uniform per-solve telemetry attached by the solver service.

    Every solve that goes through :class:`repro.solver.SolverService` —
    inline, pooled, or on a remote fabric endpoint — carries one of these:
    wall time, terminal status, the backend *fingerprint* (name + version +
    option digest, the cache identity from the registry), whether the solve
    ran on a subprocess solver server, and that server's pid when it did.

    ``wall_time`` is the solve's own wall clock (backend time on whichever
    process ran it).  The split fields break a pooled/fabric solve down:
    ``queue_wait_s`` is the time between submission and dispatch onto a
    solver server, ``solve_s`` the backend solve time on that server, and
    ``wire_s`` the transport overhead of a remote (fabric) solve —
    round-trip minus the server-side queue and solve time.  ``endpoint``
    names the serving fabric endpoint (``None`` for inline/local solves).
    """

    backend: str
    fingerprint: str
    wall_time: float
    status: str
    pooled: bool = False
    server_pid: int | None = None
    queue_wait_s: float | None = None
    solve_s: float | None = None
    wire_s: float | None = None
    endpoint: str | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "backend": self.backend,
            "fingerprint": self.fingerprint,
            "wall_time": self.wall_time,
            "status": self.status,
            "pooled": self.pooled,
            "server_pid": self.server_pid,
            "queue_wait_s": self.queue_wait_s,
            "solve_s": self.solve_s,
            "wire_s": self.wire_s,
            "endpoint": self.endpoint,
        }


@dataclass(slots=True)
class MilpSolution:
    """Solution of a (MI)LP model."""

    status: SolutionStatus
    objective: float
    values: dict[str, float] = field(default_factory=dict)
    diagnostics: dict[str, Any] = field(default_factory=dict)
    telemetry: SolveTelemetry | None = None

    @property
    def is_feasible(self) -> bool:
        return self.status in (SolutionStatus.OPTIMAL, SolutionStatus.FEASIBLE)

    def value(self, name: str, default: float = 0.0) -> float:
        return self.values.get(name, default)

    def integral_values(self, *, tol: float = 1e-6) -> dict[str, int]:
        """Round values that are within ``tol`` of an integer; others raise."""
        rounded: dict[str, int] = {}
        for name, value in self.values.items():
            nearest = round(value)
            if abs(value - nearest) > tol:
                raise InfeasibleModelError(
                    f"variable {name} = {value} is not integral within tolerance {tol}"
                )
            rounded[name] = int(nearest)
        return rounded


class LinearModel:
    """Symbolic builder for mixed-integer linear programs.

    The objective sense is always *minimise*; negate coefficients to
    maximise.  Variable and constraint names must be unique.
    """

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self._variables: dict[str, Variable] = {}
        self._constraints: list[Constraint] = []
        self._constraint_names: set[str] = set()

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------
    def add_variable(
        self,
        name: str,
        *,
        lower: float = 0.0,
        upper: float | None = None,
        integer: bool = False,
        objective: float = 0.0,
    ) -> Variable:
        """Add a variable.  Re-adding an existing name raises ``ValueError``."""
        if name in self._variables:
            raise ValueError(f"variable {name!r} already exists in model {self.name!r}")
        variable = Variable(
            name=name,
            lower=float(lower),
            upper=None if upper is None else float(upper),
            vtype=VarType.INTEGER if integer else VarType.CONTINUOUS,
            objective=float(objective),
        )
        self._variables[name] = variable
        return variable

    def has_variable(self, name: str) -> bool:
        return name in self._variables

    def set_objective_coefficient(self, name: str, coefficient: float) -> None:
        """Overwrite the objective coefficient of an existing variable."""
        variable = self._variables[name]
        self._variables[name] = Variable(
            name=variable.name,
            lower=variable.lower,
            upper=variable.upper,
            vtype=variable.vtype,
            objective=float(coefficient),
        )

    @property
    def variables(self) -> dict[str, Variable]:
        return dict(self._variables)

    @property
    def num_variables(self) -> int:
        return len(self._variables)

    @property
    def num_integer_variables(self) -> int:
        return sum(1 for v in self._variables.values() if v.is_integer)

    # ------------------------------------------------------------------
    # Constraints
    # ------------------------------------------------------------------
    def add_constraint(
        self,
        name: str,
        coefficients: Mapping[str, float],
        sense: Sense,
        rhs: float,
    ) -> Constraint:
        """Add a sparse constraint.  Unknown variable names raise ``KeyError``."""
        if name in self._constraint_names:
            raise ValueError(f"constraint {name!r} already exists in model {self.name!r}")
        for var_name in coefficients:
            if var_name not in self._variables:
                raise KeyError(
                    f"constraint {name!r} references unknown variable {var_name!r}"
                )
        constraint = Constraint(
            name=name,
            coefficients={k: float(v) for k, v in coefficients.items() if v != 0.0},
            sense=sense,
            rhs=float(rhs),
        )
        self._constraints.append(constraint)
        self._constraint_names.add(name)
        return constraint

    def add_le(self, name: str, coefficients: Mapping[str, float], rhs: float) -> Constraint:
        return self.add_constraint(name, coefficients, Sense.LE, rhs)

    def add_ge(self, name: str, coefficients: Mapping[str, float], rhs: float) -> Constraint:
        return self.add_constraint(name, coefficients, Sense.GE, rhs)

    def add_eq(self, name: str, coefficients: Mapping[str, float], rhs: float) -> Constraint:
        return self.add_constraint(name, coefficients, Sense.EQ, rhs)

    @property
    def constraints(self) -> list[Constraint]:
        return list(self._constraints)

    @property
    def num_constraints(self) -> int:
        return len(self._constraints)

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def compile(self) -> CompiledModel:
        """Compile the symbolic model into dense-index sparse matrices."""
        names = tuple(self._variables.keys())
        index = {name: i for i, name in enumerate(names)}
        num_vars = len(names)

        objective = np.array(
            [self._variables[name].objective for name in names], dtype=float
        )
        lower = np.array([self._variables[name].lower for name in names], dtype=float)
        upper = np.array(
            [
                np.inf if self._variables[name].upper is None else self._variables[name].upper
                for name in names
            ],
            dtype=float,
        )
        integrality = np.array(
            [1 if self._variables[name].is_integer else 0 for name in names],
            dtype=np.int8,
        )

        ub_rows: list[int] = []
        ub_cols: list[int] = []
        ub_vals: list[float] = []
        b_ub: list[float] = []
        eq_rows: list[int] = []
        eq_cols: list[int] = []
        eq_vals: list[float] = []
        b_eq: list[float] = []

        for constraint in self._constraints:
            if constraint.sense is Sense.EQ:
                row = len(b_eq)
                for var_name, coefficient in constraint.coefficients.items():
                    eq_rows.append(row)
                    eq_cols.append(index[var_name])
                    eq_vals.append(coefficient)
                b_eq.append(constraint.rhs)
            else:
                # GE constraints are stored negated as LE.
                sign = 1.0 if constraint.sense is Sense.LE else -1.0
                row = len(b_ub)
                for var_name, coefficient in constraint.coefficients.items():
                    ub_rows.append(row)
                    ub_cols.append(index[var_name])
                    ub_vals.append(sign * coefficient)
                b_ub.append(sign * constraint.rhs)

        a_ub = sparse.coo_matrix(
            (ub_vals, (ub_rows, ub_cols)), shape=(len(b_ub), num_vars)
        ).tocsr()
        a_eq = sparse.coo_matrix(
            (eq_vals, (eq_rows, eq_cols)), shape=(len(b_eq), num_vars)
        ).tocsr()

        return CompiledModel(
            variable_names=names,
            objective=objective,
            lower=lower,
            upper=upper,
            integrality=integrality,
            a_ub=a_ub,
            b_ub=np.array(b_ub, dtype=float),
            a_eq=a_eq,
            b_eq=np.array(b_eq, dtype=float),
        )

    # ------------------------------------------------------------------
    # Introspection / reporting
    # ------------------------------------------------------------------
    def summary(self) -> dict[str, int]:
        """Model size summary used by the Lemma-6 size experiment (E7)."""
        return {
            "variables": self.num_variables,
            "integer_variables": self.num_integer_variables,
            "continuous_variables": self.num_variables - self.num_integer_variables,
            "constraints": self.num_constraints,
        }

    def check_solution(
        self, values: Mapping[str, float], *, tol: float = 1e-6
    ) -> list[str]:
        """Return human-readable descriptions of violated constraints/bounds."""
        violations: list[str] = []
        for name, variable in self._variables.items():
            value = values.get(name, 0.0)
            if value < variable.lower - tol:
                violations.append(f"{name} = {value} below lower bound {variable.lower}")
            if variable.upper is not None and value > variable.upper + tol:
                violations.append(f"{name} = {value} above upper bound {variable.upper}")
            if variable.is_integer and abs(value - round(value)) > tol:
                violations.append(f"{name} = {value} not integral")
        for constraint in self._constraints:
            lhs = sum(
                coefficient * values.get(var_name, 0.0)
                for var_name, coefficient in constraint.coefficients.items()
            )
            if constraint.sense is Sense.LE and lhs > constraint.rhs + tol:
                violations.append(f"{constraint.name}: {lhs} > {constraint.rhs}")
            elif constraint.sense is Sense.GE and lhs < constraint.rhs - tol:
                violations.append(f"{constraint.name}: {lhs} < {constraint.rhs}")
            elif constraint.sense is Sense.EQ and abs(lhs - constraint.rhs) > tol:
                violations.append(f"{constraint.name}: {lhs} != {constraint.rhs}")
        return violations

    def variable_names(self) -> Iterable[str]:
        return self._variables.keys()
