"""A from-scratch LP-based branch-and-bound MILP solver.

This is the "own substrate" counterpart to the HiGHS backend: a best-first
branch-and-bound over the LP relaxation, branching on the most fractional
integer variable.  It is exact (given exact LP solves), deterministic, and
deliberately simple — it exists so that

* the library does not *depend* on HiGHS's MIP capabilities for
  correctness-critical small models (the two backends cross-check each other
  in the test suite), and
* experiments can report node counts for the Das–Wiese-style baseline,
  illustrating the integral-dimension blow-up the paper's EPTAS avoids.

For the large configuration MILPs of the EPTAS the HiGHS backend is the
default; the driver only uses this solver when explicitly requested or when
the model is small.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..core.errors import SolverLimitError
from .model import CompiledModel, LinearModel, MilpSolution, SolutionStatus
from .scipy_backend import solve_lp_relaxation

__all__ = ["BranchAndBoundConfig", "solve_with_branch_and_bound"]


@dataclass(frozen=True, slots=True)
class BranchAndBoundConfig:
    """Resource limits and tolerances for the branch-and-bound solver."""

    max_nodes: int = 50_000
    time_limit: float | None = None
    integrality_tol: float = 1e-6
    objective_tol: float = 1e-9
    raise_on_limit: bool = False


@dataclass(order=True)
class _Node:
    """A branch-and-bound node ordered by its LP bound (best-first)."""

    bound: float
    order: int
    lower_overrides: dict[int, float] = None  # type: ignore[assignment]
    upper_overrides: dict[int, float] = None  # type: ignore[assignment]


def _most_fractional(
    values: np.ndarray, integer_indices: np.ndarray, tol: float
) -> int | None:
    """Index of the integer variable whose value is farthest from integral."""
    best_index: int | None = None
    best_gap = tol
    for index in integer_indices:
        value = values[index]
        gap = abs(value - round(value))
        frac_distance = min(value - math.floor(value), math.ceil(value) - value)
        if gap > tol and frac_distance > best_gap:
            best_gap = frac_distance
            best_index = int(index)
    if best_index is not None:
        return best_index
    # Fall back to the first non-integral variable even if barely fractional.
    for index in integer_indices:
        value = values[index]
        if abs(value - round(value)) > tol:
            return int(index)
    return None


def solve_with_branch_and_bound(
    model: LinearModel | CompiledModel,
    config: BranchAndBoundConfig | None = None,
) -> MilpSolution:
    """Solve a MILP by LP-based best-first branch and bound.

    Returns the same :class:`MilpSolution` structure as the scipy backend.
    Diagnostics include the number of explored nodes and the number of LP
    solves, which the experiments report.
    """
    config = config or BranchAndBoundConfig()
    compiled = model.compile() if isinstance(model, LinearModel) else model
    integer_indices = np.flatnonzero(compiled.integrality)

    start_time = time.perf_counter()
    lp_solves = 0

    def relax(node: _Node) -> MilpSolution:
        nonlocal lp_solves
        lp_solves += 1
        return solve_lp_relaxation(
            compiled,
            extra_lower=node.lower_overrides,
            extra_upper=node.upper_overrides,
        )

    counter = itertools.count()
    root = _Node(bound=-math.inf, order=next(counter), lower_overrides={}, upper_overrides={})
    root_relaxation = relax(root)
    diagnostics: dict[str, Any] = {"backend": "own-branch-and-bound"}

    if root_relaxation.status is SolutionStatus.INFEASIBLE:
        diagnostics.update({"nodes": 1, "lp_solves": lp_solves})
        return MilpSolution(
            status=SolutionStatus.INFEASIBLE,
            objective=float("inf"),
            values={},
            diagnostics=diagnostics,
        )
    if root_relaxation.status is SolutionStatus.UNBOUNDED:
        diagnostics.update({"nodes": 1, "lp_solves": lp_solves})
        return MilpSolution(
            status=SolutionStatus.UNBOUNDED,
            objective=float("-inf"),
            values={},
            diagnostics=diagnostics,
        )

    best_objective = math.inf
    best_values: dict[str, float] | None = None
    nodes_explored = 0
    hit_limit = False

    heap: list[tuple[float, int, _Node, MilpSolution]] = [
        (root_relaxation.objective, root.order, root, root_relaxation)
    ]

    while heap:
        bound, _, node, relaxation = heapq.heappop(heap)
        nodes_explored += 1

        if bound >= best_objective - config.objective_tol:
            continue
        if nodes_explored > config.max_nodes:
            hit_limit = True
            break
        if (
            config.time_limit is not None
            and time.perf_counter() - start_time > config.time_limit
        ):
            hit_limit = True
            break

        values_vector = np.array(
            [relaxation.values.get(name, 0.0) for name in compiled.variable_names]
        )
        branch_index = _most_fractional(
            values_vector, integer_indices, config.integrality_tol
        )
        if branch_index is None:
            # Integral solution: candidate incumbent.
            if relaxation.objective < best_objective - config.objective_tol:
                best_objective = relaxation.objective
                best_values = dict(relaxation.values)
            continue

        value = values_vector[branch_index]
        floor_value = math.floor(value + config.integrality_tol)
        ceil_value = floor_value + 1

        down = _Node(
            bound=bound,
            order=next(counter),
            lower_overrides=dict(node.lower_overrides),
            upper_overrides={**node.upper_overrides, branch_index: float(floor_value)},
        )
        up = _Node(
            bound=bound,
            order=next(counter),
            lower_overrides={**node.lower_overrides, branch_index: float(ceil_value)},
            upper_overrides=dict(node.upper_overrides),
        )
        for child in (down, up):
            child_relaxation = relax(child)
            if not child_relaxation.is_feasible:
                continue
            if child_relaxation.objective >= best_objective - config.objective_tol:
                continue
            heapq.heappush(
                heap,
                (child_relaxation.objective, child.order, child, child_relaxation),
            )

    diagnostics.update(
        {
            "nodes": nodes_explored,
            "lp_solves": lp_solves,
            "hit_limit": hit_limit,
            "wall_time": time.perf_counter() - start_time,
        }
    )

    if best_values is None:
        if hit_limit:
            if config.raise_on_limit:
                raise SolverLimitError(
                    f"branch and bound exceeded max_nodes={config.max_nodes} "
                    "without finding an integral solution"
                )
            return MilpSolution(
                status=SolutionStatus.LIMIT,
                objective=float("inf"),
                values={},
                diagnostics=diagnostics,
            )
        return MilpSolution(
            status=SolutionStatus.INFEASIBLE,
            objective=float("inf"),
            values={},
            diagnostics=diagnostics,
        )

    status = SolutionStatus.FEASIBLE if hit_limit else SolutionStatus.OPTIMAL
    return MilpSolution(
        status=status,
        objective=best_objective,
        values=best_values,
        diagnostics=diagnostics,
    )
