"""MILP/LP substrate: model builder, HiGHS backend, own branch and bound.

The paper's EPTAS solves a configuration MILP with a constant number of
integral variables using the Kannan/Lenstra fixed-dimension algorithm.  This
package substitutes two interchangeable exact oracles:

* :func:`repro.milp.scipy_backend.solve_with_scipy` — HiGHS via scipy.
* :func:`repro.milp.branch_and_bound.solve_with_branch_and_bound` — a
  from-scratch LP-based branch and bound.

Backend selection, validation and dispatch live in :mod:`repro.solver`
(see ``docs/solver-backends.md``): backends register against a pluggable
registry, and every solve flows through the :class:`repro.solver.SolverService`
facade — optionally onto an async subprocess solver pool.
:func:`solve_model` remains as a thin convenience shim over that service.
"""

from __future__ import annotations

from .model import (
    CompiledModel,
    Constraint,
    LinearModel,
    MilpSolution,
    Sense,
    SolutionStatus,
    SolveTelemetry,
    Variable,
    VarType,
)
from .scipy_backend import solve_lp_relaxation, solve_with_scipy
from .branch_and_bound import BranchAndBoundConfig, solve_with_branch_and_bound

__all__ = [
    "BranchAndBoundConfig",
    "CompiledModel",
    "Constraint",
    "LinearModel",
    "MilpSolution",
    "Sense",
    "SolutionStatus",
    "SolveTelemetry",
    "VarType",
    "Variable",
    "solve_lp_relaxation",
    "solve_model",
    "solve_with_branch_and_bound",
    "solve_with_scipy",
]


def solve_model(
    model: LinearModel | CompiledModel,
    *,
    backend: "str | object" = "scipy",
    time_limit: float | None = None,
    mip_rel_gap: float = 0.0,
    bnb_config: BranchAndBoundConfig | None = None,
) -> MilpSolution:
    """Solve a model through the current :class:`repro.solver.SolverService`.

    Parameters
    ----------
    backend:
        A backend name registered with :func:`repro.solver.register_backend`
        (builtin: ``"scipy"`` — HiGHS, the default —, ``"bnb"`` — own branch
        and bound —, ``"lp"`` — LP relaxation only) or a full
        :class:`repro.solver.BackendSpec`.
    bnb_config:
        Legacy convenience: folded into the spec's options for the ``bnb``
        backend.
    """
    from dataclasses import asdict

    from ..solver import BackendSpec, get_solver_service

    spec = BackendSpec.coerce(backend)
    if bnb_config is not None and spec.name == "bnb":
        spec = spec.with_options(**asdict(bnb_config))
    return get_solver_service().solve(
        model, spec=spec, time_limit=time_limit, mip_rel_gap=mip_rel_gap
    )
