"""MILP/LP substrate: model builder, HiGHS backend, own branch and bound.

The paper's EPTAS solves a configuration MILP with a constant number of
integral variables using the Kannan/Lenstra fixed-dimension algorithm.  This
package substitutes two interchangeable exact oracles (see DESIGN.md §4):

* :func:`repro.milp.scipy_backend.solve_with_scipy` — HiGHS via scipy.
* :func:`repro.milp.branch_and_bound.solve_with_branch_and_bound` — a
  from-scratch LP-based branch and bound.

:func:`solve_model` picks a backend by name and is the single entry point
used by the algorithms.
"""

from __future__ import annotations

from .model import (
    CompiledModel,
    Constraint,
    LinearModel,
    MilpSolution,
    Sense,
    SolutionStatus,
    Variable,
    VarType,
)
from .scipy_backend import solve_lp_relaxation, solve_with_scipy
from .branch_and_bound import BranchAndBoundConfig, solve_with_branch_and_bound

__all__ = [
    "BranchAndBoundConfig",
    "CompiledModel",
    "Constraint",
    "LinearModel",
    "MilpSolution",
    "Sense",
    "SolutionStatus",
    "VarType",
    "Variable",
    "solve_lp_relaxation",
    "solve_model",
    "solve_with_branch_and_bound",
    "solve_with_scipy",
]


def solve_model(
    model: LinearModel | CompiledModel,
    *,
    backend: str = "scipy",
    time_limit: float | None = None,
    mip_rel_gap: float = 0.0,
    bnb_config: BranchAndBoundConfig | None = None,
) -> MilpSolution:
    """Solve a model with the chosen backend.

    Parameters
    ----------
    backend:
        ``"scipy"`` (default, HiGHS), ``"bnb"`` (own branch and bound), or
        ``"lp"`` (LP relaxation only — used for bounds and diagnostics).
    """
    if backend == "scipy":
        return solve_with_scipy(model, time_limit=time_limit, mip_rel_gap=mip_rel_gap)
    if backend == "bnb":
        return solve_with_branch_and_bound(model, bnb_config)
    if backend == "lp":
        return solve_lp_relaxation(model)
    raise ValueError(f"unknown MILP backend {backend!r}; expected 'scipy', 'bnb' or 'lp'")
