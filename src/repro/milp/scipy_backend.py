"""HiGHS-based backend for the MILP model builder.

The paper assumes an exact fixed-dimension MILP oracle (Kannan/Lenstra).  We
substitute scipy's HiGHS interface: :func:`scipy.optimize.milp` for
mixed-integer models and :func:`scipy.optimize.linprog` for pure LPs and LP
relaxations.  The backend is exact on the models this library produces and
returns a :class:`~repro.milp.model.MilpSolution` in terms of the symbolic
variable names.
"""

from __future__ import annotations

from typing import Any

import numpy as np
from scipy import optimize

from .model import CompiledModel, LinearModel, MilpSolution, SolutionStatus

__all__ = ["solve_with_scipy", "solve_lp_relaxation"]


def _compiled(model: LinearModel | CompiledModel) -> CompiledModel:
    return model.compile() if isinstance(model, LinearModel) else model


def _build_constraints(compiled: CompiledModel) -> list[optimize.LinearConstraint]:
    constraints: list[optimize.LinearConstraint] = []
    if compiled.a_ub.shape[0]:
        constraints.append(
            optimize.LinearConstraint(
                compiled.a_ub, -np.inf * np.ones(compiled.a_ub.shape[0]), compiled.b_ub
            )
        )
    if compiled.a_eq.shape[0]:
        constraints.append(
            optimize.LinearConstraint(compiled.a_eq, compiled.b_eq, compiled.b_eq)
        )
    return constraints


def _solution_from_values(
    compiled: CompiledModel,
    status: SolutionStatus,
    objective: float,
    values: np.ndarray | None,
    diagnostics: dict[str, Any],
) -> MilpSolution:
    mapping: dict[str, float] = {}
    if values is not None:
        mapping = {
            name: float(value)
            for name, value in zip(compiled.variable_names, values)
        }
    return MilpSolution(
        status=status, objective=objective, values=mapping, diagnostics=diagnostics
    )


def solve_with_scipy(
    model: LinearModel | CompiledModel,
    *,
    time_limit: float | None = None,
    mip_rel_gap: float = 0.0,
    node_limit: int | None = None,
) -> MilpSolution:
    """Solve a mixed-integer linear model with HiGHS.

    ``mip_rel_gap`` keeps HiGHS exact by default (gap ``0``); a small
    positive gap can be passed for large experiment models where a certified
    near-optimal configuration solution is sufficient (the EPTAS analysis
    only needs a feasible configuration solution of value at most ``T``).
    """
    compiled = _compiled(model)
    if compiled.num_variables == 0:
        return MilpSolution(status=SolutionStatus.OPTIMAL, objective=0.0, values={})

    options: dict[str, Any] = {"mip_rel_gap": mip_rel_gap}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)
    if node_limit is not None:
        options["node_limit"] = int(node_limit)

    result = optimize.milp(
        c=compiled.objective,
        constraints=_build_constraints(compiled),
        integrality=compiled.integrality,
        bounds=optimize.Bounds(compiled.lower, compiled.upper),
        options=options,
    )

    diagnostics: dict[str, Any] = {
        "backend": "scipy-highs",
        "scipy_status": int(result.status),
        "message": str(result.message),
        "mip_node_count": getattr(result, "mip_node_count", None),
        "mip_gap": getattr(result, "mip_gap", None),
    }

    # scipy.optimize.milp status codes: 0 optimal, 1 iteration/time limit,
    # 2 infeasible, 3 unbounded, 4 other.
    if result.status == 0 and result.x is not None:
        return _solution_from_values(
            compiled, SolutionStatus.OPTIMAL, float(result.fun), result.x, diagnostics
        )
    if result.status == 1 and result.x is not None:
        return _solution_from_values(
            compiled, SolutionStatus.FEASIBLE, float(result.fun), result.x, diagnostics
        )
    if result.status == 2:
        return _solution_from_values(
            compiled, SolutionStatus.INFEASIBLE, float("inf"), None, diagnostics
        )
    if result.status == 3:
        return _solution_from_values(
            compiled, SolutionStatus.UNBOUNDED, float("-inf"), None, diagnostics
        )
    return _solution_from_values(
        compiled, SolutionStatus.LIMIT, float("inf"), None, diagnostics
    )


def solve_lp_relaxation(
    model: LinearModel | CompiledModel,
    *,
    extra_upper: dict[int, float] | None = None,
    extra_lower: dict[int, float] | None = None,
) -> MilpSolution:
    """Solve the LP relaxation of a model (integrality dropped).

    ``extra_lower`` / ``extra_upper`` override individual variable bounds by
    dense index — this is the hook the branch-and-bound solver uses to
    impose branching decisions without rebuilding the model.
    """
    compiled = _compiled(model)
    if compiled.num_variables == 0:
        return MilpSolution(status=SolutionStatus.OPTIMAL, objective=0.0, values={})

    lower = compiled.lower.copy()
    upper = compiled.upper.copy()
    if extra_lower:
        for index, value in extra_lower.items():
            lower[index] = max(lower[index], value)
    if extra_upper:
        for index, value in extra_upper.items():
            upper[index] = min(upper[index], value)

    bounds = list(zip(lower, [None if np.isinf(u) else u for u in upper]))
    result = optimize.linprog(
        c=compiled.objective,
        A_ub=compiled.a_ub if compiled.a_ub.shape[0] else None,
        b_ub=compiled.b_ub if compiled.a_ub.shape[0] else None,
        A_eq=compiled.a_eq if compiled.a_eq.shape[0] else None,
        b_eq=compiled.b_eq if compiled.a_eq.shape[0] else None,
        bounds=bounds,
        method="highs",
    )
    diagnostics: dict[str, Any] = {
        "backend": "scipy-linprog",
        "scipy_status": int(result.status),
        "message": str(result.message),
    }
    if result.status == 0:
        return _solution_from_values(
            compiled, SolutionStatus.OPTIMAL, float(result.fun), result.x, diagnostics
        )
    if result.status == 2:
        return _solution_from_values(
            compiled, SolutionStatus.INFEASIBLE, float("inf"), None, diagnostics
        )
    if result.status == 3:
        return _solution_from_values(
            compiled, SolutionStatus.UNBOUNDED, float("-inf"), None, diagnostics
        )
    return _solution_from_values(
        compiled, SolutionStatus.LIMIT, float("inf"), None, diagnostics
    )
