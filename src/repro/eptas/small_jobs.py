"""Placement of small jobs (Section 4: Lemmas 8–10, Corollary 1).

Two different mechanisms are used, mirroring the paper:

* **Non-priority bags** (after the transformation they contain only small
  jobs and fillers): machines are grouped by their current height rounded up
  to a multiple of ``eps``; *group-bag-LPT* routes each bag's jobs to groups
  (largest jobs to the least loaded group) and *bag-LPT* spreads them inside
  each group on pairwise distinct machines (Lemmas 8 and 9).

* **Priority bags**: the MILP's ``y`` variables say how many jobs of each
  size-restricted priority bag sit on top of each pattern.  Full units are
  placed as whole jobs; the fractional remainder of a bag on a pattern is
  merged into equal-height artificial jobs (Corollary 1), which are placed
  with bag-LPT and then serve as slots for the real fractionally-assigned
  jobs (Lemma 10).

Every step keeps the bag constraint *within the transformed instance*; the
only conflicts that can remain afterwards are between priority small jobs
and large jobs that were moved by the Lemma-7 swap, and those are repaired
by :mod:`repro.eptas.repair`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..baselines.lpt import bag_lpt, group_bag_lpt
from ..core.errors import AlgorithmError
from ..core.instance import Instance
from ..core.job import Job
from .classification import BagClasses, JobClasses
from .large_jobs import LargePlacement
from .milp import ConfigurationSolution
from .params import DerivedConstants
from .patterns import PatternSet, size_key

__all__ = ["SmallPlacementDiagnostics", "place_small_jobs"]


@dataclass(slots=True)
class SmallPlacementDiagnostics:
    """Counters reported by the small-job placement stage."""

    non_priority_jobs: int = 0
    priority_full_jobs: int = 0
    priority_slot_jobs: int = 0
    priority_fallback_jobs: int = 0
    machine_groups: int = 0
    merged_slots: int = 0

    def to_dict(self) -> dict[str, int]:
        return {
            "non_priority_jobs": self.non_priority_jobs,
            "priority_full_jobs": self.priority_full_jobs,
            "priority_slot_jobs": self.priority_slot_jobs,
            "priority_fallback_jobs": self.priority_fallback_jobs,
            "machine_groups": self.machine_groups,
            "merged_slots": self.merged_slots,
        }


@dataclass(slots=True)
class _PatternBagAllocation:
    """Per (pattern, priority bag) bookkeeping for Corollary 1."""

    full_job_ids: list[int] = field(default_factory=list)
    fractional_area: float = 0.0


def _assign_feasible_fallback(
    instance: Instance,
    schedule,
    machine_bags: list[set[int]],
    loads: list[float],
    job: Job,
) -> int:
    """Place a job on the least-loaded machine without a job of its bag."""
    candidates = [
        machine
        for machine in range(instance.num_machines)
        if job.bag not in machine_bags[machine]
    ]
    if not candidates:
        raise AlgorithmError(
            f"no conflict-free machine available for small job {job.id} "
            f"of bag {job.bag}"
        )
    machine = min(candidates, key=lambda m: loads[m])
    schedule.assign(job.id, machine)
    machine_bags[machine].add(job.bag)
    loads[machine] += job.size
    return machine


def place_small_jobs(
    instance: Instance,
    job_classes: JobClasses,
    bag_classes: BagClasses,
    constants: DerivedConstants,
    patterns: PatternSet,
    solution: ConfigurationSolution,
    placement: LargePlacement,
) -> SmallPlacementDiagnostics:
    """Place every small job of the transformed instance (mutates the schedule)."""
    eps = job_classes.eps
    schedule = placement.schedule
    diagnostics = SmallPlacementDiagnostics()

    machine_bags: list[set[int]] = [set() for _ in range(instance.num_machines)]
    loads = [0.0] * instance.num_machines
    for job_id, machine in schedule.assignment.items():
        machine_bags[machine].add(instance.job(job_id).bag)
        loads[machine] += instance.job(job_id).size

    small_jobs_by_class: dict[tuple[int, float], list[Job]] = {}
    for job in instance.jobs:
        if job.id in job_classes.small:
            small_jobs_by_class.setdefault(
                (job.bag, size_key(job.size)), []
            ).append(job)
    for jobs in small_jobs_by_class.values():
        jobs.sort(key=lambda job: job.id)

    # ------------------------------------------------------------------
    # A. Interpret the y variables of priority bags.
    # ------------------------------------------------------------------
    pattern_area: dict[int, float] = {}
    allocations: dict[tuple[int, int], _PatternBagAllocation] = {}
    remaining_priority: dict[int, list[Job]] = {}

    priority_classes = sorted(
        key for key in small_jobs_by_class if key[0] in bag_classes.priority
    )
    for bag, size in priority_classes:
        jobs = list(small_jobs_by_class[(bag, size)])
        entries = sorted(
            (
                (pattern_index, value)
                for (pattern_index, y_bag, y_size), value in solution.small_assignment.items()
                if y_bag == bag and abs(y_size - size) <= 1e-12
            ),
            key=lambda item: item[0],
        )
        # Full units first (the MILP enforces integrality for the larger
        # priority sizes, so most of the mass is integral already).
        for pattern_index, value in entries:
            pattern_area[pattern_index] = pattern_area.get(pattern_index, 0.0) + value * size
            full_units = int(math.floor(value + 1e-9))
            allocation = allocations.setdefault(
                (pattern_index, bag), _PatternBagAllocation()
            )
            take = min(full_units, len(jobs))
            for _ in range(take):
                allocation.full_job_ids.append(jobs.pop(0).id)
            residual = value - full_units
            if residual > 1e-9:
                allocation.fractional_area += residual * size
        if jobs:
            remaining_priority.setdefault(bag, []).extend(jobs)

    # ------------------------------------------------------------------
    # B. Group machines by rounded height (pattern load + reserved area).
    # ------------------------------------------------------------------
    machines_of_pattern: dict[int, list[int]] = {}
    for machine, pattern_index in enumerate(placement.machine_pattern):
        if pattern_index is None:
            continue
        machines_of_pattern.setdefault(pattern_index, []).append(machine)

    reserved: list[float] = [0.0] * instance.num_machines
    for pattern_index, machines in machines_of_pattern.items():
        area = pattern_area.get(pattern_index, 0.0)
        if machines and area > 0:
            share = area / len(machines)
            for machine in machines:
                reserved[machine] = share

    grouping_height = [loads[m] + reserved[m] for m in range(instance.num_machines)]
    group_of_machine: dict[int, int] = {}
    groups: dict[int, list[int]] = {}
    for machine in range(instance.num_machines):
        rounded = math.ceil(grouping_height[machine] / eps - 1e-9) * eps
        group_key = int(round(rounded / eps))
        group_of_machine[machine] = group_key
        groups.setdefault(group_key, []).append(machine)
    diagnostics.machine_groups = len(groups)

    # ------------------------------------------------------------------
    # C. Non-priority bags: group-bag-LPT across groups, bag-LPT inside.
    # ------------------------------------------------------------------
    non_priority_bags: list[list[Job]] = []
    for bag, members in instance.bags().items():
        if bag in bag_classes.priority:
            continue
        small_members = [job for job in members if job.id in job_classes.small]
        if small_members:
            non_priority_bags.append(small_members)
    # Largest bags (by area) first gives group-bag-LPT the most freedom.
    non_priority_bags.sort(key=lambda jobs: -sum(job.size for job in jobs))

    if non_priority_bags:
        group_sizes = {group: len(machines) for group, machines in groups.items()}
        group_avg = {
            group: sum(grouping_height[m] for m in machines) / len(machines)
            for group, machines in groups.items()
        }
        routed = group_bag_lpt(group_sizes, group_avg, non_priority_bags)
        for group, bag_chunks in routed.bags_per_group.items():
            if not any(bag_chunks):
                continue
            machines = groups[group]
            result = bag_lpt(
                machines,
                {machine: grouping_height[machine] for machine in machines},
                bag_chunks,
            )
            for job_id, machine in result.assignment.items():
                machine = int(machine)
                job = instance.job(job_id)
                if job.bag in machine_bags[machine]:
                    # Should not happen (non-priority small bags are fresh on
                    # every machine); defensively reroute.
                    _assign_feasible_fallback(
                        instance, schedule, machine_bags, loads, job
                    )
                else:
                    schedule.assign(job_id, machine)
                    machine_bags[machine].add(job.bag)
                    loads[machine] += job.size
                diagnostics.non_priority_jobs += 1

    # ------------------------------------------------------------------
    # D. Priority bags: Corollary 1 merged jobs + Lemma 10 slot filling.
    # ------------------------------------------------------------------
    slot_threshold = constants.small_integral_threshold
    synthetic_id = max((job.id for job in instance.jobs), default=0) + 1
    slots_by_bag: dict[int, list[int]] = {}

    for pattern_index, machines in machines_of_pattern.items():
        if not machines:
            continue
        bag_entries = [
            (bag, allocation)
            for (p_index, bag), allocation in allocations.items()
            if p_index == pattern_index
        ]
        if not bag_entries:
            continue
        modified_bags: list[list[Job]] = []
        slot_records: dict[int, tuple[int, float]] = {}  # synthetic id -> (bag, height)
        for bag, allocation in sorted(bag_entries):
            entries: list[Job] = [
                instance.job(job_id) for job_id in allocation.full_job_ids
            ]
            num_full = len(entries)
            num_merged = max(0, len(machines) - num_full)
            if allocation.fractional_area > 1e-12 and num_merged > 0:
                height = allocation.fractional_area / num_merged
                height = max(height, 0.0)
                rounded_height = max(height, slot_threshold)
                for _ in range(num_merged):
                    slot_job = Job(id=synthetic_id, size=rounded_height, bag=bag)
                    slot_records[synthetic_id] = (bag, rounded_height)
                    synthetic_id += 1
                    entries.append(slot_job)
                    diagnostics.merged_slots += 1
            if entries:
                modified_bags.append(entries)
        if not modified_bags:
            continue
        result = bag_lpt(
            machines,
            {machine: loads[machine] for machine in machines},
            modified_bags,
        )
        for job_id, machine in result.assignment.items():
            machine = int(machine)
            if job_id in slot_records:
                bag, _ = slot_records[job_id]
                slots_by_bag.setdefault(bag, []).append(machine)
                continue
            job = instance.job(job_id)
            if job.bag in machine_bags[machine]:
                _assign_feasible_fallback(instance, schedule, machine_bags, loads, job)
                diagnostics.priority_fallback_jobs += 1
            else:
                schedule.assign(job_id, machine)
                machine_bags[machine].add(job.bag)
                loads[machine] += job.size
                diagnostics.priority_full_jobs += 1

    # Lemma 10: fill the merged slots with the real fractionally-assigned jobs.
    for bag, jobs in remaining_priority.items():
        slots = slots_by_bag.get(bag, [])
        jobs_sorted = sorted(jobs, key=lambda job: (-job.size, job.id))
        for job in jobs_sorted:
            placed = False
            while slots:
                machine = slots.pop()
                if bag in machine_bags[machine]:
                    continue
                schedule.assign(job.id, machine)
                machine_bags[machine].add(bag)
                loads[machine] += job.size
                diagnostics.priority_slot_jobs += 1
                placed = True
                break
            if not placed:
                _assign_feasible_fallback(instance, schedule, machine_bags, loads, job)
                diagnostics.priority_fallback_jobs += 1

    # ------------------------------------------------------------------
    # E. Safety net: any small job that slipped through every path above
    #    (e.g. a priority class the MILP over-covered with patterns whose
    #    machines were never materialised) is placed greedily.
    # ------------------------------------------------------------------
    for (bag, _size), jobs in small_jobs_by_class.items():
        for job in jobs:
            if job.id in schedule:
                continue
            _assign_feasible_fallback(instance, schedule, machine_bags, loads, job)
            diagnostics.priority_fallback_jobs += 1

    return diagnostics
