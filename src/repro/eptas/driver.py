"""End-to-end EPTAS driver (Theorem 1).

``eptas_schedule(instance, eps)`` runs the full pipeline of the paper:

1. dual-approximation binary search over the guessed optimum ``T_guess``
   between the best combinatorial lower bound and the greedy (bag-aware LPT)
   upper bound;
2. for each guess: scale to ``OPT = 1``, round sizes geometrically, classify
   jobs and bags (Lemma 1, Definition 2), transform the instance
   (Section 2.2), enumerate patterns, build and solve the configuration MILP
   (Section 3);
3. when the MILP is feasible: place large/medium jobs (Lemma 7), place small
   jobs (Section 4), repair residual conflicts (Lemma 11), re-insert the
   removed medium jobs (Lemma 3) and revert the transformation (Lemma 4);
4. keep the best schedule seen; the greedy upper-bound schedule is the
   fallback, so a feasible schedule is always returned.

Every schedule handed back to the caller is validated: complete and
conflict-free on the *original* instance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

from ..baselines.list_scheduling import greedy_assign
from ..bounds import best_lower_bound
from ..core.errors import ReproError, SolverLimitError
from ..core.instance import Instance
from ..core.result import SolverResult, timed_solver_result
from ..core.schedule import Schedule
from .classification import classify_bags, classify_jobs
from .large_jobs import place_large_and_medium
from .milp import build_configuration_milp, solve_configuration_milp
from .params import ConstantsMode, EptasConfig
from .patterns import collect_entry_types, enumerate_patterns
from .repair import resolve_conflicts
from .rounding import scale_and_round
from .small_jobs import place_small_jobs
from .transformation import reinsert_medium_jobs, revert_to_original, transform_instance

__all__ = ["EptasConfig", "AttemptReport", "eptas_schedule", "solve_for_guess"]


@dataclass(slots=True)
class AttemptReport:
    """Diagnostics of one binary-search attempt (one guessed makespan)."""

    guess: float
    feasible: bool
    makespan: float | None = None
    num_patterns: int = 0
    integer_variables: int = 0
    continuous_variables: int = 0
    constraints: int = 0
    k: int = 0
    num_priority_bags: int = 0
    num_non_priority_bags: int = 0
    large_swaps: int = 0
    repair_conflicts: int = 0
    details: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "guess": self.guess,
            "feasible": self.feasible,
            "makespan": self.makespan,
            "num_patterns": self.num_patterns,
            "integer_variables": self.integer_variables,
            "continuous_variables": self.continuous_variables,
            "constraints": self.constraints,
            "k": self.k,
            "num_priority_bags": self.num_priority_bags,
            "num_non_priority_bags": self.num_non_priority_bags,
            "large_swaps": self.large_swaps,
            "repair_conflicts": self.repair_conflicts,
            **self.details,
        }


def solve_for_guess(
    instance: Instance, guess: float, config: EptasConfig
) -> tuple[Schedule | None, AttemptReport]:
    """Run one decision step of the dual approximation.

    Returns a feasible schedule of the *original* instance with makespan at
    most ``(1 + O(eps)) * guess`` when the configuration MILP admits a
    solution for the guess, and ``None`` otherwise.
    """
    report = AttemptReport(guess=guess, feasible=False)
    eps = config.eps

    rounded = scale_and_round(instance, eps, guess)
    working = rounded.instance

    job_classes = classify_jobs(working, eps)
    bag_classes = classify_bags(
        working,
        job_classes,
        mode=config.mode,
        practical_priority_cap=config.practical_priority_cap,
    )
    report.k = job_classes.k
    report.num_priority_bags = len(bag_classes.priority)
    report.num_non_priority_bags = len(bag_classes.non_priority)

    record = transform_instance(working, job_classes, bag_classes)
    transformed = record.transformed
    # Classify the transformed jobs (fillers are new small jobs; large jobs
    # kept their sizes, so thresholds and k are unchanged).
    transformed_job_classes = classify_jobs(transformed, eps, k=job_classes.k)
    constants = bag_classes.constants

    entry_types = collect_entry_types(transformed, transformed_job_classes, bag_classes)
    patterns = enumerate_patterns(
        entry_types,
        budget=constants.budget,
        max_slots=constants.q,
        max_patterns=config.max_patterns,
        num_machines=transformed.num_machines,
    )
    report.num_patterns = len(patterns)

    configuration = build_configuration_milp(
        transformed,
        transformed_job_classes,
        bag_classes,
        constants,
        patterns,
        config=config,
    )
    summary = configuration.summary()
    report.integer_variables = int(summary.get("integer_variables", 0))
    report.continuous_variables = int(summary.get("continuous_variables", 0))
    report.constraints = int(summary.get("constraints", 0))

    solution = solve_configuration_milp(configuration, config=config)
    report.details["milp_status"] = solution.status.value
    if not solution.feasible:
        return None, report

    placement = place_large_and_medium(
        transformed, transformed_job_classes, bag_classes, patterns, solution
    )
    report.large_swaps = placement.swaps
    report.details["large_fallback_moves"] = placement.fallback_moves

    small_diag = place_small_jobs(
        transformed,
        transformed_job_classes,
        bag_classes,
        constants,
        patterns,
        solution,
        placement,
    )
    report.details.update(small_diag.to_dict())

    if config.validate_intermediate:
        placement.schedule.validate(require_complete=False)

    repair_diag = resolve_conflicts(
        transformed, placement.schedule, transformed_job_classes, placement.origin
    )
    report.repair_conflicts = repair_diag.conflicts_found
    report.details.update(repair_diag.to_dict())

    # The schedule now covers every job of the transformed instance.
    placement.schedule.validate(require_complete=True)

    augmented_schedule = reinsert_medium_jobs(record, placement.schedule)
    final_scaled = revert_to_original(record, augmented_schedule)
    final_scaled.validate(require_complete=True)
    report.details.update(record.diagnostics)

    # Map back to the original (unscaled) instance: job ids are identical,
    # so the assignment transfers verbatim.
    final = Schedule(instance, final_scaled.assignment)
    final.validate(require_complete=True)
    report.feasible = True
    report.makespan = final.makespan()
    return final, report


def eptas_schedule(
    instance: Instance,
    eps: float = 0.5,
    *,
    config: EptasConfig | None = None,
) -> SolverResult:
    """The paper's EPTAS: a (1 + O(eps))-approximation for ``P | bag | C_max``."""
    if config is None:
        config = EptasConfig(eps=eps)
    elif config.eps != eps:
        config = EptasConfig(
            eps=eps,
            mode=config.mode,
            practical_priority_cap=config.practical_priority_cap,
            max_patterns=config.max_patterns,
            milp_backend=config.milp_backend,
            milp_time_limit=config.milp_time_limit,
            mip_rel_gap=config.mip_rel_gap,
            max_search_iterations=config.max_search_iterations,
            binary_search_tol=config.binary_search_tol,
            validate_intermediate=config.validate_intermediate,
            use_lp_lower_bound=config.use_lp_lower_bound,
        )
    config = config.normalised()
    diagnostics: dict[str, Any] = {}

    def build() -> Schedule:
        if instance.num_jobs == 0:
            return Schedule(instance, {})

        bounds = best_lower_bound(instance, use_lp=config.use_lp_lower_bound)
        lower = bounds.best
        greedy = greedy_assign(
            instance, sorted(instance.jobs, key=lambda job: (-job.size, job.id))
        )
        upper = greedy.makespan()
        diagnostics["lower_bound"] = lower
        diagnostics["greedy_upper_bound"] = upper

        best_schedule = greedy
        best_makespan = upper
        attempts: list[dict[str, Any]] = []

        if lower <= 0:
            lower = min(upper, 1e-9) or 1e-9
        low, high = lower, max(upper, lower)
        tolerance = config.binary_search_tol
        if tolerance is None:
            tolerance = config.eps / 8
        iterations = 0
        # Always test the lower bound itself first: on many instances the
        # optimum equals the bound and a single MILP solve finishes the job.
        pending_first = True
        while iterations < config.max_search_iterations and (
            pending_first or high / low > 1.0 + tolerance
        ):
            iterations += 1
            guess = low if pending_first else math.sqrt(low * high)
            pending_first = False
            try:
                schedule, report = solve_for_guess(instance, guess, config)
            except SolverLimitError as exc:
                diagnostics.setdefault("limit_errors", []).append(str(exc))
                break
            except ReproError as exc:
                diagnostics.setdefault("attempt_errors", []).append(str(exc))
                schedule, report = None, AttemptReport(guess=guess, feasible=False)
            attempts.append(report.to_dict())
            if schedule is not None:
                if schedule.makespan() < best_makespan - 1e-12:
                    best_schedule = schedule
                    best_makespan = schedule.makespan()
                high = min(high, guess)
                if guess <= low * (1.0 + 1e-12):
                    break
            else:
                low = max(low * (1 + 1e-9), guess)

        diagnostics["search_iterations"] = iterations
        diagnostics["attempts"] = attempts
        diagnostics["best_makespan"] = best_makespan
        if attempts:
            last_feasible = [a for a in attempts if a["feasible"]]
            if last_feasible:
                final_attempt = last_feasible[-1]
                for key in (
                    "num_patterns",
                    "integer_variables",
                    "continuous_variables",
                    "constraints",
                    "k",
                    "num_priority_bags",
                    "num_non_priority_bags",
                    "large_swaps",
                    "repair_conflicts",
                ):
                    diagnostics[key] = final_attempt.get(key)
        return best_schedule

    return timed_solver_result(
        "eptas",
        build,
        params=config.to_dict(),
        diagnostics=diagnostics,
    )
