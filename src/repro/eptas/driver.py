"""End-to-end EPTAS driver (Theorem 1).

``eptas_schedule(instance, eps)`` runs the full pipeline of the paper:

1. dual-approximation binary search over the guessed optimum ``T_guess``
   between the best combinatorial lower bound and the greedy (bag-aware LPT)
   upper bound;
2. for each guess: scale to ``OPT = 1``, round sizes geometrically, classify
   jobs and bags (Lemma 1, Definition 2), transform the instance
   (Section 2.2), enumerate patterns, build and solve the configuration MILP
   (Section 3);
3. when the MILP is feasible: place large/medium jobs (Lemma 7), place small
   jobs (Section 4), repair residual conflicts (Lemma 11), re-insert the
   removed medium jobs (Lemma 3) and revert the transformation (Lemma 4);
4. keep the best schedule seen; the greedy upper-bound schedule is the
   fallback, so a feasible schedule is always returned.

Every schedule handed back to the caller is validated: complete and
conflict-free on the *original* instance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any

from ..baselines.list_scheduling import greedy_assign
from ..bounds import best_lower_bound
from ..core.errors import ReproError, SolverLimitError
from ..core.instance import Instance
from ..core.result import SolverResult, timed_solver_result
from ..core.schedule import Schedule
from ..solver import SolverPoolError, get_solver_service
from .classification import classify_bags, classify_jobs
from .large_jobs import place_large_and_medium
from .milp import (
    ConfigurationModel,
    ConfigurationSolution,
    build_configuration_milp,
    configuration_solve_request,
    interpret_milp_solution,
    solve_configuration_milp,
)
from .params import ConstantsMode, EptasConfig
from .patterns import collect_entry_types, enumerate_patterns
from .repair import resolve_conflicts
from .rounding import scale_and_round
from .small_jobs import place_small_jobs
from .transformation import reinsert_medium_jobs, revert_to_original, transform_instance

__all__ = ["EptasConfig", "AttemptReport", "eptas_schedule", "solve_for_guess"]


@dataclass(slots=True)
class AttemptReport:
    """Diagnostics of one binary-search attempt (one guessed makespan)."""

    guess: float
    feasible: bool
    makespan: float | None = None
    num_patterns: int = 0
    integer_variables: int = 0
    continuous_variables: int = 0
    constraints: int = 0
    k: int = 0
    num_priority_bags: int = 0
    num_non_priority_bags: int = 0
    large_swaps: int = 0
    repair_conflicts: int = 0
    details: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "guess": self.guess,
            "feasible": self.feasible,
            "makespan": self.makespan,
            "num_patterns": self.num_patterns,
            "integer_variables": self.integer_variables,
            "continuous_variables": self.continuous_variables,
            "constraints": self.constraints,
            "k": self.k,
            "num_priority_bags": self.num_priority_bags,
            "num_non_priority_bags": self.num_non_priority_bags,
            "large_swaps": self.large_swaps,
            "repair_conflicts": self.repair_conflicts,
            **self.details,
        }


@dataclass(slots=True)
class _PreparedGuess:
    """Everything of one decision step up to (but excluding) the MILP solve.

    Building this is pure CPU work in the driver process; the expensive MILP
    solve that follows is what the solver pool overlaps across guesses.
    """

    guess: float
    report: AttemptReport
    record: Any  # TransformationRecord
    transformed_job_classes: Any  # JobClasses
    bag_classes: Any  # BagClasses
    constants: Any  # DerivedConstants
    patterns: Any  # PatternSet
    configuration: ConfigurationModel


def _prepare_guess(
    instance: Instance, guess: float, config: EptasConfig
) -> _PreparedGuess:
    """Scale, classify, transform, enumerate patterns and assemble the MILP."""
    report = AttemptReport(guess=guess, feasible=False)
    eps = config.eps

    rounded = scale_and_round(instance, eps, guess)
    working = rounded.instance

    job_classes = classify_jobs(working, eps)
    bag_classes = classify_bags(
        working,
        job_classes,
        mode=config.mode,
        practical_priority_cap=config.practical_priority_cap,
    )
    report.k = job_classes.k
    report.num_priority_bags = len(bag_classes.priority)
    report.num_non_priority_bags = len(bag_classes.non_priority)

    record = transform_instance(working, job_classes, bag_classes)
    transformed = record.transformed
    # Classify the transformed jobs (fillers are new small jobs; large jobs
    # kept their sizes, so thresholds and k are unchanged).
    transformed_job_classes = classify_jobs(transformed, eps, k=job_classes.k)
    constants = bag_classes.constants

    entry_types = collect_entry_types(transformed, transformed_job_classes, bag_classes)
    patterns = enumerate_patterns(
        entry_types,
        budget=constants.budget,
        max_slots=constants.q,
        max_patterns=config.max_patterns,
        num_machines=transformed.num_machines,
    )
    report.num_patterns = len(patterns)

    configuration = build_configuration_milp(
        transformed,
        transformed_job_classes,
        bag_classes,
        constants,
        patterns,
        config=config,
    )
    summary = configuration.summary()
    report.integer_variables = int(summary.get("integer_variables", 0))
    report.continuous_variables = int(summary.get("continuous_variables", 0))
    report.constraints = int(summary.get("constraints", 0))
    return _PreparedGuess(
        guess=guess,
        report=report,
        record=record,
        transformed_job_classes=transformed_job_classes,
        bag_classes=bag_classes,
        constants=constants,
        patterns=patterns,
        configuration=configuration,
    )


def _complete_guess(
    instance: Instance,
    prepared: _PreparedGuess,
    solution: ConfigurationSolution,
    *,
    validate_intermediate: bool = False,
) -> tuple[Schedule | None, AttemptReport]:
    """Interpret a solved configuration MILP: placement, repair, revert."""
    report = prepared.report
    record = prepared.record
    transformed = record.transformed
    transformed_job_classes = prepared.transformed_job_classes
    bag_classes = prepared.bag_classes
    constants = prepared.constants
    patterns = prepared.patterns

    report.details["milp_status"] = solution.status.value
    if "telemetry" in solution.milp_diagnostics:
        report.details["milp_telemetry"] = solution.milp_diagnostics["telemetry"]
    if not solution.feasible:
        return None, report

    placement = place_large_and_medium(
        transformed, transformed_job_classes, bag_classes, patterns, solution
    )
    report.large_swaps = placement.swaps
    report.details["large_fallback_moves"] = placement.fallback_moves

    small_diag = place_small_jobs(
        transformed,
        transformed_job_classes,
        bag_classes,
        constants,
        patterns,
        solution,
        placement,
    )
    report.details.update(small_diag.to_dict())

    if validate_intermediate:
        placement.schedule.validate(require_complete=False)

    repair_diag = resolve_conflicts(
        transformed, placement.schedule, transformed_job_classes, placement.origin
    )
    report.repair_conflicts = repair_diag.conflicts_found
    report.details.update(repair_diag.to_dict())

    # The schedule now covers every job of the transformed instance.
    placement.schedule.validate(require_complete=True)

    augmented_schedule = reinsert_medium_jobs(record, placement.schedule)
    final_scaled = revert_to_original(record, augmented_schedule)
    final_scaled.validate(require_complete=True)
    report.details.update(record.diagnostics)

    # Map back to the original (unscaled) instance: job ids are identical,
    # so the assignment transfers verbatim.
    final = Schedule(instance, final_scaled.assignment)
    final.validate(require_complete=True)
    report.feasible = True
    report.makespan = final.makespan()
    return final, report


def solve_for_guess(
    instance: Instance, guess: float, config: EptasConfig
) -> tuple[Schedule | None, AttemptReport]:
    """Run one decision step of the dual approximation.

    Returns a feasible schedule of the *original* instance with makespan at
    most ``(1 + O(eps)) * guess`` when the configuration MILP admits a
    solution for the guess, and ``None`` otherwise.
    """
    prepared = _prepare_guess(instance, guess, config)
    solution = solve_configuration_milp(prepared.configuration, config=config)
    return _complete_guess(
        instance, prepared, solution, validate_intermediate=config.validate_intermediate
    )


@dataclass(slots=True)
class _GuessOutcome:
    """Result of one guess inside a (possibly speculative) search round."""

    guess: float
    schedule: Schedule | None
    report: AttemptReport | None
    limit_error: str | None = None
    attempt_error: str | None = None


def _evaluate_guesses(
    instance: Instance, guesses: list[float], config: EptasConfig
) -> list[_GuessOutcome]:
    """Evaluate a round of independent guesses, batching the MILP solves.

    Preparation (transformation + pattern enumeration + model assembly) runs
    sequentially in-process; the per-guess configuration MILPs are then
    submitted as one ``solve_many`` batch, so with a subprocess solver pool
    installed the expensive solves overlap.  Per-guess errors are captured
    in the outcome instead of aborting the whole round.
    """
    outcomes: dict[float, _GuessOutcome] = {}
    prepared: list[_PreparedGuess] = []
    for guess in guesses:
        try:
            prepared.append(_prepare_guess(instance, guess, config))
        except SolverLimitError as exc:
            outcomes[guess] = _GuessOutcome(
                guess=guess, schedule=None, report=None, limit_error=str(exc)
            )
        except ReproError as exc:
            outcomes[guess] = _GuessOutcome(
                guess=guess,
                schedule=None,
                report=AttemptReport(guess=guess, feasible=False),
                attempt_error=str(exc),
            )
    # A limit error stops the whole search at that guess, so the caller
    # discards every larger guess of this round — don't pay for their
    # (dominant-cost) MILP solves.
    limit_guesses = [
        outcome.guess for outcome in outcomes.values() if outcome.limit_error is not None
    ]
    if limit_guesses:
        cutoff = min(limit_guesses)
        prepared = [item for item in prepared if item.guess < cutoff]
    solutions = get_solver_service().solve_many(
        [configuration_solve_request(item.configuration, config) for item in prepared],
        return_exceptions=True,
    )
    for item, raw in zip(prepared, solutions):
        # Errors raised *during the solve* degrade per guess exactly like
        # the pre-pool sequential search did: a limit stops the search, any
        # other library error marks the attempt failed.  Pool infrastructure
        # failures (server crash after retries, backend bugs wrapped by the
        # server) and genuine non-library bugs still propagate — they say
        # nothing about the guess.
        if isinstance(raw, SolverPoolError):
            raise raw
        if isinstance(raw, SolverLimitError):
            outcomes[item.guess] = _GuessOutcome(
                guess=item.guess, schedule=None, report=None, limit_error=str(raw)
            )
            continue
        if isinstance(raw, ReproError):
            outcomes[item.guess] = _GuessOutcome(
                guess=item.guess,
                schedule=None,
                report=AttemptReport(guess=item.guess, feasible=False),
                attempt_error=str(raw),
            )
            continue
        if isinstance(raw, Exception):
            raise raw
        try:
            solution = interpret_milp_solution(item.configuration, raw)
            schedule, report = _complete_guess(
                instance,
                item,
                solution,
                validate_intermediate=config.validate_intermediate,
            )
            outcomes[item.guess] = _GuessOutcome(
                guess=item.guess, schedule=schedule, report=report
            )
        except SolverLimitError as exc:
            outcomes[item.guess] = _GuessOutcome(
                guess=item.guess, schedule=None, report=None, limit_error=str(exc)
            )
        except ReproError as exc:
            outcomes[item.guess] = _GuessOutcome(
                guess=item.guess,
                schedule=None,
                report=AttemptReport(guess=item.guess, feasible=False),
                attempt_error=str(exc),
            )
    return [outcomes[guess] for guess in guesses if guess in outcomes]


def _round_guesses(
    low: float, high: float, count: int, *, include_low: bool
) -> list[float]:
    """Candidate guesses for one search round, ascending and de-duplicated.

    ``count == 1`` reproduces the classic binary search exactly: the lower
    bound itself on the first round, the geometric midpoint afterwards.
    Larger counts add geometric quantiles of ``(low, high)`` — the guesses a
    sequential search would probe next, evaluated speculatively.
    """
    guesses: list[float] = [low] if include_low else []
    subdivisions = count - 1 if include_low else count
    if high > low:
        for j in range(1, subdivisions + 1):
            guesses.append(low * (high / low) ** (j / (subdivisions + 1)))
    deduped: list[float] = []
    for guess in sorted(guesses):
        if not deduped or guess > deduped[-1] * (1 + 1e-15):
            deduped.append(guess)
    return deduped


def eptas_schedule(
    instance: Instance,
    eps: float = 0.5,
    *,
    config: EptasConfig | None = None,
) -> SolverResult:
    """The paper's EPTAS: a (1 + O(eps))-approximation for ``P | bag | C_max``."""
    if config is None:
        config = EptasConfig(eps=eps)
    elif config.eps != eps:
        config = replace(config, eps=eps)
    config = config.normalised()
    diagnostics: dict[str, Any] = {}

    def build() -> Schedule:
        if instance.num_jobs == 0:
            return Schedule(instance, {})

        bounds = best_lower_bound(instance, use_lp=config.use_lp_lower_bound)
        lower = bounds.best
        greedy = greedy_assign(
            instance, sorted(instance.jobs, key=lambda job: (-job.size, job.id))
        )
        upper = greedy.makespan()
        diagnostics["lower_bound"] = lower
        diagnostics["greedy_upper_bound"] = upper

        best_schedule = greedy
        best_makespan = upper
        attempts: list[dict[str, Any]] = []

        if lower <= 0:
            lower = min(upper, 1e-9) or 1e-9
        low, high = lower, max(upper, lower)
        tolerance = config.binary_search_tol
        if tolerance is None:
            tolerance = config.eps / 8
        iterations = 0
        # Speculative width: with a subprocess solver pool installed, each
        # round evaluates several guesses whose MILPs overlap on the
        # servers; without one the classic sequential search is preserved.
        round_width = max(1, config.speculative_guesses)
        if round_width > 1:
            round_width = min(round_width, max(1, get_solver_service().concurrency))
        # Always test the lower bound itself first: on many instances the
        # optimum equals the bound and a single MILP solve finishes the job.
        pending_first = True
        stop_search = False
        while (
            not stop_search
            and iterations < config.max_search_iterations
            and (pending_first or high / low > 1.0 + tolerance)
        ):
            width = min(round_width, config.max_search_iterations - iterations)
            guesses = _round_guesses(low, high, width, include_low=pending_first)
            if not guesses:
                guesses = [math.sqrt(low * high)]
            pending_first = False
            iterations += len(guesses)
            for outcome in _evaluate_guesses(instance, guesses, config):
                if outcome.limit_error is not None:
                    diagnostics.setdefault("limit_errors", []).append(outcome.limit_error)
                    stop_search = True
                    break
                if outcome.attempt_error is not None:
                    diagnostics.setdefault("attempt_errors", []).append(
                        outcome.attempt_error
                    )
                attempts.append(outcome.report.to_dict())
                if outcome.schedule is not None:
                    if outcome.schedule.makespan() < best_makespan - 1e-12:
                        best_schedule = outcome.schedule
                        best_makespan = outcome.schedule.makespan()
                    high = min(high, outcome.guess)
                    if outcome.guess <= low * (1.0 + 1e-12):
                        stop_search = True
                        break
                elif outcome.guess < high:
                    # An infeasible guess above an already-confirmed feasible
                    # one contradicts monotonicity (solver noise/limits);
                    # never let it push the bracket inside-out.
                    low = max(low * (1 + 1e-9), outcome.guess)

        diagnostics["search_iterations"] = iterations
        diagnostics["attempts"] = attempts
        diagnostics["best_makespan"] = best_makespan
        if attempts:
            last_feasible = [a for a in attempts if a["feasible"]]
            if last_feasible:
                final_attempt = last_feasible[-1]
                for key in (
                    "num_patterns",
                    "integer_variables",
                    "continuous_variables",
                    "constraints",
                    "k",
                    "num_priority_bags",
                    "num_non_priority_bags",
                    "large_swaps",
                    "repair_conflicts",
                ):
                    diagnostics[key] = final_attempt.get(key)
        return best_schedule

    return timed_solver_result(
        "eptas",
        build,
        params=config.to_dict(),
        diagnostics=diagnostics,
    )
