"""Job and bag classification (Section 2.1 of the paper).

Given the scaled-and-rounded instance (guessed optimum ``1``):

* Lemma 1 picks an exponent ``k <= 1/eps**2`` such that the jobs whose size
  falls in the window ``[eps**(k+1), eps**k)`` have total area at most
  ``eps**2 * m``.  Those are the *medium* jobs; jobs at least ``eps**k`` are
  *large*; the rest are *small*.
* A bag is a *large bag* when it holds at least ``eps * m`` medium-or-large
  jobs; otherwise it is a *small bag*.
* Definition 2 fixes, for every large size ``s``, the ordering ``o_s`` of
  bags by the cardinality of their size-restricted bag ``B_l^s``; the first
  ``b'`` bags per size — plus every large bag — are *priority* bags, the rest
  are *non-priority* bags.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from ..core.instance import Instance
from ..core.job import Job
from .params import ConstantsMode, DerivedConstants, derive_constants, normalise_eps

__all__ = [
    "JobClasses",
    "BagClasses",
    "compute_k",
    "classify_jobs",
    "classify_bags",
    "SIZE_TOL",
]

#: Relative tolerance used when comparing (rounded) job sizes for equality.
SIZE_TOL = 1e-9


def _sizes_equal(a: float, b: float) -> bool:
    return abs(a - b) <= SIZE_TOL * max(1.0, abs(a), abs(b))


def compute_k(instance: Instance, eps: float) -> int:
    """Lemma 1: find ``k`` with little work in the window ``[eps^{k+1}, eps^k)``.

    Returns the smallest ``k in {1, ..., ceil(1/eps**2)}`` whose window mass
    is at most ``eps**2 * m``.  When the guessed optimum is too small the
    total work can exceed ``m`` and no window may qualify; in that case the
    window with minimum mass is returned (the driver's binary search will
    reject such guesses through MILP infeasibility anyway, but classification
    stays well defined).
    """
    eps = normalise_eps(eps)
    num_windows = max(1, int(math.ceil(1.0 / (eps * eps) - 1e-9)))
    budget = eps * eps * instance.num_machines
    best_k = 1
    best_mass = math.inf
    for k in range(1, num_windows + 1):
        upper = eps**k
        lower = eps ** (k + 1)
        mass = sum(
            job.size
            for job in instance.jobs
            if lower - SIZE_TOL <= job.size < upper - SIZE_TOL * upper
        )
        if mass <= budget + 1e-12:
            return k
        if mass < best_mass:
            best_mass = mass
            best_k = k
    return best_k


@dataclass(frozen=True, slots=True)
class JobClasses:
    """Partition of the jobs into large / medium / small (Lemma 1)."""

    eps: float
    k: int
    large_threshold: float
    medium_threshold: float
    large: frozenset[int]
    medium: frozenset[int]
    small: frozenset[int]

    def class_of(self, job: Job) -> str:
        if job.id in self.large:
            return "large"
        if job.id in self.medium:
            return "medium"
        return "small"

    def is_large_size(self, size: float) -> bool:
        return size >= self.large_threshold - SIZE_TOL

    def is_medium_size(self, size: float) -> bool:
        return self.medium_threshold - SIZE_TOL <= size < self.large_threshold - SIZE_TOL * self.large_threshold

    def is_small_size(self, size: float) -> bool:
        return size < self.medium_threshold - SIZE_TOL * self.medium_threshold

    @property
    def medium_or_large(self) -> frozenset[int]:
        return self.large | self.medium

    def summary(self) -> dict[str, float | int]:
        return {
            "k": self.k,
            "large_threshold": self.large_threshold,
            "medium_threshold": self.medium_threshold,
            "num_large": len(self.large),
            "num_medium": len(self.medium),
            "num_small": len(self.small),
        }


def classify_jobs(instance: Instance, eps: float, *, k: int | None = None) -> JobClasses:
    """Classify every job of a (rounded, scaled) instance as large/medium/small."""
    eps = normalise_eps(eps)
    if k is None:
        k = compute_k(instance, eps)
    large_threshold = eps**k
    medium_threshold = eps ** (k + 1)
    large: set[int] = set()
    medium: set[int] = set()
    small: set[int] = set()
    for job in instance.jobs:
        if job.size >= large_threshold - SIZE_TOL:
            large.add(job.id)
        elif job.size >= medium_threshold - SIZE_TOL:
            medium.add(job.id)
        else:
            small.add(job.id)
    return JobClasses(
        eps=eps,
        k=k,
        large_threshold=large_threshold,
        medium_threshold=medium_threshold,
        large=frozenset(large),
        medium=frozenset(medium),
        small=frozenset(small),
    )


@dataclass(frozen=True, slots=True)
class BagClasses:
    """Priority / non-priority split of the bags (Definition 2)."""

    priority: frozenset[int]
    non_priority: frozenset[int]
    large_bags: frozenset[int]
    # Per large size: bag indices ordered by decreasing |B_l^s| (the paper's o_s).
    size_orderings: Mapping[float, tuple[int, ...]]
    b_prime: int
    constants: DerivedConstants

    def is_priority(self, bag: int) -> bool:
        return bag in self.priority

    def summary(self) -> dict[str, int]:
        return {
            "num_priority": len(self.priority),
            "num_non_priority": len(self.non_priority),
            "num_large_bags": len(self.large_bags),
            "b_prime": self.b_prime,
        }


def classify_bags(
    instance: Instance,
    job_classes: JobClasses,
    *,
    mode: ConstantsMode = ConstantsMode.PRACTICAL,
    practical_priority_cap: int = 3,
) -> BagClasses:
    """Determine large bags, the per-size orderings and the priority bags.

    The derived constants (``q``, ``b'``) use the *instance-derived* number
    of distinct large and medium sizes, which never exceeds the worst-case
    geometric count used in the proofs.
    """
    eps = job_classes.eps
    jobs_by_id = {job.id: job for job in instance.jobs}

    large_sizes = sorted(
        {jobs_by_id[j].size for j in job_classes.large}
    )
    medium_sizes = sorted({jobs_by_id[j].size for j in job_classes.medium})

    constants = derive_constants(
        eps,
        job_classes.k,
        num_large_sizes=max(1, len(large_sizes)),
        num_medium_sizes=max(1, len(medium_sizes)),
        mode=mode,
        practical_priority_cap=practical_priority_cap,
        num_machines=instance.num_machines,
    )
    b_prime = constants.priority_bags_per_size

    # Large bags: at least eps * m medium-or-large jobs.
    large_bag_threshold = eps * instance.num_machines
    large_bags: set[int] = set()
    for bag, members in instance.bags().items():
        heavy = sum(1 for job in members if job.id in job_classes.medium_or_large)
        if heavy >= large_bag_threshold - SIZE_TOL:
            large_bags.add(bag)

    # Per-size orderings o_s over bags actually containing jobs of size s.
    size_orderings: dict[float, tuple[int, ...]] = {}
    # The paper makes every large bag a priority bag so that non-priority bags
    # are provably small (needed by the worst-case proof of Lemma 3).  In
    # PRACTICAL mode this rule is dropped: when eps*m is tiny, almost every
    # bag would qualify and the pattern MILP would explode; the repair stages
    # (Lemmas 3, 4, 7, 11 + defensive fallbacks) handle the resulting
    # conflicts, and every returned schedule is validated (see DESIGN.md §4).
    priority: set[int] = set(large_bags) if mode is ConstantsMode.THEORY else set()
    for size in large_sizes:
        counts: dict[int, int] = {}
        for bag, members in instance.bags().items():
            count = sum(1 for job in members if _sizes_equal(job.size, size))
            if count > 0:
                counts[bag] = count
        ordering = tuple(
            bag for bag, _ in sorted(counts.items(), key=lambda item: (-item[1], item[0]))
        )
        size_orderings[size] = ordering
        priority.update(ordering[:b_prime])

    non_priority = set(instance.bag_indices) - priority
    return BagClasses(
        priority=frozenset(priority),
        non_priority=frozenset(non_priority),
        large_bags=frozenset(large_bags),
        size_orderings=size_orderings,
        b_prime=b_prime,
        constants=constants,
    )
