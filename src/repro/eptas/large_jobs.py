"""Placement of large and medium jobs from the MILP solution (Lemma 7).

The MILP solution fixes, per machine, a pattern: dedicated slots for
(priority bag, size) pairs and wildcard slots for non-priority jobs of a
given size.  Priority slots are filled directly (the MILP already respects
the bag constraint for them).  Wildcard slots are filled greedily with jobs
from the non-priority bag that still has the most jobs of the slot size and
does not conflict on the machine; when every candidate bag conflicts, the
conflict is repaired by swapping the job with a same-size job on another
machine — the paper's Lemma 7 shows a swap partner always exists under the
theory constants, and a defensive relocation keeps the schedule feasible in
any case.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.errors import AlgorithmError
from ..core.instance import Instance
from ..core.schedule import Schedule
from .classification import BagClasses, JobClasses
from .milp import ConfigurationSolution
from .patterns import PatternSet, size_key

__all__ = ["LargePlacement", "place_large_and_medium"]


@dataclass(slots=True)
class LargePlacement:
    """Result of the large/medium placement stage.

    ``machine_pattern[i]`` is the pattern index machine ``i`` runs (``None``
    for machines without a pattern), ``pattern_height[i]`` its slot height.
    ``origin`` records, for every priority-bag job placed through a
    dedicated slot, the machine the MILP assigned it to — Lemma 11's repair
    walks these origins.
    """

    schedule: Schedule
    machine_pattern: list[int | None]
    pattern_height: list[float]
    origin: dict[int, int] = field(default_factory=dict)
    swaps: int = 0
    fallback_moves: int = 0
    unfilled_slots: int = 0

    def machines_of_pattern(self, pattern_index: int) -> list[int]:
        return [
            machine
            for machine, index in enumerate(self.machine_pattern)
            if index == pattern_index
        ]


def place_large_and_medium(
    instance: Instance,
    job_classes: JobClasses,
    bag_classes: BagClasses,
    patterns: PatternSet,
    solution: ConfigurationSolution,
) -> LargePlacement:
    """Materialise machines from the MILP and place all medium/large jobs."""
    num_machines = instance.num_machines

    # ------------------------------------------------------------------
    # 1. Materialise machines: one machine per unit of x_p.
    # ------------------------------------------------------------------
    machine_pattern: list[int | None] = []
    for pattern_index, count in sorted(solution.pattern_machines.items()):
        machine_pattern.extend([pattern_index] * count)
    if len(machine_pattern) > num_machines:
        raise AlgorithmError(
            f"MILP used {len(machine_pattern)} machines but only "
            f"{num_machines} exist (constraint (1) violated)"
        )
    while len(machine_pattern) < num_machines:
        machine_pattern.append(None)
    pattern_height = [
        patterns.patterns[index].height if index is not None else 0.0
        for index in machine_pattern
    ]

    schedule = Schedule(instance, allow_partial=True)
    machine_bags: list[set[int]] = [set() for _ in range(num_machines)]
    placement = LargePlacement(
        schedule=schedule,
        machine_pattern=machine_pattern,
        pattern_height=pattern_height,
    )

    # ------------------------------------------------------------------
    # 2. Job pools.
    # ------------------------------------------------------------------
    priority_pool: dict[tuple[int, float], list[int]] = {}
    wildcard_pool: dict[float, dict[int, list[int]]] = {}  # size -> bag -> job ids
    for job in instance.jobs:
        if job.id in job_classes.small:
            continue
        key = size_key(job.size)
        if job.bag in bag_classes.priority:
            priority_pool.setdefault((job.bag, key), []).append(job.id)
        else:
            wildcard_pool.setdefault(key, {}).setdefault(job.bag, []).append(job.id)
    for pool in priority_pool.values():
        pool.sort(reverse=True)
    for per_bag in wildcard_pool.values():
        for pool in per_bag.values():
            pool.sort(reverse=True)

    def assign(job_id: int, machine: int) -> None:
        schedule.assign(job_id, machine)
        machine_bags[machine].add(instance.job(job_id).bag)

    # ------------------------------------------------------------------
    # 3. Dedicated priority slots.
    # ------------------------------------------------------------------
    wildcard_slots: list[tuple[int, float]] = []  # (machine, size)
    for machine, pattern_index in enumerate(machine_pattern):
        if pattern_index is None:
            continue
        pattern = patterns.patterns[pattern_index]
        for (bag, size), count in pattern.priority_slots().items():
            for _ in range(count):
                pool = priority_pool.get((bag, size), [])
                if not pool:
                    placement.unfilled_slots += 1
                    continue
                job_id = pool.pop()
                assign(job_id, machine)
                placement.origin[job_id] = machine
        for size, count in pattern.wildcard_slots().items():
            wildcard_slots.extend([(machine, size)] * count)

    # ------------------------------------------------------------------
    # 4. Wildcard slots: greedy "largest remaining bag first".
    # ------------------------------------------------------------------
    conflicts: list[tuple[int, int, float]] = []  # (job id, machine, size)
    for machine, size in wildcard_slots:
        per_bag = wildcard_pool.get(size, {})
        candidates = [(len(pool), bag) for bag, pool in per_bag.items() if pool]
        if not candidates:
            placement.unfilled_slots += 1
            continue
        non_conflicting = [
            (count, bag) for count, bag in candidates if bag not in machine_bags[machine]
        ]
        if non_conflicting:
            _, bag = max(non_conflicting)
            job_id = per_bag[bag].pop()
            assign(job_id, machine)
        else:
            # Unavoidable for now: place the job and repair afterwards.
            _, bag = max(candidates)
            job_id = per_bag[bag].pop()
            schedule.assign(job_id, machine)
            conflicts.append((job_id, machine, size))
            machine_bags[machine].add(bag)

    # ------------------------------------------------------------------
    # 5. Lemma-7 swap repair for wildcard conflicts.
    # ------------------------------------------------------------------
    same_size_jobs: dict[float, list[int]] = {}
    for job_id, machine in schedule.assignment.items():
        job = instance.job(job_id)
        same_size_jobs.setdefault(size_key(job.size), []).append(job_id)

    for job_id, machine, size in conflicts:
        bag = instance.job(job_id).bag
        # The machine currently holds two jobs of `bag` (the conflict);
        # search for a same-size job on another machine that can trade places.
        partner: int | None = None
        for candidate_id in same_size_jobs.get(size, []):
            if candidate_id == job_id:
                continue
            candidate_machine = schedule.machine_of(candidate_id)
            if candidate_machine is None or candidate_machine == machine:
                continue
            candidate_bag = instance.job(candidate_id).bag
            if bag in machine_bags[candidate_machine]:
                continue  # moving our job there would conflict again
            if candidate_bag == bag or candidate_bag in machine_bags[machine]:
                # After the swap the conflict machine still holds its other
                # job of `bag`, so the partner must come from a bag not yet
                # present on that machine.
                continue
            partner = candidate_id
            break
        if partner is not None:
            partner_machine = schedule.machine_of(partner)
            assert partner_machine is not None
            partner_bag = instance.job(partner).bag
            schedule.swap(job_id, partner)
            # The conflict machine keeps its other job of `bag`, gains the
            # partner's bag; the partner's machine gains `bag` and may or may
            # not keep the partner's bag (other jobs of that bag untouched).
            machine_bags[machine].add(partner_bag)
            machine_bags[partner_machine].add(bag)
            machine_bags[partner_machine] = {
                instance.job(jid).bag
                for jid, m in schedule.assignment.items()
                if m == partner_machine
            }
            placement.swaps += 1
        else:
            # Defensive relocation (never needed under the theory constants):
            # move the conflicting job to the least-loaded machine without
            # its bag.  This may exceed the pattern height of that machine
            # but keeps the schedule feasible.
            loads = schedule.loads()
            candidates = [
                m
                for m in range(num_machines)
                if m != machine and bag not in machine_bags[m]
            ]
            if not candidates:
                raise AlgorithmError(
                    f"cannot repair conflict for job {job_id}: every machine "
                    f"already holds a job of bag {bag}"
                )
            target = min(candidates, key=lambda m: loads[m])
            schedule.assign(job_id, target)
            # The conflict machine keeps its other job of `bag`, so its bag
            # set is unchanged; the target machine gains `bag`.
            machine_bags[target].add(bag)
            placement.fallback_moves += 1

    return placement
