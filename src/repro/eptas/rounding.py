"""Scaling and geometric rounding (Section 2 of the paper).

The EPTAS guesses the optimal makespan ``T_guess`` (binary search), scales
the instance so that the guess becomes ``1`` and rounds every job size *up*
to the next power of ``1 + eps``.  Rounding up means any schedule of the
rounded instance is also a schedule of the original one with the same or a
smaller makespan, and the optimum of the rounded instance is at most
``(1 + eps)`` times the original optimum.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.instance import Instance

__all__ = ["RoundedInstance", "round_up_to_power", "round_instance", "scale_and_round"]


def round_up_to_power(size: float, eps: float) -> float:
    """Round ``size`` up to the next power of ``1 + eps`` (sizes <= 0 stay 0).

    A small relative tolerance keeps sizes that already *are* powers of
    ``1 + eps`` unchanged instead of being pushed a full step up by floating
    point noise.
    """
    if size <= 0:
        return 0.0
    base = 1.0 + eps
    exponent = math.log(size, base)
    rounded_exponent = math.ceil(exponent - 1e-9)
    value = base**rounded_exponent
    # Guard against the value dipping below the original size due to
    # floating point error in the power computation.
    while value < size - 1e-15:
        rounded_exponent += 1
        value = base**rounded_exponent
    return value


@dataclass(frozen=True, slots=True)
class RoundedInstance:
    """A scaled-and-rounded instance together with its provenance.

    ``instance`` has every size equal to a power of ``1 + eps``; ``scale``
    is the factor original sizes were multiplied with (``1 / T_guess``), so
    multiplying a makespan of ``instance`` by ``1 / scale`` converts it back
    to the original units.  Assignments transfer verbatim because job
    identifiers are preserved.
    """

    instance: Instance
    original: Instance
    eps: float
    scale: float

    def to_original_makespan(self, makespan: float) -> float:
        """Convert a makespan measured in scaled units back to original units."""
        return makespan / self.scale


def round_instance(instance: Instance, eps: float) -> Instance:
    """Round every job size of an instance up to a power of ``1 + eps``."""
    return instance.with_jobs(
        (job.with_size(round_up_to_power(job.size, eps)) for job in instance.jobs),
        name=f"{instance.name}#rounded",
    )


def scale_and_round(instance: Instance, eps: float, makespan_guess: float) -> RoundedInstance:
    """Scale so the guessed optimum becomes 1, then round sizes geometrically.

    Raises ``ValueError`` for a non-positive guess: the binary search always
    works with strictly positive guesses (the lower bound of a non-empty
    instance is positive).
    """
    if makespan_guess <= 0:
        raise ValueError(f"makespan guess must be positive, got {makespan_guess}")
    scale = 1.0 / makespan_guess
    scaled = instance.scaled(scale, name=f"{instance.name}#scaled")
    rounded = round_instance(scaled, eps)
    return RoundedInstance(instance=rounded, original=instance, eps=eps, scale=scale)
