"""EPTAS parameters and the derived constants of the paper.

The accuracy parameter ``eps`` drives every constant of the algorithm:

* ``T = 1 + 2*eps + eps**2`` — the makespan budget of the modified instance
  (Section 2.2): rounding costs a factor ``1 + eps`` and the transformation
  another, so the guessed optimum ``1`` becomes at most ``(1 + eps)**2 = T``.
* ``k`` — the medium-job window exponent of Lemma 1 (instance dependent).
* ``q = floor(T / eps**(k+1))`` — the maximum number of medium-or-large jobs
  a machine can hold within budget ``T`` (every such job has size at least
  ``eps**(k+1)``).
* ``d`` — the number of distinct large job sizes after geometric rounding
  (at most ``O(log_{1+eps}(1/eps**k))``; the instance-derived value is used
  whenever an instance is at hand).
* ``b' = (d*q + 1) * q`` — Definition 2: per large size, the first ``b'``
  bags in the size-restricted ordering are *priority* bags.

``ConstantsMode`` selects between the paper's formulas (``theory``) and a
capped *practical* mode: the theory values of ``b'`` and the MILP pattern
budget grow astronomically for realistic ``eps`` (this is exactly the point
of experiment E7), so the practical mode clamps ``b'`` at a configurable cap.
Clamping only moves bags from the priority group to the non-priority group;
all feasibility-repair machinery still runs, and the final schedule is always
validated.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field, replace
from typing import Any

from ..solver.registry import BackendSpec

__all__ = [
    "ConstantsMode",
    "EptasConfig",
    "DerivedConstants",
    "normalise_eps",
    "derive_constants",
    "theory_constants_report",
]


class ConstantsMode(enum.Enum):
    """Which constants the EPTAS uses for the priority-bag cut-off."""

    THEORY = "theory"
    PRACTICAL = "practical"


def normalise_eps(eps: float) -> float:
    """Clamp ``eps`` so that ``1/eps`` is a positive integer (paper Section 2).

    The paper assumes ``1/eps`` integral without loss of generality; we round
    ``1/eps`` *up* so the returned value never exceeds the requested one
    (the guarantee only improves).
    """
    if not 0 < eps <= 1:
        raise ValueError(f"eps must lie in (0, 1], got {eps}")
    return 1.0 / math.ceil(1.0 / eps - 1e-12)


@dataclass(frozen=True, slots=True)
class EptasConfig:
    """User-facing configuration of the EPTAS driver.

    Attributes
    ----------
    eps:
        Target accuracy; the returned makespan is at most
        ``(1 + O(eps)) * OPT`` (the constant inside the O is measured by
        experiment E2).
    mode:
        ``ConstantsMode.PRACTICAL`` (default) caps the priority-bag constant
        ``b'`` at ``practical_priority_cap``; ``ConstantsMode.THEORY`` uses
        the paper's formula ``b' = (d*q + 1) * q``.
    practical_priority_cap:
        Cap on ``b'`` per large size in practical mode.
    max_patterns:
        Hard limit on the number of enumerated machine configurations; the
        driver raises :class:`~repro.core.errors.SolverLimitError` beyond it.
    milp_backend / milp_time_limit / mip_rel_gap:
        Passed to the :class:`repro.solver.SolverService`.  ``milp_backend``
        accepts a backend name or a :class:`repro.solver.BackendSpec` and is
        validated against the backend registry *at construction*, so an
        unknown backend fails immediately instead of deep inside the first
        solve after transformation work has already been spent.
    speculative_guesses:
        When > 1 and a subprocess solver pool is installed
        (:func:`repro.solver.pooled_service_scope`), each binary-search step
        evaluates up to this many candidate makespan guesses concurrently:
        the per-guess configuration MILPs are batched through
        ``SolverService.solve_many`` and overlap on the solver servers.
    max_search_iterations:
        Cap on the dual-approximation binary search length.
    binary_search_tol:
        Relative width at which the binary search stops (defaults to
        ``eps / 8`` when ``None``).
    validate_intermediate:
        Validate intermediate partial schedules (slower; on for tests).
    use_lp_lower_bound:
        Also compute the LP relaxation lower bound for the initial bracket.
    """

    eps: float = 0.5
    mode: ConstantsMode = ConstantsMode.PRACTICAL
    practical_priority_cap: int = 3
    max_patterns: int = 50_000
    milp_backend: str | BackendSpec = "scipy"
    milp_time_limit: float | None = 60.0
    mip_rel_gap: float = 0.0
    speculative_guesses: int = 1
    max_search_iterations: int = 40
    binary_search_tol: float | None = None
    validate_intermediate: bool = False
    use_lp_lower_bound: bool = False

    def __post_init__(self) -> None:
        # Fail fast: coerce + validate the backend spec against the registry
        # now, not inside the first solve (the dataclass is frozen, hence
        # object.__setattr__).
        object.__setattr__(self, "milp_backend", BackendSpec.coerce(self.milp_backend))
        if self.speculative_guesses < 1:
            raise ValueError(
                f"speculative_guesses must be >= 1, got {self.speculative_guesses}"
            )

    @property
    def backend_spec(self) -> BackendSpec:
        """The validated backend spec (``milp_backend`` after coercion)."""
        assert isinstance(self.milp_backend, BackendSpec)
        return self.milp_backend

    def normalised(self) -> "EptasConfig":
        """Return a copy with ``eps`` normalised so ``1/eps`` is integral."""
        return replace(self, eps=normalise_eps(self.eps))

    def to_dict(self) -> dict[str, Any]:
        return {
            "eps": self.eps,
            "mode": self.mode.value,
            "practical_priority_cap": self.practical_priority_cap,
            "max_patterns": self.max_patterns,
            "milp_backend": self.backend_spec.to_dict(),
            "milp_time_limit": self.milp_time_limit,
            "mip_rel_gap": self.mip_rel_gap,
            "speculative_guesses": self.speculative_guesses,
            "max_search_iterations": self.max_search_iterations,
        }


@dataclass(frozen=True, slots=True)
class DerivedConstants:
    """The paper's derived constants for one (eps, k, d) combination."""

    eps: float
    k: int
    budget: float  # T = 1 + 2 eps + eps^2
    q: int  # max medium-or-large jobs per machine within budget
    num_large_sizes: int  # d
    num_medium_sizes: int  # d_m
    priority_bags_per_size: int  # b' (after any practical cap)
    theory_priority_bags_per_size: int  # the uncapped (d q + 1) q
    small_integral_threshold: float  # eps^{2k+11}: smaller y vars stay fractional
    large_threshold: float  # eps^k
    medium_threshold: float  # eps^{k+1}
    large_bag_threshold: float  # eps * m jobs (filled in per instance, 0 if unknown)

    def to_dict(self) -> dict[str, Any]:
        return {
            "eps": self.eps,
            "k": self.k,
            "budget": self.budget,
            "q": self.q,
            "num_large_sizes": self.num_large_sizes,
            "num_medium_sizes": self.num_medium_sizes,
            "priority_bags_per_size": self.priority_bags_per_size,
            "theory_priority_bags_per_size": self.theory_priority_bags_per_size,
            "small_integral_threshold": self.small_integral_threshold,
            "large_threshold": self.large_threshold,
            "medium_threshold": self.medium_threshold,
            "large_bag_threshold": self.large_bag_threshold,
        }


def _count_geometric_sizes(eps: float, lower: float, upper: float) -> int:
    """Number of powers of ``1 + eps`` in the half-open interval ``[lower, upper]``.

    Used for the theory-mode estimate of ``d`` (large sizes) and ``d_m``
    (medium sizes) when no instance is given.
    """
    if lower <= 0 or upper < lower:
        return 0
    return int(math.floor(math.log(upper / lower, 1.0 + eps))) + 1


def derive_constants(
    eps: float,
    k: int,
    *,
    num_large_sizes: int | None = None,
    num_medium_sizes: int | None = None,
    mode: ConstantsMode = ConstantsMode.PRACTICAL,
    practical_priority_cap: int = 3,
    num_machines: int | None = None,
) -> DerivedConstants:
    """Compute the paper's derived constants.

    ``num_large_sizes`` / ``num_medium_sizes`` default to the worst-case
    geometric estimates; pass the instance-derived counts when available (the
    priority-bag constant then matches the instance the MILP actually sees).
    """
    eps = normalise_eps(eps)
    if k < 1:
        raise ValueError(f"the Lemma-1 parameter k must be >= 1, got {k}")
    budget = 1.0 + 2.0 * eps + eps * eps
    large_threshold = eps**k
    medium_threshold = eps ** (k + 1)
    q = max(1, int(math.floor(budget / medium_threshold + 1e-9)))
    d = (
        num_large_sizes
        if num_large_sizes is not None
        else _count_geometric_sizes(eps, large_threshold, budget)
    )
    d_m = (
        num_medium_sizes
        if num_medium_sizes is not None
        else _count_geometric_sizes(eps, medium_threshold, large_threshold)
    )
    theory_bprime = (d * q + 1) * q
    if mode is ConstantsMode.THEORY:
        bprime = theory_bprime
    else:
        bprime = min(theory_bprime, max(1, practical_priority_cap))
    return DerivedConstants(
        eps=eps,
        k=k,
        budget=budget,
        q=q,
        num_large_sizes=d,
        num_medium_sizes=d_m,
        priority_bags_per_size=bprime,
        theory_priority_bags_per_size=theory_bprime,
        small_integral_threshold=eps ** (2 * k + 11),
        large_threshold=large_threshold,
        medium_threshold=medium_threshold,
        large_bag_threshold=(eps * num_machines) if num_machines else 0.0,
    )


def theory_constants_report(eps: float) -> dict[str, Any]:
    """Worst-case sizes of the MILP as functions of ``eps`` alone (Lemma 6).

    Reproduces the quantities the proof of Lemma 6 tracks: the number of
    priority bags ``|A|``, the number of pattern entry types, the pattern
    count bound ``(d_m * (|A| + 1))**q`` and the resulting bound on the
    number of integral variables.  Returned as plain floats (they overflow
    any practical budget very quickly — that is the point of experiment E7).
    """
    eps = normalise_eps(eps)
    # Worst case k = 1/eps^2 maximises the constants; report k = 1 and the
    # worst case so the growth is visible on both ends.
    report: dict[str, Any] = {"eps": eps}
    for label, k in (("k=1", 1), ("k=worst", max(1, int(round(1.0 / eps**2))))):
        constants = derive_constants(eps, k, mode=ConstantsMode.THEORY)
        num_priority = constants.num_large_sizes * constants.theory_priority_bags_per_size
        entry_types = constants.num_medium_sizes * (num_priority + 1)
        log_patterns = constants.q * math.log10(max(entry_types, 1) + 1)
        report[label] = {
            "q": constants.q,
            "d": constants.num_large_sizes,
            "b_prime": constants.theory_priority_bags_per_size,
            "priority_bags": num_priority,
            "pattern_entry_types": entry_types,
            "log10_pattern_bound": log_patterns,
        }
    return report
