"""Machine configurations ("patterns") for the MILP of Section 3.

A pattern (Definition 3) is a multiset of slots for medium and large jobs.
Each slot is either dedicated to a *priority* bag ``B_l`` and a size ``s``
(at most one slot per priority bag per pattern) or it is a wildcard slot
``B_x^s`` reserved for a job of size ``s`` from *any* non-priority bag
(arbitrarily many wildcard slots are allowed).  A pattern is valid when its
total height is at most the budget ``T = 1 + 2*eps + eps**2`` and it has at
most ``q`` slots.

The enumerator below additionally prunes patterns that could never be used
because a slot type would need more jobs than the instance possesses; this
pruning never removes patterns needed by the Lemma-5 feasibility argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from ..core.errors import SolverLimitError
from ..core.instance import Instance
from .classification import BagClasses, JobClasses, SIZE_TOL

__all__ = [
    "PatternEntry",
    "Pattern",
    "PatternSet",
    "size_key",
    "collect_entry_types",
    "enumerate_patterns",
]

#: Bag marker used for the wildcard ("B_x") slots of non-priority bags.
WILDCARD_BAG = -1


def size_key(size: float) -> float:
    """Canonical float key for a (rounded) size, robust to tiny FP noise."""
    return round(float(size), 12)


@dataclass(frozen=True, slots=True)
class PatternEntry:
    """One slot type: a job size plus either a priority bag or the wildcard."""

    size: float
    bag: int  # priority bag index, or WILDCARD_BAG

    @property
    def is_wildcard(self) -> bool:
        return self.bag == WILDCARD_BAG

    def label(self) -> str:
        target = "x" if self.is_wildcard else str(self.bag)
        return f"B^{self.size:g}_{target}"


@dataclass(frozen=True, slots=True)
class Pattern:
    """A valid machine configuration: slot types with multiplicities."""

    entries: tuple[tuple[PatternEntry, int], ...]
    height: float
    num_slots: int

    def count_of(self, entry: PatternEntry) -> int:
        for candidate, count in self.entries:
            if candidate == entry:
                return count
        return 0

    def uses_bag(self, bag: int) -> bool:
        """The paper's ``chi_p(B_l)`` for priority bags (wildcards never count)."""
        return any(
            entry.bag == bag and not entry.is_wildcard for entry, _ in self.entries
        )

    def wildcard_slots(self) -> dict[float, int]:
        """Mapping ``size -> number of wildcard slots of that size``."""
        return {
            entry.size: count for entry, count in self.entries if entry.is_wildcard
        }

    def priority_slots(self) -> dict[tuple[int, float], int]:
        """Mapping ``(priority bag, size) -> slot count`` (0 or 1 per bag)."""
        return {
            (entry.bag, entry.size): count
            for entry, count in self.entries
            if not entry.is_wildcard
        }

    def label(self) -> str:
        if not self.entries:
            return "<empty>"
        return " + ".join(
            f"{count}x{entry.label()}" for entry, count in self.entries
        )


@dataclass(frozen=True, slots=True)
class PatternSet:
    """All enumerated patterns plus the entry-type universe."""

    patterns: tuple[Pattern, ...]
    entry_types: tuple[tuple[PatternEntry, int], ...]  # (entry, available jobs)
    budget: float
    max_slots: int

    def __len__(self) -> int:
        return len(self.patterns)

    def summary(self) -> dict[str, float | int]:
        return {
            "num_patterns": len(self.patterns),
            "num_entry_types": len(self.entry_types),
            "budget": self.budget,
            "max_slots": self.max_slots,
        }


def collect_entry_types(
    instance: Instance,
    job_classes: JobClasses,
    bag_classes: BagClasses,
) -> list[tuple[PatternEntry, int]]:
    """Build the slot-type universe of the transformed instance.

    * one entry per (priority bag, distinct medium-or-large size present in
      that bag), available count = number of such jobs;
    * one wildcard entry per distinct large size present in non-priority
      bags (after the transformation these are exactly the companion bags),
      available count = total number of such jobs.
    """
    priority_counts: dict[tuple[int, float], int] = {}
    wildcard_counts: dict[float, int] = {}
    for job in instance.jobs:
        if job.id in job_classes.small:
            continue
        key_size = size_key(job.size)
        if job.bag in bag_classes.priority:
            priority_counts[(job.bag, key_size)] = (
                priority_counts.get((job.bag, key_size), 0) + 1
            )
        else:
            # After the transformation non-priority bags hold no medium jobs;
            # defensive inclusion keeps the enumerator correct even when it
            # is used on untransformed instances (e.g. in unit tests).
            wildcard_counts[key_size] = wildcard_counts.get(key_size, 0) + 1

    entry_types: list[tuple[PatternEntry, int]] = []
    for (bag, size), count in sorted(priority_counts.items()):
        entry_types.append((PatternEntry(size=size, bag=bag), count))
    for size, count in sorted(wildcard_counts.items()):
        entry_types.append((PatternEntry(size=size, bag=WILDCARD_BAG), count))
    # Large slots first makes the DFS prune earlier (capacity fills faster).
    entry_types.sort(key=lambda item: (-item[0].size, item[0].bag))
    return entry_types


def enumerate_patterns(
    entry_types: Iterable[tuple[PatternEntry, int]],
    *,
    budget: float,
    max_slots: int,
    max_patterns: int = 50_000,
    num_machines: int | None = None,
) -> PatternSet:
    """Enumerate every valid pattern over the given entry types.

    Multiplicity rules: priority entries appear at most once per pattern and
    at most one entry per priority bag; wildcard entries may repeat up to the
    number of available jobs of that size (and up to ``max_slots``).  The
    empty pattern is always included (machines may carry only small jobs).

    Raises :class:`SolverLimitError` when more than ``max_patterns`` patterns
    would be produced.
    """
    entries = list(entry_types)
    patterns: list[Pattern] = []
    current_counts: list[int] = [0] * len(entries)

    def emit(height: float, slots: int) -> None:
        if len(patterns) >= max_patterns:
            raise SolverLimitError(
                f"pattern enumeration exceeded max_patterns={max_patterns}; "
                "increase the limit or use a larger eps"
            )
        chosen = tuple(
            (entries[index][0], count)
            for index, count in enumerate(current_counts)
            if count > 0
        )
        patterns.append(Pattern(entries=chosen, height=height, num_slots=slots))

    def recurse(start: int, height: float, slots: int, used_bags: frozenset[int]) -> None:
        emit(height, slots)
        for index in range(start, len(entries)):
            entry, available = entries[index]
            if available <= 0:
                continue
            if not entry.is_wildcard and entry.bag in used_bags:
                continue
            if slots >= max_slots:
                continue
            if height + entry.size > budget + SIZE_TOL:
                continue
            if entry.is_wildcard:
                # Take 1..limit copies of the wildcard slot.
                limit = min(available, max_slots - slots)
                if num_machines is not None:
                    limit = min(limit, max_slots)
                taken = 0
                added_height = 0.0
                while taken < limit and height + added_height + entry.size <= budget + SIZE_TOL:
                    taken += 1
                    added_height += entry.size
                    current_counts[index] = taken
                    recurse(
                        index + 1,
                        height + added_height,
                        slots + taken,
                        used_bags,
                    )
                current_counts[index] = 0
            else:
                current_counts[index] = 1
                recurse(
                    index + 1,
                    height + entry.size,
                    slots + 1,
                    used_bags | {entry.bag},
                )
                current_counts[index] = 0

    recurse(0, 0.0, 0, frozenset())
    return PatternSet(
        patterns=tuple(patterns),
        entry_types=tuple(entries),
        budget=budget,
        max_slots=max_slots,
    )
