"""The configuration MILP of Section 3 (constraints (1)–(9)).

Integer variables ``x_p`` count the machines running pattern ``p``;
variables ``y_p^{B_l^s}`` describe how many small jobs of bag ``B_l`` and
size ``s`` are placed on top of pattern ``p``.  Only the ``y`` variables of
priority bags with size above ``eps**(2k+11)`` are integral — all other
``y`` variables stay fractional, which is what keeps the integral dimension
independent of the number of bags (the paper's core idea).

The module builds the model with :class:`repro.milp.LinearModel`, solves it
with the configured backend and returns a structured
:class:`ConfigurationSolution` that the placement stages consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..core.instance import Instance
from ..milp import LinearModel, MilpSolution, SolutionStatus
from ..solver import SolveRequest, get_solver_service
from .classification import BagClasses, JobClasses, SIZE_TOL
from .params import DerivedConstants, EptasConfig
from .patterns import Pattern, PatternSet, size_key

__all__ = [
    "SmallClass",
    "ConfigurationModel",
    "ConfigurationSolution",
    "build_configuration_milp",
    "configuration_solve_request",
    "interpret_milp_solution",
    "solve_configuration_milp",
    "solve_configuration_milps",
]


@dataclass(frozen=True, slots=True)
class SmallClass:
    """A size-restricted bag of small jobs: bag index, size, member job ids."""

    bag: int
    size: float
    job_ids: tuple[int, ...]

    @property
    def count(self) -> int:
        return len(self.job_ids)


@dataclass(slots=True)
class ConfigurationModel:
    """The assembled MILP plus the bookkeeping needed to interpret solutions."""

    model: LinearModel
    patterns: PatternSet
    small_classes: tuple[SmallClass, ...]
    budget: float
    # Variable-name helpers.
    x_name: Mapping[int, str]
    y_name: Mapping[tuple[int, int, float], str]

    def summary(self) -> dict[str, int | float]:
        data = dict(self.model.summary())
        data.update(self.patterns.summary())
        data["small_classes"] = len(self.small_classes)
        return data


@dataclass(slots=True)
class ConfigurationSolution:
    """Interpreted MILP solution.

    ``pattern_machines[p]`` is the number of machines assigned pattern index
    ``p``; ``small_assignment[(p, bag, size)]`` the (possibly fractional)
    number of small jobs of that class placed on top of pattern ``p``.
    """

    feasible: bool
    status: SolutionStatus
    pattern_machines: dict[int, int] = field(default_factory=dict)
    small_assignment: dict[tuple[int, int, float], float] = field(default_factory=dict)
    objective: float = 0.0
    model_summary: dict[str, int | float] = field(default_factory=dict)
    milp_diagnostics: dict[str, object] = field(default_factory=dict)


def _collect_small_classes(
    instance: Instance, job_classes: JobClasses
) -> tuple[SmallClass, ...]:
    """Group the small jobs by (bag, size)."""
    groups: dict[tuple[int, float], list[int]] = {}
    for job in instance.jobs:
        if job.id not in job_classes.small:
            continue
        groups.setdefault((job.bag, size_key(job.size)), []).append(job.id)
    return tuple(
        SmallClass(bag=bag, size=size, job_ids=tuple(sorted(ids)))
        for (bag, size), ids in sorted(groups.items())
    )


def build_configuration_milp(
    instance: Instance,
    job_classes: JobClasses,
    bag_classes: BagClasses,
    constants: DerivedConstants,
    patterns: PatternSet,
    *,
    config: EptasConfig,
) -> ConfigurationModel:
    """Assemble the MILP (1)–(9) for the transformed instance."""
    budget = constants.budget
    model = LinearModel(f"eptas-{instance.name}")
    small_classes = _collect_small_classes(instance, job_classes)

    # --- x variables: machines per pattern (constraint (6)). -----------
    x_name: dict[int, str] = {}
    for index, pattern in enumerate(patterns.patterns):
        name = f"x_{index}"
        x_name[index] = name
        # Objective: any feasible solution certifies the makespan bound, so
        # the objective is a free practical tie-breaker.  The squared pattern
        # height steers the solver towards *balanced* large-job placements
        # (stacking two large jobs costs more than spreading them), which
        # tightens the constructed schedule without affecting the guarantee.
        model.add_variable(
            name, integer=True, lower=0.0, objective=pattern.height * pattern.height
        )

    # --- y variables (constraints (7), (8), (9)). -----------------------
    # Only create y_{p, class} when the pattern leaves room for the size and
    # the pattern does not already use the bag (constraint (5) would force
    # the variable to zero anyway) — this keeps the model compact without
    # excluding any solution the Lemma-5 construction might need.
    y_name: dict[tuple[int, int, float], str] = {}
    threshold = constants.small_integral_threshold
    for index, pattern in enumerate(patterns.patterns):
        headroom = budget - pattern.height + SIZE_TOL
        for small in small_classes:
            if small.size > headroom:
                continue
            if small.bag in bag_classes.priority and pattern.uses_bag(small.bag):
                continue
            name = f"y_{index}_{small.bag}_{small.size:.12g}"
            y_name[(index, small.bag, small.size)] = name
            integral = small.bag in bag_classes.priority and small.size > threshold
            model.add_variable(name, integer=integral, lower=0.0)

    # --- (1) at most m machines. ----------------------------------------
    model.add_le(
        "machines",
        {x_name[index]: 1.0 for index in range(len(patterns.patterns))},
        float(instance.num_machines),
    )

    # --- (2) cover every medium/large job. -------------------------------
    # Priority size-restricted bags.
    priority_requirements: dict[tuple[int, float], int] = {}
    wildcard_requirements: dict[float, int] = {}
    for entry, available in patterns.entry_types:
        if entry.is_wildcard:
            wildcard_requirements[entry.size] = available
        else:
            priority_requirements[(entry.bag, entry.size)] = available
    for (bag, size), required in sorted(priority_requirements.items()):
        coefficients: dict[str, float] = {}
        for index, pattern in enumerate(patterns.patterns):
            count = pattern.priority_slots().get((bag, size), 0)
            if count:
                coefficients[x_name[index]] = float(count)
        model.add_ge(f"cover_p_{bag}_{size:.12g}", coefficients, float(required))
    for size, required in sorted(wildcard_requirements.items()):
        coefficients = {}
        for index, pattern in enumerate(patterns.patterns):
            count = pattern.wildcard_slots().get(size, 0)
            if count:
                coefficients[x_name[index]] = float(count)
        model.add_ge(f"cover_x_{size:.12g}", coefficients, float(required))

    # --- (3) cover every small job. --------------------------------------
    for small in small_classes:
        coefficients = {
            y_name[(index, small.bag, small.size)]: 1.0
            for index in range(len(patterns.patterns))
            if (index, small.bag, small.size) in y_name
        }
        model.add_ge(
            f"cover_s_{small.bag}_{small.size:.12g}", coefficients, float(small.count)
        )

    # --- (4) area on top of a pattern fits the leftover budget. ----------
    for index, pattern in enumerate(patterns.patterns):
        coefficients = {}
        for small in small_classes:
            key = (index, small.bag, small.size)
            if key in y_name:
                coefficients[y_name[key]] = small.size
        coefficients[x_name[index]] = -(budget - pattern.height)
        model.add_le(f"area_{index}", coefficients, 0.0)

    # --- (5) at most x_p small jobs of a bag on pattern p, none if the
    #          pattern already carries the bag. ---------------------------
    bags_with_small = sorted({small.bag for small in small_classes})
    for index, pattern in enumerate(patterns.patterns):
        for bag in bags_with_small:
            keys = [
                (index, small.bag, small.size)
                for small in small_classes
                if small.bag == bag and (index, small.bag, small.size) in y_name
            ]
            if not keys:
                continue
            coefficients = {y_name[key]: 1.0 for key in keys}
            uses = 1 if (bag in bag_classes.priority and pattern.uses_bag(bag)) else 0
            coefficients[x_name[index]] = -(1.0 - uses)
            model.add_le(f"bagcap_{index}_{bag}", coefficients, 0.0)

    return ConfigurationModel(
        model=model,
        patterns=patterns,
        small_classes=small_classes,
        budget=budget,
        x_name=x_name,
        y_name=y_name,
    )


def interpret_milp_solution(
    configuration: ConfigurationModel, solution: MilpSolution
) -> ConfigurationSolution:
    """Turn a raw backend solution into the structured configuration view."""
    summary = configuration.summary()
    diagnostics = dict(solution.diagnostics)
    if solution.telemetry is not None:
        diagnostics["telemetry"] = solution.telemetry.to_dict()
    if solution.status not in (SolutionStatus.OPTIMAL, SolutionStatus.FEASIBLE):
        return ConfigurationSolution(
            feasible=False,
            status=solution.status,
            model_summary=summary,
            milp_diagnostics=diagnostics,
        )

    pattern_machines: dict[int, int] = {}
    for index, name in configuration.x_name.items():
        value = int(round(solution.value(name)))
        if value > 0:
            pattern_machines[index] = value
    small_assignment: dict[tuple[int, int, float], float] = {}
    for key, name in configuration.y_name.items():
        value = solution.value(name)
        if value > 1e-9:
            small_assignment[key] = float(value)
    return ConfigurationSolution(
        feasible=True,
        status=solution.status,
        pattern_machines=pattern_machines,
        small_assignment=small_assignment,
        objective=solution.objective,
        model_summary=summary,
        milp_diagnostics=diagnostics,
    )


def configuration_solve_request(
    configuration: ConfigurationModel, config: EptasConfig
) -> SolveRequest:
    """The service request one configuration MILP solve corresponds to."""
    return SolveRequest(
        model=configuration.model,
        spec=config.backend_spec,
        time_limit=config.milp_time_limit,
        mip_rel_gap=config.mip_rel_gap,
        tag=configuration.model.name,
    )


def solve_configuration_milp(
    configuration: ConfigurationModel, *, config: EptasConfig
) -> ConfigurationSolution:
    """Solve the configuration MILP through the current solver service."""
    request = configuration_solve_request(configuration, config)
    solution = get_solver_service().solve(
        request.model,
        spec=request.spec,
        time_limit=request.time_limit,
        mip_rel_gap=request.mip_rel_gap,
    )
    return interpret_milp_solution(configuration, solution)


def solve_configuration_milps(
    configurations: Sequence[ConfigurationModel], *, config: EptasConfig
) -> list[ConfigurationSolution]:
    """Solve several independent configuration MILPs as one batch.

    With a subprocess solver pool installed the solves overlap across the
    servers; otherwise they run sequentially inline.  Results preserve the
    input order either way.
    """
    solutions = get_solver_service().solve_many(
        [
            configuration_solve_request(configuration, config)
            for configuration in configurations
        ]
    )
    return [
        interpret_milp_solution(configuration, solution)
        for configuration, solution in zip(configurations, solutions)
    ]
