"""The instance transformation of Section 2.2 and its inverse (Lemmas 2–4).

For every *non-priority* bag ``B_l`` the transformation

* moves its large jobs into a fresh *companion* bag ``B'_l``,
* removes its medium jobs (they are re-inserted later, Lemma 3), and
* replaces every large and medium job inside ``B_l`` by a *filler job* of
  size ``p_max`` — the largest small-job size of ``B_l`` (``0`` when the bag
  has no small jobs).

After the transformation every non-priority bag contains only small jobs
(plus fillers) and every companion bag contains only large jobs, so the MILP
may schedule large and small jobs of those bags independently.  Lemma 2
bounds the optimum of the transformed instance by ``(1 + eps)`` times the
original optimum; Lemma 3 re-inserts the removed medium jobs through an
integral flow; Lemma 4 converts a solution of the transformed instance back
into a solution of the original instance by swapping conflicting small jobs
into filler positions and dropping the fillers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

from ..core.errors import AlgorithmError
from ..core.instance import Instance
from ..core.job import Job
from ..core.schedule import Schedule
from ..flows import AssignmentProblem, solve_bag_assignment
from .classification import BagClasses, JobClasses

__all__ = [
    "TransformationRecord",
    "transform_instance",
    "forward_transform_schedule",
    "reinsert_medium_jobs",
    "revert_to_original",
]


@dataclass(slots=True)
class TransformationRecord:
    """Everything needed to map solutions between ``I`` and ``I'``.

    Attributes
    ----------
    original:
        The (scaled, rounded) instance ``I`` the transformation started from.
    transformed:
        The modified instance ``I'``: non-priority bags hold small jobs and
        fillers, companion bags hold the large jobs, medium jobs of
        non-priority bags are absent.
    augmented:
        ``I'`` plus the removed medium jobs, re-attached to their companion
        bags.  Lemma 3 schedules exactly this job set.
    companion_bag:
        ``original bag index -> companion bag index`` (only for transformed
        non-priority bags).
    filler_for:
        ``filler job id -> original job id`` it stands in for.
    fillers_by_bag / removed_medium / moved_large:
        Per original non-priority bag: the filler job ids, the removed
        medium job ids and the large job ids moved to the companion bag.
    """

    original: Instance
    transformed: Instance
    augmented: Instance
    job_classes: JobClasses
    bag_classes: BagClasses
    companion_bag: dict[int, int] = field(default_factory=dict)
    companion_of: dict[int, int] = field(default_factory=dict)
    filler_for: dict[int, int] = field(default_factory=dict)
    fillers_by_bag: dict[int, list[int]] = field(default_factory=dict)
    removed_medium: dict[int, list[int]] = field(default_factory=dict)
    moved_large: dict[int, list[int]] = field(default_factory=dict)
    diagnostics: dict[str, int] = field(default_factory=dict)

    @property
    def num_filler_jobs(self) -> int:
        return len(self.filler_for)

    @property
    def num_removed_medium(self) -> int:
        return sum(len(ids) for ids in self.removed_medium.values())


def transform_instance(
    instance: Instance, job_classes: JobClasses, bag_classes: BagClasses
) -> TransformationRecord:
    """Apply the Section-2.2 transformation to a scaled and rounded instance."""
    next_job_id = max((job.id for job in instance.jobs), default=-1) + 1
    next_bag = max(instance.bag_indices, default=-1) + 1

    transformed_jobs: list[Job] = []
    augmented_extra: list[Job] = []
    companion_bag: dict[int, int] = {}
    companion_of: dict[int, int] = {}
    filler_for: dict[int, int] = {}
    fillers_by_bag: dict[int, list[int]] = {}
    removed_medium: dict[int, list[int]] = {}
    moved_large: dict[int, list[int]] = {}

    for bag, members in instance.bags().items():
        if bag in bag_classes.priority:
            transformed_jobs.extend(members)
            continue
        large = [job for job in members if job.id in job_classes.large]
        medium = [job for job in members if job.id in job_classes.medium]
        small = [job for job in members if job.id in job_classes.small]
        if not large and not medium:
            # Nothing to split: the bag already contains only small jobs.
            transformed_jobs.extend(members)
            continue
        p_max = max((job.size for job in small), default=0.0)
        companion = next_bag
        next_bag += 1
        companion_bag[bag] = companion
        companion_of[companion] = bag
        fillers_by_bag[bag] = []
        removed_medium[bag] = [job.id for job in medium]
        moved_large[bag] = [job.id for job in large]

        # Small jobs stay in the original bag untouched.
        transformed_jobs.extend(small)
        # Large jobs move to the companion bag (same id, same size).
        for job in large:
            transformed_jobs.append(job.with_bag(companion))
        # Every large and medium job leaves a filler of size p_max behind.
        for job in large + medium:
            filler = Job(
                id=next_job_id,
                size=p_max,
                bag=bag,
                meta={"filler_for": job.id},
            )
            next_job_id += 1
            transformed_jobs.append(filler)
            filler_for[filler.id] = job.id
            fillers_by_bag[bag].append(filler.id)
        # Medium jobs are removed from I' but re-appear in the augmented
        # instance attached to the companion bag (Lemma 3 schedules them).
        for job in medium:
            augmented_extra.append(job.with_bag(companion))

    transformed = Instance(
        transformed_jobs,
        instance.num_machines,
        name=f"{instance.name}#transformed",
        validate=False,
    )
    augmented = Instance(
        list(transformed_jobs) + augmented_extra,
        instance.num_machines,
        name=f"{instance.name}#augmented",
        validate=False,
    )
    return TransformationRecord(
        original=instance,
        transformed=transformed,
        augmented=augmented,
        job_classes=job_classes,
        bag_classes=bag_classes,
        companion_bag=companion_bag,
        companion_of=companion_of,
        filler_for=filler_for,
        fillers_by_bag=fillers_by_bag,
        removed_medium=removed_medium,
        moved_large=moved_large,
    )


def forward_transform_schedule(
    record: TransformationRecord, schedule: Schedule
) -> Schedule:
    """Lemma 2 construction: turn a solution of ``I`` into one of ``I'``.

    Original jobs keep their machine; each filler job is placed on the
    machine of the job it replaces.  Medium jobs of non-priority bags have no
    counterpart in ``I'`` and are simply dropped.  Used by tests to verify
    the ``(1 + eps) * C`` bound of Lemma 2 constructively.
    """
    assignment: dict[int, int] = {}
    for job in record.transformed.jobs:
        if job.id in record.filler_for:
            source = record.filler_for[job.id]
            machine = schedule.machine_of(source)
        else:
            machine = schedule.machine_of(job.id)
        if machine is None:
            raise AlgorithmError(
                f"forward transformation: job {job.id} (or its source) is "
                "unassigned in the input schedule"
            )
        assignment[job.id] = machine
    return Schedule(record.transformed, assignment)


def reinsert_medium_jobs(
    record: TransformationRecord, schedule: Schedule
) -> Schedule:
    """Lemma 3: add the removed medium jobs back via an integral flow.

    ``schedule`` must be a complete solution of ``record.transformed``.  The
    returned schedule is over ``record.augmented`` and places every removed
    medium job on a machine that carries no other job of its companion bag.
    The flow follows the paper's construction; a greedy completion handles
    any residual demand so the procedure always succeeds (the companion bag
    has at most ``m`` members, so a free machine always exists).
    """
    augmented = record.augmented
    num_machines = augmented.num_machines
    result = Schedule(augmented, schedule.assignment, allow_partial=True)

    pending = {
        bag: list(job_ids) for bag, job_ids in record.removed_medium.items() if job_ids
    }
    if not pending:
        return result

    # Machines free for a bag: no job of the companion bag assigned yet.
    machines_with_companion: dict[int, set[int]] = {bag: set() for bag in pending}
    for job_id, machine in result.assignment.items():
        job = augmented.job(job_id)
        original_bag = record.companion_of.get(job.bag)
        if original_bag in machines_with_companion:
            machines_with_companion[original_bag].add(machine)

    free_machines: dict[int, list[int]] = {
        bag: [m for m in range(num_machines) if m not in machines_with_companion[bag]]
        for bag in pending
    }

    # Even fractional spreading -> per-machine capacity ceil(sum_j x_ij).
    fractional_load = [0.0] * num_machines
    for bag, job_ids in pending.items():
        free = free_machines[bag]
        if not free:
            raise AlgorithmError(
                f"no machine is free of companion bag jobs for bag {bag}; "
                "the companion bag has more members than machines"
            )
        share = len(job_ids) / len(free)
        for machine in free:
            fractional_load[machine] += share
    capacities = {
        machine: int(math.ceil(fractional_load[machine] - 1e-9))
        for machine in range(num_machines)
    }

    problem = AssignmentProblem(
        demands={bag: len(job_ids) for bag, job_ids in pending.items()},
        machine_capacities=capacities,
        allowed={bag: free_machines[bag] for bag in pending},
    )
    flow_result = solve_bag_assignment(problem)

    placed_by_flow = 0
    occupied: dict[int, set[int]] = {bag: set(machines_with_companion[bag]) for bag in pending}
    for bag, machines in flow_result.assignment.items():
        job_ids = pending[bag]
        for machine, job_id in zip(machines, job_ids):
            result.assign(job_id, machine)
            occupied[bag].add(machine)
            placed_by_flow += 1
        pending[bag] = job_ids[len(machines):]

    # Greedy completion for any residual demand (only triggered when the
    # capacity rounding was too tight; correctness does not depend on it).
    fallback_placed = 0
    loads = result.loads()
    for bag, job_ids in pending.items():
        for job_id in job_ids:
            candidates = [
                machine
                for machine in range(num_machines)
                if machine not in occupied[bag]
            ]
            if not candidates:
                raise AlgorithmError(
                    f"cannot re-insert medium job {job_id}: every machine "
                    f"already holds a job of companion bag {record.companion_bag[bag]}"
                )
            machine = min(candidates, key=lambda m: loads[m])
            result.assign(job_id, machine)
            occupied[bag].add(machine)
            loads[machine] += augmented.job(job_id).size
            fallback_placed += 1

    record.diagnostics["medium_placed_by_flow"] = placed_by_flow
    record.diagnostics["medium_placed_by_fallback"] = fallback_placed
    return result


def revert_to_original(
    record: TransformationRecord, schedule: Schedule
) -> Schedule:
    """Lemma 4: map a solution of the augmented instance back to ``I``.

    Original jobs keep their machines; fillers are dropped.  Conflicts of the
    original instance (a small job sharing a machine with a large/medium job
    of the same original bag — the two were in different bags of ``I'``) are
    repaired by moving the small job into the position of an unused filler of
    its bag on a machine free of that bag.  The filler's size is at least the
    small job's size, so no machine load exceeds its load in the input
    schedule.
    """
    original = record.original
    augmented = record.augmented
    assignment: dict[int, int] = {}
    for job in original.jobs:
        machine = schedule.machine_of(job.id)
        if machine is None:
            raise AlgorithmError(
                f"revert: job {job.id} of the original instance is unassigned "
                "in the augmented solution"
            )
        assignment[job.id] = machine
    result = Schedule(original, assignment)

    swaps = 0
    fallback_moves = 0
    loads = result.loads()

    for bag in record.companion_bag:
        members = original.bag(bag)
        heavy_ids = {
            job.id
            for job in members
            if job.id in record.job_classes.medium_or_large
        }
        small_ids = [job.id for job in members if job.id not in heavy_ids]
        if not heavy_ids or not small_ids:
            continue
        heavy_machines = {result.machine_of(job_id) for job_id in heavy_ids}
        small_machine_of = {job_id: result.machine_of(job_id) for job_id in small_ids}

        # Fillers of this bag sitting on machines free of heavy bag jobs are
        # the available swap targets.
        available_fillers: list[tuple[int, int]] = []  # (machine, filler id)
        for filler_id in record.fillers_by_bag.get(bag, []):
            machine = schedule.machine_of(filler_id)
            if machine is None:
                continue
            if machine not in heavy_machines:
                available_fillers.append((machine, filler_id))

        bag_machines = set(heavy_machines) | set(small_machine_of.values())
        for job_id, machine in small_machine_of.items():
            if machine not in heavy_machines:
                continue
            # Conflict: small job shares a machine with a heavy job of its bag.
            target: int | None = None
            # Prefer an unused filler position on a machine that carries no
            # other job of this bag (the standard Lemma-4 swap).
            while available_fillers:
                candidate_machine, _ = available_fillers.pop()
                if candidate_machine not in bag_machines:
                    target = candidate_machine
                    swaps += 1
                    break
            if target is None:
                # Defensive fallback (the counting argument of Lemma 4 shows
                # a filler is always available; keep the schedule feasible
                # regardless of numerical corner cases).
                candidates = [
                    m
                    for m in range(original.num_machines)
                    if m not in bag_machines
                ]
                if not candidates:
                    raise AlgorithmError(
                        f"revert: no conflict-free machine available for job {job_id}"
                    )
                target = min(candidates, key=lambda m: loads[m])
                fallback_moves += 1
            size = original.job(job_id).size
            loads[machine] -= size
            loads[target] += size
            result.assign(job_id, target)
            bag_machines.add(target)

    record.diagnostics["revert_swaps"] = swaps
    record.diagnostics["revert_fallback_moves"] = fallback_moves
    return result
