"""Conflict resolution after small-job placement (Lemma 11).

The Lemma-7 swap moves large jobs of priority bags away from the machine the
MILP assigned them to; the small jobs of the same bag are still placed with
respect to the *original* patterns, so a small job may now share a machine
with a moved large job of its bag.  Lemma 11 resolves such a conflict by
walking the ``origin`` map (the machine each priority large job was assigned
to by the MILP): that origin machine cannot hold a small or medium job of the
bag (MILP constraint (5) / the pattern definition), it can only be blocked by
another large job, whose origin is followed next.  Injectivity of the origin
map guarantees termination on a free machine.

The implementation keeps the paper's strategy and adds a defensive fallback
(relocate the small job to the least loaded machine without the bag), so the
returned schedule is always conflict-free.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import AlgorithmError
from ..core.instance import Instance
from ..core.schedule import Schedule
from .classification import JobClasses

__all__ = ["RepairDiagnostics", "resolve_conflicts"]


@dataclass(slots=True)
class RepairDiagnostics:
    """Counters of the Lemma-11 repair stage."""

    conflicts_found: int = 0
    resolved_by_origin_chain: int = 0
    resolved_by_fallback: int = 0
    chain_steps: int = 0

    def to_dict(self) -> dict[str, int]:
        return {
            "conflicts_found": self.conflicts_found,
            "resolved_by_origin_chain": self.resolved_by_origin_chain,
            "resolved_by_fallback": self.resolved_by_fallback,
            "chain_steps": self.chain_steps,
        }


def _machine_bag_map(instance: Instance, schedule: Schedule) -> list[set[int]]:
    machine_bags: list[set[int]] = [set() for _ in range(instance.num_machines)]
    for job_id, machine in schedule.assignment.items():
        machine_bags[machine].add(instance.job(job_id).bag)
    return machine_bags


def resolve_conflicts(
    instance: Instance,
    schedule: Schedule,
    job_classes: JobClasses,
    origin: dict[int, int],
) -> RepairDiagnostics:
    """Remove every remaining bag conflict from the schedule (in place).

    ``origin`` maps priority large/medium job ids to the machine the MILP
    placed them on (recorded by the large-job placement stage).  For every
    conflict the smaller job of the pair is moved: first along the Lemma-11
    origin chain, then — if the chain cannot be followed, e.g. because the
    conflict did not arise from a Lemma-7 swap — to the least loaded machine
    that has no job of the bag.
    """
    diagnostics = RepairDiagnostics()
    machine_bags = _machine_bag_map(instance, schedule)
    loads = schedule.loads().tolist()

    # Iterate until no conflicts remain; each iteration strictly reduces the
    # number of (machine, bag) pairs with multiplicity >= 2, so this loop
    # terminates after at most one pass per conflict.
    safety = instance.num_jobs * 2 + 10
    while safety > 0:
        safety -= 1
        conflicts = schedule.conflicts()
        if not conflicts:
            break
        conflict = conflicts[0]
        diagnostics.conflicts_found += 1
        job_a = instance.job(conflict.job_a)
        job_b = instance.job(conflict.job_b)
        # Move the smaller of the two jobs (ties: the higher id).
        mover = job_a if (job_a.size, -job_a.id) < (job_b.size, -job_b.id) else job_b
        stayer = job_b if mover is job_a else job_a
        bag = mover.bag
        machine = conflict.machine

        target: int | None = None
        # Lemma-11 origin chain, started from the heavy job of the pair.
        visited: set[int] = {machine}
        chain_job = stayer
        while chain_job is not None and chain_job.id in origin:
            candidate = origin[chain_job.id]
            diagnostics.chain_steps += 1
            if candidate in visited:
                break
            visited.add(candidate)
            blockers = [
                job_id
                for job_id, assigned in schedule.assignment.items()
                if assigned == candidate and instance.job(job_id).bag == bag
            ]
            if not blockers:
                target = candidate
                break
            blocker = instance.job(blockers[0])
            if blocker.id in job_classes.small:
                # A small job of the bag on the origin machine contradicts
                # MILP constraint (5); fall back rather than loop.
                break
            chain_job = blocker
        if target is not None:
            diagnostics.resolved_by_origin_chain += 1
        else:
            candidates = [
                m
                for m in range(instance.num_machines)
                if m != machine and bag not in machine_bags[m]
            ]
            if not candidates:
                raise AlgorithmError(
                    f"cannot resolve conflict for bag {bag}: every machine "
                    "already holds a job of that bag"
                )
            target = min(candidates, key=lambda m: loads[m])
            diagnostics.resolved_by_fallback += 1

        schedule.assign(mover.id, target)
        loads[machine] -= mover.size
        loads[target] += mover.size
        machine_bags[target].add(bag)
        machine_bags[machine] = {
            instance.job(job_id).bag
            for job_id, assigned in schedule.assignment.items()
            if assigned == machine
        }
    else:  # pragma: no cover - defensive
        raise AlgorithmError("conflict repair did not terminate")

    return diagnostics
