"""The paper's EPTAS for machine scheduling with bag-constraints (Theorem 1)."""

from .params import (
    ConstantsMode,
    DerivedConstants,
    EptasConfig,
    derive_constants,
    normalise_eps,
    theory_constants_report,
)
from .rounding import RoundedInstance, round_instance, round_up_to_power, scale_and_round
from .classification import (
    BagClasses,
    JobClasses,
    classify_bags,
    classify_jobs,
    compute_k,
)
from .transformation import (
    TransformationRecord,
    forward_transform_schedule,
    reinsert_medium_jobs,
    revert_to_original,
    transform_instance,
)
from .patterns import (
    Pattern,
    PatternEntry,
    PatternSet,
    collect_entry_types,
    enumerate_patterns,
)
from .milp import (
    ConfigurationModel,
    ConfigurationSolution,
    build_configuration_milp,
    solve_configuration_milp,
)
from .large_jobs import LargePlacement, place_large_and_medium
from .small_jobs import SmallPlacementDiagnostics, place_small_jobs
from .repair import RepairDiagnostics, resolve_conflicts
from .driver import AttemptReport, eptas_schedule, solve_for_guess

__all__ = [
    "AttemptReport",
    "BagClasses",
    "ConfigurationModel",
    "ConfigurationSolution",
    "ConstantsMode",
    "DerivedConstants",
    "EptasConfig",
    "JobClasses",
    "LargePlacement",
    "Pattern",
    "PatternEntry",
    "PatternSet",
    "RepairDiagnostics",
    "RoundedInstance",
    "SmallPlacementDiagnostics",
    "TransformationRecord",
    "build_configuration_milp",
    "classify_bags",
    "classify_jobs",
    "collect_entry_types",
    "compute_k",
    "derive_constants",
    "enumerate_patterns",
    "eptas_schedule",
    "forward_transform_schedule",
    "normalise_eps",
    "place_large_and_medium",
    "place_small_jobs",
    "reinsert_medium_jobs",
    "resolve_conflicts",
    "revert_to_original",
    "round_instance",
    "round_up_to_power",
    "scale_and_round",
    "solve_configuration_milp",
    "solve_for_guess",
    "theory_constants_report",
    "transform_instance",
]
