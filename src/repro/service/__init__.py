"""Scheduling-as-a-service: ad-hoc solves for many concurrent clients.

The millions-of-users front door of the orchestration stack
(``repro orch schedule-serve`` / ``repro orch submit``): a long-running
:class:`ScheduleServer` on the :mod:`repro.distributed` frame protocol that
accepts arbitrary scheduling instances, probes the content-hash result
cache, gates admission on a :class:`~repro.orchestration.scheduling.CostModel`
duration prediction, journals accepted requests into an
:class:`~repro.orchestration.store.ExperimentStore` (the ``service``
namespace), and executes them on a pool of executor threads — through a
local :class:`~repro.solver.SolverService` pool or remote fabric endpoints
when the CLI installs one.  See ``docs/scheduling-service.md``.
"""

from .client import ScheduleClient, ScheduleConnectionError
from .requests import (
    DEFAULT_EPS,
    DEFAULT_SCHEDULE_PORT,
    SCHEDULE_PROTOCOL_VERSION,
    SCHEDULE_RPC_METHODS,
    SERVICE_EXPERIMENT,
    SERVICE_TELEMETRY_KEY,
    SOLVER_ROSTER,
    AdmissionError,
    ScheduleRequest,
    cost_experiment,
    execute_request,
    normalise_request,
    parse_schedule_endpoint,
)
from .server import ScheduleServer

__all__ = [
    "AdmissionError",
    "DEFAULT_EPS",
    "DEFAULT_SCHEDULE_PORT",
    "SCHEDULE_PROTOCOL_VERSION",
    "SCHEDULE_RPC_METHODS",
    "SERVICE_EXPERIMENT",
    "SERVICE_TELEMETRY_KEY",
    "SOLVER_ROSTER",
    "ScheduleClient",
    "ScheduleConnectionError",
    "ScheduleRequest",
    "ScheduleServer",
    "cost_experiment",
    "execute_request",
    "normalise_request",
    "parse_schedule_endpoint",
]
