"""The scheduling service: ad-hoc solves over the framed RPC protocol.

:class:`ScheduleServer` subclasses :class:`repro.distributed.rpc.RpcServer`
(token auth, typed error replies, op-id replay) with concurrent dispatch —
a solve blocks its handler thread, so handlers must overlap.  Each ``submit``
flows through three gates:

1. **Cache probe** — the request's content-hash key against the store's
   result cache; a duplicate submission (even under a different instance
   name) returns the cached payload without a second solve.
2. **Admission** — :class:`repro.orchestration.scheduling.CostModel`
   predicts the expected duration from this service's own completion
   history (per-solver namespaces, see
   :func:`~repro.service.requests.cost_experiment`); above ``budget`` the
   request is rejected with a typed ``AdmissionError`` reply.
3. **Journal + execute** — the request becomes a row in the ``service``
   experiment namespace of an :class:`ExperimentStore` (idempotent
   ``add_rows``), prioritised shortest-expected-first (longest-expected
   requests queue *last*), and a pool of executor threads claims rows via
   the store's atomic ``claim_next``.  The handler parks on a condition
   until its row completes.

The journal is what makes the service crash-safe: a SIGKILL leaves claimed
rows ``running``; on restart :meth:`ScheduleServer.__init__` calls
``reclaim_stale`` so executors re-run them, and a client retrying with its
original op id either gets the recorded reply (op cache) or re-parks on the
journaled row — never a second solve of already-cached work.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Mapping

from ..analysis import racecheck
from ..distributed.rpc import RpcServer
from ..observability import events, metrics
from ..orchestration.scheduling import CostModel
from ..orchestration.store import ExperimentStore, StoredRow, params_hash
from .requests import (
    SCHEDULE_PROTOCOL_VERSION,
    SCHEDULE_RPC_METHODS,
    SERVICE_EXPERIMENT,
    SERVICE_TELEMETRY_KEY,
    AdmissionError,
    cost_experiment,
    execute_request,
    normalise_request,
)

__all__ = ["ScheduleServer"]

_TELEMETRY_KEYS = ("requests", "admitted", "rejected", "cache_hits", "solves")


class ServerClosed(Exception):
    """Raised into handlers parked on a shutting-down service.

    The *name* is load-bearing: error replies carry ``type(exc).__name__``,
    and clients treat ``"ServerClosed"`` as a retryable transport condition
    — a submit interrupted by a restart is replayed (same op id) against
    the replacement server, which finds the journaled row and resumes
    waiting instead of solving twice.
    """


class ScheduleServer(RpcServer):
    """Long-running scheduling service over one journal store.

    ``db`` is the journal/cache store file (created if missing) — owned by
    the server, closed on shutdown.  ``executors`` threads drain the
    journal; ``budget`` (seconds of expected duration) enables cost-model
    admission when set.  ``retry_errors`` re-opens an errored journal row
    for up to that many *fresh* submissions of the same request (default 0:
    failures stay terminal; op-id replays never consume the budget).
    Construction reclaims rows stranded ``running`` by a killed
    predecessor, reconstructs lifetime telemetry from completed-row deltas
    plus the journaled tail, and re-fits the cost model from the journal's
    own duration history, so resume needs no warm-up traffic.
    """

    rpc_methods = SCHEDULE_RPC_METHODS
    serialize_dispatch = False
    # Submissions get server.dispatch spans keyed by the client's op id, so
    # a service request's admission + solve is traceable like a claim.
    spanned_methods = frozenset({"submit"})
    thread_name = "repro-schedule-server"

    def __init__(
        self,
        db: "str | os.PathLike[str]",
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        token: str | None = None,
        executors: int = 2,
        budget: float | None = None,
        retry_errors: int = 0,
    ) -> None:
        if executors < 1:
            raise ValueError(f"executors must be >= 1, got {executors}")
        if retry_errors < 0:
            raise ValueError(f"retry_errors must be >= 0, got {retry_errors}")
        # Subclass state must be complete before RpcServer.__init__ binds
        # the port (a request can arrive the instant it returns).
        self._budget = float(budget) if budget is not None else None
        self._store = ExperimentStore(db, check_same_thread=False)
        self._store_lock = racecheck.tracked_rlock("schedule.store")
        racecheck.guard_store(self._store, self._store_lock)
        self._model = CostModel()
        self._telemetry_lock = racecheck.tracked_lock("schedule.telemetry")
        self._totals = {key: 0 for key in _TELEMETRY_KEYS}
        # Counter deltas not yet flushed into a completed journal row (the
        # per-row "_service_telemetry" convention mirrors the runner's
        # "_solver_telemetry": summing row deltas reconstructs totals).
        self._unflushed = {key: 0 for key in _TELEMETRY_KEYS}
        # The journaled copy of _unflushed (the "tail"): executors write it
        # back whenever it drifts, so rejected/cache-hit counters that never
        # ride a completed row still survive a restart.
        self._tail_journaled: dict[str, int] = {}
        # error-row resubmission policy: how many fresh submissions may
        # re-open one errored journal row (0 = failures are terminal).
        self._retry_errors = int(retry_errors)
        self._error_retries: dict[str, int] = {}
        self._work = racecheck.tracked_condition("schedule.work")
        self._done = racecheck.tracked_condition("schedule.done")
        self._closing = threading.Event()
        self._executor_threads: list[threading.Thread] = []
        try:
            self.resumed = self._store.reclaim_stale(
                older_than=0.0, experiments=[SERVICE_EXPERIMENT]
            )
            self._load_telemetry()
            self._warm_cost_model()
            for index in range(executors):
                thread = threading.Thread(
                    target=self._executor_loop,
                    args=(f"sched-exec-{index}",),
                    name=f"repro-sched-exec-{index}",
                    daemon=True,
                )
                thread.start()
                self._executor_threads.append(thread)
            super().__init__(host=host, port=port, token=token)
        except BaseException:
            # The TCP listener never came up; release what we own.
            self._closing.set()
            with self._work:
                self._work.notify_all()
            for thread in self._executor_threads:
                thread.join(timeout=5.0)
            self._store.close()
            raise

    # ------------------------------------------------------------------
    # Startup / shutdown
    # ------------------------------------------------------------------
    def _warm_cost_model(self) -> None:
        """Re-fit admission estimates from the journal's completion history."""
        for _, params, duration, _, _ in self._store.duration_samples(
            [SERVICE_EXPERIMENT]
        ):
            solver = params.get("solver")
            if isinstance(solver, str):
                self._model.observe(cost_experiment(solver), params, float(duration))

    def _load_telemetry(self) -> None:
        """Reconstruct lifetime counters: completed-row deltas plus the tail."""
        tail = self._store.service_telemetry_tail()
        totals = {key: tail.get(key, 0) for key in _TELEMETRY_KEYS}
        for row in self._store.fetch_rows(SERVICE_EXPERIMENT, status="done"):
            deltas = (row.result or {}).get(SERVICE_TELEMETRY_KEY) or {}
            for key in _TELEMETRY_KEYS:
                totals[key] += int(deltas.get(key, 0))
        with self._telemetry_lock:
            self._totals = totals
            # The tail *is* the unflushed remainder of the previous life:
            # the next completed row folds it in, and the overwrite in
            # _complete retires the journaled copy.
            self._unflushed = {key: tail.get(key, 0) for key in _TELEMETRY_KEYS}
            self._tail_journaled = dict(tail)

    def _on_shutdown(self) -> None:
        self._closing.set()
        with self._work:
            self._work.notify_all()
        with self._done:
            self._done.notify_all()
        for thread in self._executor_threads:
            thread.join(timeout=5.0)
        with self._store_lock:
            self._journal_tail()
            # Final span flush: batching may hold a sub-batch tail.
            events.flush(self._store)
            self._store.close()

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def _bump(self, key: str, amount: int = 1) -> None:
        with self._telemetry_lock:
            self._totals[key] += amount
            self._unflushed[key] += amount
        # Mirrored into the process-local metrics registry so a dashboard
        # scraping this process sees the service counters without a journal
        # read; the journal (not the registry) stays the durable record.
        metrics.counter(f"service.{key}", amount)

    def _flush_deltas(self) -> dict[str, int]:
        """Counter deltas accumulated since the last completed row."""
        with self._telemetry_lock:
            deltas = {key: n for key, n in self._unflushed.items() if n}
            for key in deltas:
                self._unflushed[key] = 0
        return deltas

    def telemetry(self) -> dict[str, int]:
        with self._telemetry_lock:
            return dict(self._totals)

    def _flush_spans(self) -> None:
        # Journal submit-dispatch spans into the service's own store (the
        # dashboard reads them back through fetch_events) — batched, so
        # the duplicate-heavy cache-hit path never pays a write
        # transaction per request.  events.maybe_flush swallows store
        # errors by contract.
        if not events.pending():
            return
        with self._store_lock:
            if self._closing.is_set():
                return
            events.maybe_flush(self._store)

    def _journal_tail(self) -> None:
        """Journal the unflushed counter snapshot when it has drifted.

        Caller holds ``_store_lock``.  Executors call this when idle and
        after every completed row, so a restart loses at most the counters
        bumped since the last idle tick — rejected submissions and cache
        hits no longer evaporate with the process.
        """
        with self._telemetry_lock:
            snapshot = {key: n for key, n in self._unflushed.items() if n}
        if snapshot == self._tail_journaled:
            return
        self._store.set_service_telemetry_tail(snapshot)
        self._tail_journaled = snapshot

    # ------------------------------------------------------------------
    # RPC dispatch
    # ------------------------------------------------------------------
    def _invoke(self, method: str, params: dict[str, Any]) -> Any:
        if method == "ping":
            return "pong"
        if method == "schedule_info":
            return self._schedule_info()
        assert method == "submit"  # rpc_methods is the allowlist
        return self._submit(params)

    def _error_data(self, exc: Exception) -> dict[str, Any] | None:
        if isinstance(exc, AdmissionError) and getattr(exc, "estimate", None) is not None:
            return {"estimate": exc.estimate, "budget": self._budget}
        return None

    def _schedule_info(self) -> dict[str, Any]:
        with self._store_lock:
            counts = self._store.status_counts().get(SERVICE_EXPERIMENT, {})
        return {
            "protocol": SCHEDULE_PROTOCOL_VERSION,
            "experiment": SERVICE_EXPERIMENT,
            "executors": len(self._executor_threads),
            "budget": self._budget,
            "retry_errors": self._retry_errors,
            "queue_depth": counts.get("pending", 0) + counts.get("running", 0),
            "rows": counts,
            "telemetry": self.telemetry(),
            "pid": os.getpid(),
        }

    def _submit(self, params: dict[str, Any]) -> dict[str, Any]:
        request = normalise_request(params)  # ValueError → structured reply
        self._bump("requests")
        key = request.cache_key()
        with self._store_lock:
            cached = self._store.cache_get(key)
        if cached is not None:
            self._bump("cache_hits")
            return {**_public_payload(cached), "cache_hit": True}
        journal_params = request.journal_params()
        estimate = self._model.estimate(cost_experiment(request.solver), journal_params)
        if self._budget is not None and estimate > self._budget:
            self._bump("rejected")
            error = AdmissionError(
                f"expected duration {estimate:.3f}s exceeds the admission "
                f"budget {self._budget:.3f}s for solver {request.solver!r}"
            )
            error.estimate = estimate
            raise error
        phash = params_hash(SERVICE_EXPERIMENT, journal_params)
        with self._store_lock:
            admitted = bool(self._store.add_rows(SERVICE_EXPERIMENT, [journal_params]))
            if not admitted and self._retry_errors:
                admitted = self._retry_errored(phash)
            if admitted:
                # Negative priority = shortest-expected-first claiming, i.e.
                # the longest-expected request queues last (the issue's
                # admission ordering); cost_estimate feeds status/export.
                self._store.set_schedule(
                    [(SERVICE_EXPERIMENT, phash, -estimate, estimate)]
                )
        if admitted:
            self._bump("admitted")
        with self._work:
            self._work.notify_all()
        return self._await_row(phash)

    def _retry_errored(self, phash: str) -> bool:
        """Re-open this request's errored journal row if the budget allows.

        Caller holds ``_store_lock``.  The budget is per request content
        (params hash), counted across the server's lifetime: N means this
        content's errored row is re-opened at most N times, no matter how
        many clients re-submit it.  (Error replies are deliberately not
        recorded for op replay — a failed op committed nothing — so a
        lost-reply retry of the same op re-enters ``_submit`` and may
        consume a retry; correct, since that client never saw the failure.)
        """
        used = self._error_retries.get(phash, 0)
        if used >= self._retry_errors:
            return False
        for row in self._store.fetch_rows(SERVICE_EXPERIMENT, status="error"):
            if params_hash(SERVICE_EXPERIMENT, row.params) == phash:
                if self._store.resubmit(row.id):
                    self._error_retries[phash] = used + 1
                    return True
                return False
        return False

    def _await_row(self, phash: str) -> dict[str, Any]:
        """Park the handler thread until the journaled row resolves."""
        while True:
            row = self._find_row(phash)
            if row is None:
                raise ServerClosed("journal row vanished (store was reset)")
            if row.status == "done" and row.result is not None:
                result = _public_payload(row.result)
                result.setdefault("cache_hit", False)
                return result
            if row.status == "error":
                raise RuntimeError(f"solve failed: {row.error}")
            if self._closing.is_set():
                raise ServerClosed("service is shutting down")
            with self._done:
                self._done.wait(timeout=0.5)

    def _find_row(self, phash: str) -> "StoredRow | None":
        with self._store_lock:
            if self._closing.is_set():
                raise ServerClosed("service is shutting down")
            for row in self._store.fetch_rows(SERVICE_EXPERIMENT):
                if params_hash(SERVICE_EXPERIMENT, row.params) == phash:
                    return row
        return None

    # ------------------------------------------------------------------
    # Executors
    # ------------------------------------------------------------------
    def _executor_loop(self, tag: str) -> None:
        while not self._closing.is_set():
            with self._store_lock:
                if self._closing.is_set():
                    return
                row = self._store.claim_next(tag, [SERVICE_EXPERIMENT])
            if row is None:
                with self._store_lock:
                    if self._closing.is_set():
                        return
                    self._journal_tail()
                with self._work:
                    self._work.wait(timeout=0.5)
                continue
            metrics.gauge_add("service.executors_busy", 1)
            try:
                self._run_row(tag, row)
            finally:
                metrics.gauge_add("service.executors_busy", -1)
                with self._done:
                    self._done.notify_all()

    def _run_row(self, tag: str, row: Any) -> None:
        started = time.perf_counter()
        try:
            request = normalise_request(row.params)
        except ValueError as exc:
            with self._store_lock:
                self._store.fail(
                    row.id, f"invalid journal row: {exc}", duration=0.0, worker=tag
                )
            return
        key = request.cache_key()
        with self._store_lock:
            cached = self._store.cache_get(key)
        if cached is not None:
            # A renamed-but-identical instance journaled as its own row, or
            # a resumed row whose solve finished before the kill.
            self._bump("cache_hits")
            self._complete(tag, row.id, cached, cache_hit=True, duration=0.0)
            return
        try:
            payload, duration = execute_request(request)
        except Exception as exc:  # noqa: BLE001 - row-level fault isolation
            with self._store_lock:
                self._store.fail(
                    row.id,
                    f"{type(exc).__name__}: {exc}",
                    duration=time.perf_counter() - started,
                    worker=tag,
                )
            return
        self._bump("solves")
        self._model.observe(cost_experiment(request.solver), row.params, duration)
        with self._store_lock:
            self._store.cache_put(key, request.solver, payload)
        self._complete(tag, row.id, payload, cache_hit=False, duration=duration)

    def _complete(
        self,
        tag: str,
        row_id: int,
        payload: Mapping[str, Any],
        *,
        cache_hit: bool,
        duration: float,
    ) -> None:
        result = {
            **payload,
            "cache_hit": cache_hit,
            SERVICE_TELEMETRY_KEY: self._flush_deltas(),
        }
        with self._store_lock:
            self._store.complete(row_id, result, duration=duration, worker=tag)
            # The row now carries those deltas; retire the journaled tail in
            # the same locked section so restart reconstruction (row deltas
            # + tail) never double-counts them.
            self._journal_tail()


def _public_payload(payload: Mapping[str, Any]) -> dict[str, Any]:
    """Strip journal-internal keys from a row result / cached payload."""
    return {key: value for key, value in payload.items() if key != SERVICE_TELEMETRY_KEY}
