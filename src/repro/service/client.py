"""ScheduleClient: submit ad-hoc scheduling instances to a ScheduleServer.

Reliability model mirrors :class:`repro.distributed.client.RemoteStore`:
one persistent socket, one request in flight, transport failures retried on
a fresh connection with linear backoff.  Every ``submit`` carries a
client-generated op id, so a retry of a request whose reply was lost —
including across a server SIGKILL/restart, where the replacement server
finds the original's journaled row — replays the original result rather
than solving twice.  ``AuthError`` is raised without any retry;
``AdmissionError`` replies are revived as the real
:class:`~repro.service.requests.AdmissionError` so callers can branch on
rejection without string-matching.
"""

from __future__ import annotations

import socket
import time
import uuid
from typing import Any, Mapping

from ..core.instance import Instance
from ..distributed.protocol import (
    ConnectionClosed,
    FrameError,
    ProtocolError,
    RemoteOperationError,
    encode_frame,
    recv_frame,
    send_encoded,
)
from ..distributed.rpc import knock, raise_reply_error
from .requests import (
    DEFAULT_EPS,
    SCHEDULE_PROTOCOL_VERSION,
    AdmissionError,
    parse_schedule_endpoint,
)

__all__ = ["ScheduleClient", "ScheduleConnectionError"]


class ScheduleConnectionError(ProtocolError):
    """The schedule service could not be reached (after configured retries)."""


class ScheduleClient:
    """Client for one :class:`~repro.service.server.ScheduleServer`.

    ``target`` is ``"host[:port]"`` or ``"tcp://host[:port]"`` (port
    defaults to 7481).  ``timeout`` bounds each round-trip — it must cover
    a whole queued solve, hence the generous default.
    """

    def __init__(
        self,
        target: str,
        *,
        token: str | None = None,
        timeout: float = 300.0,
        connect_timeout: float = 10.0,
        retries: int = 4,
        retry_delay: float = 0.2,
    ) -> None:
        self.host, self.port = parse_schedule_endpoint(target)
        self._token = token
        self._timeout = timeout
        self._connect_timeout = connect_timeout
        self._retries = max(0, int(retries))
        self._retry_delay = retry_delay
        self._sock: socket.socket | None = None
        self._request_id = 0
        self._closed = False
        info = self._call("schedule_info", {})
        version = info.get("protocol") if isinstance(info, Mapping) else None
        if version != SCHEDULE_PROTOCOL_VERSION:
            self.close()
            raise ScheduleConnectionError(
                f"schedule service at {self.host}:{self.port} speaks protocol "
                f"{version!r}; this client speaks {SCHEDULE_PROTOCOL_VERSION}"
            )

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _connect(self) -> socket.socket:
        try:
            sock = knock(
                self.host,
                self.port,
                timeout=self._timeout,
                connect_timeout=self._connect_timeout,
                retry_delay=self._retry_delay,
            )
        except OSError as exc:
            raise ScheduleConnectionError(
                f"cannot connect to schedule service at {self.host}:{self.port}: {exc}"
            ) from exc
        self._sock = sock
        return sock

    def _disconnect(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _call(self, method: str, params: dict[str, Any], *, op: bool = False) -> Any:
        if self._closed:
            raise ScheduleConnectionError("ScheduleClient is closed")
        self._request_id += 1
        payload: dict[str, Any] = {
            "id": self._request_id,
            "method": method,
            "params": params,
        }
        if self._token is not None:
            payload["token"] = self._token
        if op:
            # Generated once, before the retry loop: retries replay the op.
            payload["op"] = uuid.uuid4().hex
        # Serialised before the retry loop: an unframeable request is a
        # local payload bug, not an unreachable server.
        frame = encode_frame(payload)
        last_exc: Exception | None = None
        for attempt in range(self._retries + 1):
            try:
                sock = self._sock or self._connect()
                send_encoded(sock, frame)
                reply = recv_frame(sock)
                if reply.get("id") != payload["id"]:
                    raise FrameError(
                        f"reply id {reply.get('id')!r} does not match request "
                        f"{payload['id']!r}"
                    )
            except (OSError, ConnectionClosed, FrameError) as exc:
                self._disconnect()
                last_exc = exc
                if attempt < self._retries:
                    time.sleep(self._retry_delay * (attempt + 1))
                    continue
                raise ScheduleConnectionError(
                    f"schedule service at {self.host}:{self.port} unreachable "
                    f"after {self._retries + 1} attempts: {exc}"
                ) from exc
            error = reply.get("error")
            if error is not None:
                if error.get("type") == "ServerClosed":
                    # Mid-shutdown (or mid-restart) is a transport condition:
                    # reconnect and replay — the replacement server resumes
                    # the journaled request instead of solving it again.
                    self._disconnect()
                    last_exc = RemoteOperationError(
                        "ServerClosed", str(error.get("message", ""))
                    )
                    if attempt < self._retries:
                        time.sleep(self._retry_delay * (attempt + 1))
                        continue
                    raise ScheduleConnectionError(
                        f"schedule service at {self.host}:{self.port} is shutting down"
                    ) from last_exc
                if error.get("type") == "AdmissionError":
                    raise AdmissionError(str(error.get("message", "")))
                raise_reply_error(error)
            return reply.get("result")
        raise ScheduleConnectionError(str(last_exc))  # pragma: no cover - unreachable

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        self._closed = True
        self._disconnect()

    def __enter__(self) -> "ScheduleClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------
    def ping(self) -> bool:
        return self._call("ping", {}) == "pong"

    def info(self) -> dict[str, Any]:
        """Live service state: queue depth, telemetry counters, budget."""
        return self._call("schedule_info", {})

    def submit(
        self,
        instance: "Instance | Mapping[str, Any]",
        solver: str = "lpt",
        *,
        eps: float = DEFAULT_EPS,
    ) -> dict[str, Any]:
        """Solve one instance through the service; returns the summary payload.

        The payload carries ``makespan``, ``wall_time``, ``optimal``,
        ``solver``, ``diagnostics`` and a ``cache_hit`` flag.  Raises
        :class:`AdmissionError` on rejection and
        :class:`~repro.distributed.protocol.AuthError` on a bad token
        (never retried).
        """
        wire = instance.to_dict() if isinstance(instance, Instance) else dict(instance)
        return self._call(
            "submit",
            {"instance": wire, "solver": solver, "config": {"eps": eps}},
            op=True,
        )
