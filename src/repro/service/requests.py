"""Request model of the scheduling service.

One submission is ``(instance, solver, eps)``.  This module owns its whole
lifecycle *except* transport and queueing: validation/canonicalisation from
wire params (:func:`normalise_request`), the content-hash cache key (built
with :func:`repro.orchestration.cache.cache_key` using the same
solver-name/config/backend conventions as the experiment grids, so the
service shares cache entries with grid runs where the rosters overlap),
the journal row parameters persisted into the ``service`` experiment
namespace, and inline execution (:func:`execute_request`).

The solver roster mirrors the CLI's ``repro solve`` table: every solver
takes ``(instance, eps)``; combinatorial solvers ignore ``eps`` and omit it
from their cache keys, MILP-backed solvers fold the backend-registry
fingerprint in so a scipy upgrade never replays stale results.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from ..baselines import (
    coloring_schedule,
    das_wiese_schedule,
    first_fit_schedule,
    greedy_schedule,
    local_search_schedule,
    lpt_schedule,
)
from ..baselines.das_wiese import DasWieseConfig
from ..core.errors import ReproError
from ..core.instance import Instance
from ..core.result import SolverResult
from ..eptas import eptas_schedule
from ..eptas.params import EptasConfig
from ..exact import ExactMilpConfig, exact_schedule
from ..orchestration.cache import cache_key, summarise_result

__all__ = [
    "AdmissionError",
    "DEFAULT_EPS",
    "DEFAULT_SCHEDULE_PORT",
    "SCHEDULE_PROTOCOL_VERSION",
    "SCHEDULE_RPC_METHODS",
    "SERVICE_EXPERIMENT",
    "SERVICE_TELEMETRY_KEY",
    "SOLVER_ROSTER",
    "ScheduleRequest",
    "cost_experiment",
    "execute_request",
    "normalise_request",
    "parse_schedule_endpoint",
]

SCHEDULE_PROTOCOL_VERSION = 1
DEFAULT_SCHEDULE_PORT = 7481
SCHEDULE_RPC_METHODS = frozenset({"ping", "schedule_info", "submit"})

# The journal namespace inside the service's ExperimentStore.  It reuses the
# store's claim/complete/reclaim machinery verbatim, but is not a registered
# experiment spec — status/export special-case it.
SERVICE_EXPERIMENT = "service"
# Per-request counter deltas stashed in completed journal rows (mirrors the
# runner's "_solver_telemetry" convention) so `orch export service` can roll
# admitted/rejected/cache-hit totals up from any store file.
SERVICE_TELEMETRY_KEY = "_service_telemetry"
DEFAULT_EPS = 0.25


class AdmissionError(ReproError):
    """Request rejected at admission: expected cost exceeds the budget."""


@dataclass(frozen=True)
class _RosterEntry:
    """One servable solver: how to run it and how to key its cache entries."""

    run: Callable[[Instance, float], SolverResult]
    uses_eps: bool = False
    backend: Callable[[float], Any] | None = field(default=None)


SOLVER_ROSTER: dict[str, _RosterEntry] = {
    "greedy": _RosterEntry(lambda instance, eps: greedy_schedule(instance)),
    "first-fit": _RosterEntry(lambda instance, eps: first_fit_schedule(instance)),
    "lpt": _RosterEntry(lambda instance, eps: lpt_schedule(instance)),
    "local-search": _RosterEntry(lambda instance, eps: local_search_schedule(instance)),
    "coloring": _RosterEntry(lambda instance, eps: coloring_schedule(instance)),
    "das-wiese": _RosterEntry(
        lambda instance, eps: das_wiese_schedule(instance, eps=eps),
        uses_eps=True,
        backend=lambda eps: DasWieseConfig(eps=eps).backend_spec,
    ),
    "eptas": _RosterEntry(
        lambda instance, eps: eptas_schedule(instance, eps=eps),
        uses_eps=True,
        backend=lambda eps: EptasConfig(eps=eps).backend_spec,
    ),
    "exact": _RosterEntry(
        lambda instance, eps: exact_schedule(instance),
        backend=lambda eps: ExactMilpConfig().backend_spec,
    ),
}


def cost_experiment(solver: str) -> str:
    """Cost-model namespace for one solver's duration history.

    Namespaced per solver (not one bucket for the whole service): an LPT
    call and an exact MILP differ by orders of magnitude, and the admission
    gate is only as good as the expectation it compares to the budget.
    """
    return f"service:{solver}"


@dataclass(frozen=True)
class ScheduleRequest:
    """A validated, canonicalised submission."""

    instance: Instance
    solver: str
    eps: float = DEFAULT_EPS

    @property
    def config(self) -> dict[str, Any] | None:
        """Cache-key config: ``eps`` only where the solver consumes it."""
        if SOLVER_ROSTER[self.solver].uses_eps:
            return {"eps": self.eps}
        return None

    def cache_key(self) -> str:
        entry = SOLVER_ROSTER[self.solver]
        backend = entry.backend(self.eps) if entry.backend is not None else None
        return cache_key(self.instance, self.solver, self.config, backend=backend)

    def journal_params(self) -> dict[str, Any]:
        """The JSON row persisted in the ``service`` journal namespace.

        Always carries ``eps`` (even for solvers that ignore it) so a row
        round-trips back into an identical :class:`ScheduleRequest` on
        resume; the *cache key* still omits it where irrelevant.
        """
        return {
            "instance": self.instance.to_dict(),
            "solver": self.solver,
            "config": {"eps": self.eps},
        }


def normalise_request(params: Mapping[str, Any]) -> ScheduleRequest:
    """Validate wire/journal params into a :class:`ScheduleRequest`.

    Raises ``ValueError`` on anything malformed — the RPC layer turns that
    into a structured error reply, so a garbage submission never kills the
    connection (or the server).
    """
    if not isinstance(params, Mapping):
        raise ValueError("submit params must be an object")
    solver = params.get("solver", "lpt")
    if not isinstance(solver, str) or solver not in SOLVER_ROSTER:
        raise ValueError(
            f"unknown solver {solver!r}; expected one of {sorted(SOLVER_ROSTER)}"
        )
    config = params.get("config") or {}
    if not isinstance(config, Mapping):
        raise ValueError("config must be an object")
    eps = config.get("eps", DEFAULT_EPS)
    try:
        eps = float(eps)
    except (TypeError, ValueError):
        raise ValueError(f"eps must be a number, got {eps!r}") from None
    if not 0 < eps <= 1:
        raise ValueError(f"eps must lie in (0, 1], got {eps}")
    raw_instance = params.get("instance")
    if not isinstance(raw_instance, Mapping):
        raise ValueError("instance must be an object (Instance.to_dict form)")
    try:
        instance = Instance.from_dict(raw_instance)
    except Exception as exc:
        raise ValueError(f"invalid instance: {exc}") from exc
    return ScheduleRequest(instance=instance, solver=solver, eps=eps)


def execute_request(request: ScheduleRequest) -> tuple[dict[str, Any], float]:
    """Run the solve inline; return ``(summary payload, wall seconds)``.

    The payload is the standard cache summary
    (:func:`repro.orchestration.cache.summarise_result`), which is what gets
    journaled, cached, and returned to clients.
    """
    started = time.perf_counter()
    result = SOLVER_ROSTER[request.solver].run(request.instance, request.eps)
    duration = time.perf_counter() - started
    return summarise_result(result), duration


def parse_schedule_endpoint(target: str) -> tuple[str, int]:
    """Parse ``HOST[:PORT]`` (or ``tcp://HOST[:PORT]``), defaulting the port.

    Unlike the store's ``parse_address`` the port is optional — schedule
    services overwhelmingly sit on :data:`DEFAULT_SCHEDULE_PORT`.
    """
    spec = target.strip()
    if spec.startswith("tcp://"):
        spec = spec[len("tcp://") :]
    if not spec:
        raise ValueError(f"empty schedule endpoint in {target!r}")
    host, sep, port_text = spec.rpartition(":")
    if not sep:
        return spec, DEFAULT_SCHEDULE_PORT
    if not host:
        raise ValueError(f"missing host in schedule endpoint {target!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"invalid port {port_text!r} in schedule endpoint {target!r}"
        ) from None
    if not 0 < port < 65536:
        raise ValueError(f"port out of range in schedule endpoint {target!r}")
    return host, port
