"""Instance generators for benchmarks, tests and examples.

The paper contains no benchmark instances, so the harness generates synthetic
families that exercise the algorithmic phenomena the paper is about:

* :func:`uniform_random_instance` — generic random workloads.
* :func:`clustered_sizes_instance` — few distinct job sizes (keeps the
  configuration MILP small; the regime where the EPTAS machinery is most
  visible).
* :func:`figure1_adversarial_instance` — the Figure-1 phenomenon: large jobs
  can be packed to height OPT in a way that forces small jobs to overflow,
  because a full bag of small jobs requires one small job on *every* machine.
* :func:`replica_workload_instance` — the introduction's motivation:
  services with replicas that must run on distinct machines (each service's
  replicas form a bag).
* :func:`planted_optimum_instance` — instances constructed backwards from a
  feasible schedule, so a makespan upper bound (and usually the optimum) is
  known exactly.
* :func:`bag_heavy_instance` — many bags of near-machine cardinality, the
  regime where bag constraints dominate the packing.

All generators take a ``seed`` and are deterministic given it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..core.instance import Instance
from ..core.job import Job

__all__ = [
    "GeneratedInstance",
    "uniform_random_instance",
    "clustered_sizes_instance",
    "figure1_adversarial_instance",
    "replica_workload_instance",
    "planted_optimum_instance",
    "bag_heavy_instance",
    "two_size_instance",
    "FAMILIES",
    "generate",
]


@dataclass(frozen=True, slots=True)
class GeneratedInstance:
    """An instance plus generator-side knowledge about it.

    ``known_optimum`` is an exact optimum when the generator can certify it,
    ``optimum_upper_bound`` is a makespan achievable by construction (the
    planted schedule), and both may be ``None``.
    """

    instance: Instance
    known_optimum: float | None = None
    optimum_upper_bound: float | None = None
    description: str = ""


# ----------------------------------------------------------------------
# Generic random families
# ----------------------------------------------------------------------
def _assign_bags_randomly(
    num_jobs: int, num_bags: int, num_machines: int, rng: np.random.Generator
) -> list[int]:
    """Random bag assignment that never exceeds ``num_machines`` jobs per bag."""
    if num_bags <= 0:
        raise ValueError("num_bags must be positive")
    if num_jobs > num_bags * num_machines:
        raise ValueError(
            f"cannot place {num_jobs} jobs into {num_bags} bags of capacity "
            f"{num_machines} each"
        )
    bags: list[int] = []
    counts = np.zeros(num_bags, dtype=int)
    for _ in range(num_jobs):
        open_bags = np.flatnonzero(counts < num_machines)
        choice = int(rng.choice(open_bags))
        bags.append(choice)
        counts[choice] += 1
    return bags


def uniform_random_instance(
    *,
    num_jobs: int = 60,
    num_machines: int = 6,
    num_bags: int = 12,
    size_range: tuple[float, float] = (0.05, 1.0),
    seed: int = 0,
    name: str | None = None,
) -> GeneratedInstance:
    """Jobs with sizes uniform in ``size_range`` and random bag membership."""
    rng = np.random.default_rng(seed)
    low, high = size_range
    sizes = rng.uniform(low, high, size=num_jobs)
    bags = _assign_bags_randomly(num_jobs, num_bags, num_machines, rng)
    instance = Instance.from_sizes(
        sizes.tolist(),
        bags,
        num_machines,
        name=name or f"uniform-n{num_jobs}-m{num_machines}-b{num_bags}-s{seed}",
    )
    return GeneratedInstance(
        instance=instance,
        description="uniform random sizes, random bags",
    )


def clustered_sizes_instance(
    *,
    num_jobs: int = 60,
    num_machines: int = 6,
    num_bags: int = 10,
    size_values: Sequence[float] = (1.0, 0.6, 0.3, 0.1),
    weights: Sequence[float] | None = None,
    seed: int = 0,
    name: str | None = None,
) -> GeneratedInstance:
    """Jobs drawn from a small set of distinct sizes.

    Few distinct sizes keep the number of rounded size classes (and hence
    the pattern count of the configuration MILP) small, which is the regime
    used by most EPTAS benchmarks.
    """
    rng = np.random.default_rng(seed)
    values = np.asarray(size_values, dtype=float)
    probabilities = None
    if weights is not None:
        probabilities = np.asarray(weights, dtype=float)
        probabilities = probabilities / probabilities.sum()
    sizes = rng.choice(values, size=num_jobs, p=probabilities)
    bags = _assign_bags_randomly(num_jobs, num_bags, num_machines, rng)
    instance = Instance.from_sizes(
        sizes.tolist(),
        bags,
        num_machines,
        name=name or f"clustered-n{num_jobs}-m{num_machines}-b{num_bags}-s{seed}",
    )
    return GeneratedInstance(
        instance=instance,
        description=f"clustered sizes from {list(size_values)}",
    )


def two_size_instance(
    *,
    num_machines: int = 8,
    large_size: float = 0.65,
    small_size: float = 0.35,
    large_per_machine: int = 1,
    seed: int = 0,
    name: str | None = None,
) -> GeneratedInstance:
    """A two-size family with known optimum ``large + small`` per machine.

    Every machine receives ``large_per_machine`` large jobs and one small
    job in the planted optimum; bags are chosen so the planted schedule is
    feasible but a careless schedule conflicts.
    """
    rng = np.random.default_rng(seed)
    jobs: list[Job] = []
    job_id = 0
    # Bags: one bag per "slot position" so every bag has exactly m jobs.
    for position in range(large_per_machine):
        for _ in range(num_machines):
            jobs.append(Job(id=job_id, size=large_size, bag=position))
            job_id += 1
    for _ in range(num_machines):
        jobs.append(Job(id=job_id, size=small_size, bag=large_per_machine))
        job_id += 1
    rng.shuffle(jobs)
    instance = Instance(
        jobs,
        num_machines,
        name=name or f"twosize-m{num_machines}-s{seed}",
    )
    optimum = large_per_machine * large_size + small_size
    return GeneratedInstance(
        instance=instance,
        known_optimum=optimum,
        optimum_upper_bound=optimum,
        description="two job sizes, full bags, known optimum",
    )


# ----------------------------------------------------------------------
# Figure 1: large-job placement matters
# ----------------------------------------------------------------------
def figure1_adversarial_instance(
    *,
    num_machines: int = 6,
    large_size: float = 0.5,
    seed: int = 0,
    name: str | None = None,
) -> GeneratedInstance:
    """The Figure-1 phenomenon as a concrete family.

    ``m`` large jobs of size ``large_size`` live in *distinct* bags, so any
    two of them may share a machine; ``m`` small jobs of size
    ``1 - large_size`` all live in *one* bag, so every machine must take
    exactly one of them.  The optimum pairs one large and one small job per
    machine (makespan ``1``).  A schedule that greedily packs two large jobs
    per machine still has large-job height ``2*large_size <= 1`` but is then
    forced to put a small job on top of a doubly-loaded machine, exceeding
    the optimum — exactly the situation depicted in Figure 1 of the paper.
    """
    if not 0 < large_size < 1:
        raise ValueError("large_size must lie strictly between 0 and 1")
    small_size = 1.0 - large_size
    rng = np.random.default_rng(seed)
    jobs: list[Job] = []
    job_id = 0
    for index in range(num_machines):
        jobs.append(
            Job(id=job_id, size=large_size, bag=1 + index, meta={"role": "large"})
        )
        job_id += 1
    for _ in range(num_machines):
        jobs.append(Job(id=job_id, size=small_size, bag=0, meta={"role": "small"}))
        job_id += 1
    rng.shuffle(jobs)
    instance = Instance(
        jobs,
        num_machines,
        name=name or f"figure1-m{num_machines}-L{large_size:g}",
    )
    return GeneratedInstance(
        instance=instance,
        known_optimum=1.0,
        optimum_upper_bound=1.0,
        description="Figure 1 adversarial family: one full bag of small jobs",
    )


# ----------------------------------------------------------------------
# Introduction motivation: replicated services
# ----------------------------------------------------------------------
def replica_workload_instance(
    *,
    num_services: int = 12,
    num_machines: int = 8,
    replicas_range: tuple[int, int] = (2, 4),
    size_range: tuple[float, float] = (0.1, 0.9),
    heterogeneous_replicas: bool = False,
    seed: int = 0,
    name: str | None = None,
) -> GeneratedInstance:
    """Replicated services: each service's replicas form one bag.

    This is the scenario from the paper's introduction — replicas are forced
    onto distinct machines so that a single machine failure cannot take down
    a whole service.  Replica counts are drawn uniformly from
    ``replicas_range`` (capped at the machine count), sizes per service from
    ``size_range``; with ``heterogeneous_replicas`` each replica gets its own
    size (e.g. a primary heavier than secondaries).
    """
    rng = np.random.default_rng(seed)
    jobs: list[Job] = []
    job_id = 0
    lo, hi = replicas_range
    for service in range(num_services):
        replicas = int(rng.integers(lo, hi + 1))
        replicas = min(replicas, num_machines)
        base_size = float(rng.uniform(*size_range))
        for replica in range(replicas):
            if heterogeneous_replicas:
                size = float(base_size * rng.uniform(0.7, 1.3))
            else:
                size = base_size
            jobs.append(
                Job(
                    id=job_id,
                    size=size,
                    bag=service,
                    meta={"service": service, "replica": replica},
                )
            )
            job_id += 1
    instance = Instance(
        jobs,
        num_machines,
        name=name or f"replicas-svc{num_services}-m{num_machines}-s{seed}",
    )
    return GeneratedInstance(
        instance=instance,
        description="replicated services (bag = service), intro motivation",
    )


# ----------------------------------------------------------------------
# Planted optimum
# ----------------------------------------------------------------------
def planted_optimum_instance(
    *,
    num_machines: int = 8,
    target_load: float = 1.0,
    jobs_per_machine_range: tuple[int, int] = (2, 5),
    seed: int = 0,
    name: str | None = None,
) -> GeneratedInstance:
    """Build an instance backwards from a feasible schedule.

    Each machine is filled with a random number of jobs whose sizes sum to
    exactly ``target_load``.  The bag of a job is its *position* on its
    machine, so every bag has at most ``m`` members and the planted schedule
    is conflict-free.  The planted makespan ``target_load`` is therefore an
    upper bound on the optimum; it equals the optimum whenever
    ``target_load`` also matches the area bound, which holds by construction
    (every machine is filled to the same level).
    """
    rng = np.random.default_rng(seed)
    jobs: list[Job] = []
    job_id = 0
    lo, hi = jobs_per_machine_range
    for machine in range(num_machines):
        count = int(rng.integers(lo, hi + 1))
        # Random composition of `target_load` into `count` positive parts.
        cuts = np.sort(rng.uniform(0.0, target_load, size=count - 1)) if count > 1 else np.array([])
        boundaries = np.concatenate(([0.0], cuts, [target_load]))
        parts = np.diff(boundaries)
        # Avoid degenerate zero-size jobs from duplicate cuts.
        parts = np.maximum(parts, 1e-6)
        parts = parts * (target_load / parts.sum())
        for position, size in enumerate(parts):
            jobs.append(
                Job(
                    id=job_id,
                    size=float(size),
                    bag=position,
                    meta={"planted_machine": machine},
                )
            )
            job_id += 1
    rng.shuffle(jobs)
    instance = Instance(
        jobs,
        num_machines,
        name=name or f"planted-m{num_machines}-T{target_load:g}-s{seed}",
    )
    return GeneratedInstance(
        instance=instance,
        known_optimum=target_load,
        optimum_upper_bound=target_load,
        description="planted schedule with equal machine loads",
    )


def bag_heavy_instance(
    *,
    num_machines: int = 6,
    num_full_bags: int = 4,
    extra_jobs: int = 10,
    size_range: tuple[float, float] = (0.1, 0.6),
    seed: int = 0,
    name: str | None = None,
) -> GeneratedInstance:
    """Instances dominated by full bags (``|B| = m``).

    ``num_full_bags`` bags contain exactly ``m`` jobs each, so every machine
    must host one job of each of them; ``extra_jobs`` additional jobs in
    singleton bags add slack.  This family stresses the bag-constraint
    machinery (a large fraction of jobs is pinned by cardinality).
    """
    rng = np.random.default_rng(seed)
    jobs: list[Job] = []
    job_id = 0
    for bag in range(num_full_bags):
        for _ in range(num_machines):
            jobs.append(Job(id=job_id, size=float(rng.uniform(*size_range)), bag=bag))
            job_id += 1
    for extra in range(extra_jobs):
        jobs.append(
            Job(
                id=job_id,
                size=float(rng.uniform(*size_range)),
                bag=num_full_bags + extra,
            )
        )
        job_id += 1
    rng.shuffle(jobs)
    instance = Instance(
        jobs,
        num_machines,
        name=name or f"bagheavy-m{num_machines}-f{num_full_bags}-s{seed}",
    )
    return GeneratedInstance(
        instance=instance,
        description="several full bags plus singleton filler jobs",
    )


# ----------------------------------------------------------------------
# Family registry used by the experiment harness and the CLI
# ----------------------------------------------------------------------
FAMILIES: dict[str, Callable[..., GeneratedInstance]] = {
    "uniform": uniform_random_instance,
    "clustered": clustered_sizes_instance,
    "two-size": two_size_instance,
    "figure1": figure1_adversarial_instance,
    "replicas": replica_workload_instance,
    "planted": planted_optimum_instance,
    "bag-heavy": bag_heavy_instance,
}


def generate(family: str, **kwargs: object) -> GeneratedInstance:
    """Generate an instance of a named family (see :data:`FAMILIES`)."""
    try:
        generator = FAMILIES[family]
    except KeyError as exc:
        raise KeyError(
            f"unknown instance family {family!r}; available: {sorted(FAMILIES)}"
        ) from exc
    return generator(**kwargs)  # type: ignore[arg-type]
