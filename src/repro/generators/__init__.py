"""Synthetic instance families (the paper publishes no benchmark data)."""

from .families import (
    FAMILIES,
    GeneratedInstance,
    bag_heavy_instance,
    clustered_sizes_instance,
    figure1_adversarial_instance,
    generate,
    planted_optimum_instance,
    replica_workload_instance,
    two_size_instance,
    uniform_random_instance,
)

__all__ = [
    "FAMILIES",
    "GeneratedInstance",
    "bag_heavy_instance",
    "clustered_sizes_instance",
    "figure1_adversarial_instance",
    "generate",
    "planted_optimum_instance",
    "replica_workload_instance",
    "two_size_instance",
    "uniform_random_instance",
]
