"""Command-line interface: ``python -m repro <command>`` / ``repro-sched``.

Commands
--------
``generate``   write a synthetic instance (JSON) from one of the families
``solve``      solve an instance file (or a generated family) with any solver
``compare``    run several solvers on one instance and print a comparison table
``experiments``run the DESIGN.md experiments (E1…E10) and print their tables
``constants``  print the paper's derived constants / Lemma-6 sizes for an eps
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Callable, Sequence

from .baselines import (
    coloring_schedule,
    das_wiese_schedule,
    first_fit_schedule,
    greedy_schedule,
    local_search_schedule,
    lpt_schedule,
)
from .bounds import best_lower_bound
from .core import Instance, SolverResult
from .eptas import eptas_schedule, theory_constants_report
from .exact import exact_schedule
from .experiments import EXPERIMENTS, run_experiment
from .experiments.tables import ExperimentTable
from .generators import FAMILIES, generate

__all__ = ["main", "build_parser", "SOLVERS"]


SOLVERS: dict[str, Callable[..., SolverResult]] = {
    "greedy": lambda instance, eps: greedy_schedule(instance),
    "first-fit": lambda instance, eps: first_fit_schedule(instance),
    "lpt": lambda instance, eps: lpt_schedule(instance),
    "local-search": lambda instance, eps: local_search_schedule(instance),
    "coloring": lambda instance, eps: coloring_schedule(instance),
    "das-wiese": lambda instance, eps: das_wiese_schedule(instance, eps=eps),
    "eptas": lambda instance, eps: eptas_schedule(instance, eps=eps),
    "exact": lambda instance, eps: exact_schedule(instance),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sched",
        description="Machine scheduling with bag-constraints: EPTAS reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic instance")
    gen.add_argument("family", choices=sorted(FAMILIES), help="instance family")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--machines", type=int, default=None)
    gen.add_argument("--jobs", type=int, default=None)
    gen.add_argument("--output", "-o", type=Path, default=None, help="output JSON path")

    solve = sub.add_parser("solve", help="solve an instance with one solver")
    solve.add_argument("instance", type=Path, help="instance JSON file")
    solve.add_argument("--solver", choices=sorted(SOLVERS), default="eptas")
    solve.add_argument("--eps", type=float, default=0.25)
    solve.add_argument("--output", "-o", type=Path, default=None, help="schedule JSON path")

    compare = sub.add_parser("compare", help="run several solvers on one instance")
    compare.add_argument("instance", type=Path)
    compare.add_argument(
        "--solvers", nargs="+", choices=sorted(SOLVERS), default=["greedy", "lpt", "eptas"]
    )
    compare.add_argument("--eps", type=float, default=0.25)

    experiments = sub.add_parser("experiments", help="run DESIGN.md experiments")
    experiments.add_argument(
        "ids", nargs="*", default=sorted(EXPERIMENTS), help="experiment ids (default: all)"
    )
    experiments.add_argument("--full", action="store_true", help="full (slow) variant")
    experiments.add_argument("--seed", type=int, default=0)
    experiments.add_argument("--markdown", action="store_true", help="emit markdown tables")
    experiments.add_argument("--csv-dir", type=Path, default=None, help="also write CSVs here")

    constants = sub.add_parser("constants", help="print derived constants for an eps")
    constants.add_argument("--eps", type=float, default=0.25)

    return parser


def _load_instance(path: Path) -> Instance:
    if not path.exists():
        raise SystemExit(f"instance file not found: {path}")
    return Instance.load(path)


def _print_result(result: SolverResult) -> None:
    print(f"solver     : {result.solver}")
    print(f"instance   : {result.instance_name}")
    print(f"makespan   : {result.makespan:.6g}")
    print(f"wall time  : {result.wall_time:.3f}s")
    bounds = best_lower_bound(result.schedule.instance)
    print(f"lower bound: {bounds.best:.6g}  (ratio <= {result.makespan / bounds.best:.4f})")
    if result.diagnostics:
        trimmed = {
            key: value
            for key, value in result.diagnostics.items()
            if key not in ("attempts",)
        }
        print(f"diagnostics: {json.dumps(trimmed, default=str)}")


def _cmd_generate(args: argparse.Namespace) -> int:
    kwargs: dict[str, object] = {"seed": args.seed}
    if args.machines is not None:
        kwargs["num_machines"] = args.machines
    if args.jobs is not None:
        kwargs["num_jobs"] = args.jobs
    try:
        generated = generate(args.family, **kwargs)
    except TypeError:
        # Some families do not take num_jobs; retry without it.
        kwargs.pop("num_jobs", None)
        generated = generate(args.family, **kwargs)
    instance = generated.instance
    output = args.output or Path(f"{instance.name}.json")
    instance.save(output)
    print(f"wrote {instance.num_jobs} jobs / {instance.num_bags} bags / "
          f"{instance.num_machines} machines to {output}")
    if generated.known_optimum is not None:
        print(f"known optimum: {generated.known_optimum:.6g}")
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    instance = _load_instance(args.instance)
    result = SOLVERS[args.solver](instance, args.eps)
    _print_result(result)
    if args.output is not None:
        result.schedule.save(args.output)
        print(f"schedule written to {args.output}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    instance = _load_instance(args.instance)
    table = ExperimentTable("compare", f"solver comparison on {instance.name}")
    bounds = best_lower_bound(instance)
    for name in args.solvers:
        result = SOLVERS[name](instance, args.eps)
        table.add_row(
            {
                "solver": name,
                "makespan": result.makespan,
                "ratio_to_lb": result.makespan / bounds.best if bounds.best > 0 else float("nan"),
                "time_s": result.wall_time,
            }
        )
    print(table.to_text())
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    for experiment_id in args.ids:
        table = run_experiment(experiment_id, quick=not args.full, seed=args.seed)
        print(table.to_markdown() if args.markdown else table.to_text())
        print()
        if args.csv_dir is not None:
            args.csv_dir.mkdir(parents=True, exist_ok=True)
            table.save_csv(args.csv_dir / f"{experiment_id.lower()}.csv")
    return 0


def _cmd_constants(args: argparse.Namespace) -> int:
    print(json.dumps(theory_constants_report(args.eps), indent=2))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "solve": _cmd_solve,
        "compare": _cmd_compare,
        "experiments": _cmd_experiments,
        "constants": _cmd_constants,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
