"""Command-line interface: ``python -m repro <command>`` / ``repro-sched``.

Commands
--------
``generate``   write a synthetic instance (JSON) from one of the families
``solve``      solve an instance file (or a generated family) with any solver
``compare``    run several solvers on one instance and print a comparison table
``experiments``run the DESIGN.md experiments (E1…E10) and print their tables
``constants``  print the paper's derived constants / Lemma-6 sizes for an eps
``orch``       persistent parallel experiment orchestration
               (run/plan/status/priors/reset/export), plus the distributed
               fleet commands: ``serve`` (own a store, serve it over TCP)
               and ``worker --connect`` (drain a served store remotely)
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Callable, Sequence

from .baselines import (
    coloring_schedule,
    das_wiese_schedule,
    first_fit_schedule,
    greedy_schedule,
    local_search_schedule,
    lpt_schedule,
)
from .bounds import best_lower_bound
from .core import Instance, SolverResult
from .eptas import eptas_schedule, theory_constants_report
from .exact import exact_schedule
from .experiments import EXPERIMENTS, run_experiment
from .experiments.tables import ExperimentTable
from .generators import FAMILIES, generate

__all__ = ["main", "build_parser", "SOLVERS"]


SOLVERS: dict[str, Callable[..., SolverResult]] = {
    "greedy": lambda instance, eps: greedy_schedule(instance),
    "first-fit": lambda instance, eps: first_fit_schedule(instance),
    "lpt": lambda instance, eps: lpt_schedule(instance),
    "local-search": lambda instance, eps: local_search_schedule(instance),
    "coloring": lambda instance, eps: coloring_schedule(instance),
    "das-wiese": lambda instance, eps: das_wiese_schedule(instance, eps=eps),
    "eptas": lambda instance, eps: eptas_schedule(instance, eps=eps),
    "exact": lambda instance, eps: exact_schedule(instance),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sched",
        description="Machine scheduling with bag-constraints: EPTAS reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic instance")
    gen.add_argument("family", choices=sorted(FAMILIES), help="instance family")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--machines", type=int, default=None)
    gen.add_argument("--jobs", type=int, default=None)
    gen.add_argument("--output", "-o", type=Path, default=None, help="output JSON path")

    solve = sub.add_parser("solve", help="solve an instance with one solver")
    solve.add_argument("instance", type=Path, help="instance JSON file")
    solve.add_argument("--solver", choices=sorted(SOLVERS), default="eptas")
    solve.add_argument("--eps", type=float, default=0.25)
    solve.add_argument("--output", "-o", type=Path, default=None, help="schedule JSON path")

    compare = sub.add_parser("compare", help="run several solvers on one instance")
    compare.add_argument("instance", type=Path)
    compare.add_argument(
        "--solvers", nargs="+", choices=sorted(SOLVERS), default=["greedy", "lpt", "eptas"]
    )
    compare.add_argument("--eps", type=float, default=0.25)

    experiments = sub.add_parser("experiments", help="run DESIGN.md experiments")
    experiments.add_argument(
        "ids", nargs="*", default=sorted(EXPERIMENTS), help="experiment ids (default: all)"
    )
    experiments.add_argument("--full", action="store_true", help="full (slow) variant")
    experiments.add_argument("--seed", type=int, default=0)
    experiments.add_argument("--markdown", action="store_true", help="emit markdown tables")
    experiments.add_argument("--csv-dir", type=Path, default=None, help="also write CSVs here")

    constants = sub.add_parser("constants", help="print derived constants for an eps")
    constants.add_argument("--eps", type=float, default=0.25)

    lint = sub.add_parser(
        "lint",
        help="check the repo-specific invariants of the distributed stack "
        "(op-id threading, store-layer SQLite, framed sockets, ...)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        type=Path,
        default=None,
        help="files or directories to lint (default: this installation's "
        "src/repro tree)",
    )
    lint.add_argument(
        "--json", action="store_true", help="emit findings as a JSON array"
    )
    lint.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )

    racecheck_dump = sub.add_parser(
        "racecheck-dump",
        help="render the race checker's observed lock-order graph "
        "(live, or from a $REPRO_RACECHECK_DUMP JSON file) as DOT or JSON",
    )
    racecheck_dump.add_argument(
        "input",
        nargs="?",
        type=Path,
        default=None,
        help="edges JSON written by a REPRO_RACECHECK_DUMP=path process "
        "(default: this process's live graph)",
    )
    racecheck_dump.add_argument(
        "--format",
        choices=("dot", "json"),
        default="dot",
        help="output format (default: dot, for Graphviz/CI artifacts)",
    )
    racecheck_dump.add_argument(
        "--output", "-o", type=Path, default=None, help="write here instead of stdout"
    )

    orch = sub.add_parser(
        "orch", help="persistent parallel experiment orchestration (SQLite-backed)"
    )
    orch_sub = orch.add_subparsers(dest="orch_command", required=True)

    def _add_db(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--db",
            type=Path,
            default=None,
            help="store path (default: $REPRO_ORCH_DB or ./orchestration.db)",
        )

    orch_run = orch_sub.add_parser(
        "run", help="expand grids into the store and drain them with workers"
    )
    orch_run.add_argument(
        "experiments", nargs="+", help="experiment names (e1…e10, smoke)"
    )
    _add_db(orch_run)
    orch_run.add_argument("--workers", type=int, default=2, help="worker processes")
    orch_run.add_argument("--seed", type=int, default=0)
    mode = orch_run.add_mutually_exclusive_group()
    mode.add_argument("--quick", action="store_true", help="quick grids (default)")
    mode.add_argument("--full", action="store_true", help="full (slow) grids")
    orch_run.add_argument(
        "--stale-after",
        type=float,
        default=600.0,
        help="reclaim 'running' rows older than this many seconds (0 = all)",
    )
    orch_run.add_argument(
        "--no-cache", action="store_true", help="disable the persistent result cache"
    )
    orch_run.add_argument(
        "--solver-servers",
        type=int,
        default=0,
        help="subprocess solver servers per worker (0 = solve MILPs inline); "
        "cells then overlap independent MILPs on the shared pool",
    )
    orch_run.add_argument(
        "--solver-connect",
        default=None,
        metavar="HOST:PORT[,HOST:PORT...]",
        help="route MILP solves to remote `repro orch solver-serve` "
        "endpoints instead of a local pool (mutually exclusive with "
        "--solver-servers)",
    )
    orch_run.add_argument(
        "--solver-token",
        default=None,
        help="shared secret of the solver endpoints "
        "(default: $REPRO_ORCH_TOKEN)",
    )
    orch_run.add_argument(
        "--no-populate",
        action="store_true",
        help="only drain rows already in the store (skip grid expansion)",
    )
    orch_run.add_argument(
        "--no-plan",
        action="store_true",
        help="skip the scheduler: no prerequisite hoisting, FIFO claiming "
        "(priorities already in the store still apply); implies --no-replan",
    )
    replan_mode = orch_run.add_mutually_exclusive_group()
    replan_mode.add_argument(
        "--replan-every",
        type=int,
        default=None,
        metavar="N",
        help="online re-planning cadence: refit the cost model and re-rank "
        "pending rows every N landed completions (default: 5)",
    )
    replan_mode.add_argument(
        "--no-replan",
        action="store_true",
        help="freeze priorities at the initial plan (no mid-drain refit)",
    )
    orch_run.add_argument(
        "--fifo-every",
        type=int,
        default=None,
        metavar="N",
        help="bounded-wait interleave: every N-th claim takes the oldest "
        "pending row (default: store default of 4; 0 = pure priority order)",
    )
    orch_run.add_argument(
        "--save-priors",
        type=Path,
        default=None,
        metavar="FILE",
        help="after the run, fit the cost model from this store's measured "
        "history and write it as a priors JSON (ready for "
        "`repro orch priors import` into another store)",
    )

    orch_serve = orch_sub.add_parser(
        "serve",
        help="own a local store and serve it to remote workers over TCP "
        "(SQLite is unsafe on network filesystems; this is the "
        "multi-machine path)",
    )
    orch_serve.add_argument("db", type=Path, help="store path to own and serve")
    orch_serve.add_argument(
        "--create",
        action="store_true",
        help="create the store file if it does not exist (without this, a "
        "missing path is an error — a typo must not serve an empty store "
        "the whole fleet then drains as a no-op)",
    )
    orch_serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface to bind (default: loopback only; pass 0.0.0.0 to "
        "accept remote workers — set a --token when you do)",
    )
    orch_serve.add_argument(
        "--port",
        type=int,
        # Mirrors repro.distributed.protocol.DEFAULT_PORT; literal here so
        # building the parser never imports the orchestration stack.
        default=7479,
        help="TCP port (default: 7479; 0 = ephemeral, printed on startup)",
    )
    orch_serve.add_argument(
        "--token",
        default=None,
        help="shared secret required on every request "
        "(default: $REPRO_ORCH_TOKEN; unset = no auth)",
    )
    orch_serve.add_argument(
        "--fifo-every",
        type=int,
        default=None,
        metavar="N",
        help="bounded-wait interleave of the served store (global across "
        "all remote workers)",
    )

    orch_solver_serve = orch_sub.add_parser(
        "solver-serve",
        help="serve this machine's cores as MILP solver capacity: N "
        "subprocess solver servers behind one TCP socket, for workers "
        "anywhere to reach via --solver-connect",
    )
    orch_solver_serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface to bind (default: loopback only; pass 0.0.0.0 to "
        "accept remote workers — set a --token when you do)",
    )
    orch_solver_serve.add_argument(
        "--port",
        type=int,
        # Mirrors repro.solver.fabric.DEFAULT_SOLVER_PORT; literal here so
        # building the parser never imports the solver stack.
        default=7480,
        help="TCP port (default: 7480; 0 = ephemeral, printed on startup)",
    )
    orch_solver_serve.add_argument(
        "--token",
        default=None,
        help="shared secret required on every request "
        "(default: $REPRO_ORCH_TOKEN; unset = no auth)",
    )
    orch_solver_serve.add_argument(
        "--servers",
        type=int,
        default=0,
        help="subprocess solver servers behind the socket "
        "(default: 0 = one per CPU core)",
    )

    orch_schedule_serve = orch_sub.add_parser(
        "schedule-serve",
        help="long-running scheduling service: accept ad-hoc instances from "
        "many concurrent clients, cache-probe, cost-model admission, "
        "journaled execution (crash-safe resume)",
    )
    _add_db(orch_schedule_serve)
    orch_schedule_serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface to bind (default: loopback only; pass 0.0.0.0 to "
        "accept remote clients — set a --token when you do)",
    )
    orch_schedule_serve.add_argument(
        "--port",
        type=int,
        # Mirrors repro.service.DEFAULT_SCHEDULE_PORT; literal here so
        # building the parser never imports the service stack.
        default=7481,
        help="TCP port (default: 7481; 0 = ephemeral, printed on startup)",
    )
    orch_schedule_serve.add_argument(
        "--token",
        default=None,
        help="shared secret required on every request "
        "(default: $REPRO_ORCH_TOKEN; unset = no auth)",
    )
    orch_schedule_serve.add_argument(
        "--executors",
        type=int,
        default=2,
        help="executor threads draining the request journal (default: 2)",
    )
    orch_schedule_serve.add_argument(
        "--budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="admission budget: reject requests whose cost-model expected "
        "duration exceeds this many seconds (default: admit everything)",
    )
    orch_schedule_serve.add_argument(
        "--retry-errors",
        type=int,
        default=0,
        metavar="N",
        help="re-open an errored journal row for up to N fresh submissions "
        "of the same request (default: 0 = failures stay terminal; op-id "
        "replays never consume the budget)",
    )
    orch_schedule_serve.add_argument(
        "--solver-servers",
        type=int,
        default=0,
        help="subprocess solver servers for MILP-backed solves "
        "(0 = solve MILPs inline)",
    )
    orch_schedule_serve.add_argument(
        "--solver-connect",
        default=None,
        metavar="HOST:PORT[,HOST:PORT...]",
        help="route MILP solves to remote `repro orch solver-serve` "
        "endpoints instead of a local pool (mutually exclusive with "
        "--solver-servers); auth uses the same --token",
    )

    orch_submit = orch_sub.add_parser(
        "submit",
        help="submit instance JSON files to a `repro orch schedule-serve` "
        "service and print the solved results",
    )
    orch_submit.add_argument(
        "instances",
        nargs="+",
        type=Path,
        help="instance JSON paths (Instance.save format, e.g. from "
        "`repro generate`)",
    )
    orch_submit.add_argument(
        "--connect",
        required=True,
        metavar="HOST[:PORT]",
        help="schedule service address (port defaults to 7481; "
        "tcp:// prefix optional)",
    )
    orch_submit.add_argument(
        "--token",
        default=None,
        help="shared secret of the service (default: $REPRO_ORCH_TOKEN)",
    )
    orch_submit.add_argument(
        "--solver",
        choices=sorted(SOLVERS),
        default="lpt",
        help="solver to request (default: lpt)",
    )
    orch_submit.add_argument(
        "--eps",
        type=float,
        default=0.25,
        help="accuracy for eps-aware solvers (default: 0.25)",
    )
    orch_submit.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        help="per-request round-trip timeout in seconds — must cover a "
        "whole queued solve (default: 300)",
    )
    orch_submit.add_argument(
        "--json",
        action="store_true",
        help="print one JSON object per instance instead of a summary line",
    )

    orch_worker = orch_sub.add_parser(
        "worker",
        help="attach to a `repro orch serve` store and drain pending rows "
        "(claim/complete/re-plan loop over TCP; no populate, no planning)",
    )
    orch_worker.add_argument(
        "experiments",
        nargs="*",
        help="restrict claims to these experiments (default: everything pending)",
    )
    orch_worker.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="store server address (tcp:// prefix optional)",
    )
    orch_worker.add_argument(
        "--token",
        default=None,
        help="shared secret of the server (default: $REPRO_ORCH_TOKEN)",
    )
    orch_worker.add_argument(
        "--workers", type=int, default=2, help="worker processes on this machine"
    )
    orch_worker.add_argument(
        "--stale-after",
        type=float,
        default=600.0,
        help="reclaim 'running' rows older than this many seconds (0 = all)",
    )
    orch_worker.add_argument(
        "--no-cache", action="store_true", help="disable the persistent result cache"
    )
    orch_worker.add_argument(
        "--solver-servers",
        type=int,
        default=0,
        help="subprocess solver servers per worker (0 = solve MILPs inline)",
    )
    orch_worker.add_argument(
        "--solver-connect",
        default=None,
        metavar="HOST:PORT[,HOST:PORT...]",
        help="route MILP solves to remote `repro orch solver-serve` "
        "endpoints instead of a local pool (mutually exclusive with "
        "--solver-servers); auth uses the same --token as the store",
    )
    worker_replan = orch_worker.add_mutually_exclusive_group()
    worker_replan.add_argument(
        "--replan-every",
        type=int,
        default=None,
        metavar="N",
        help="online re-planning cadence (default: 5)",
    )
    worker_replan.add_argument(
        "--no-replan",
        action="store_true",
        help="never win re-plan rounds from this fleet",
    )
    orch_worker.add_argument(
        "--fifo-every",
        type=int,
        default=None,
        metavar="N",
        help="override the served store's bounded-wait interleave "
        "(global across the fleet; last writer wins)",
    )

    orch_plan = orch_sub.add_parser(
        "plan",
        help="populate grids, hoist shared prerequisites and assign "
        "cost-model claim priorities — without running anything",
    )
    orch_plan.add_argument(
        "experiments", nargs="+", help="experiment names (e1…e10, smoke)"
    )
    _add_db(orch_plan)
    orch_plan.add_argument("--seed", type=int, default=0)
    plan_mode = orch_plan.add_mutually_exclusive_group()
    plan_mode.add_argument("--quick", action="store_true", help="quick grids (default)")
    plan_mode.add_argument("--full", action="store_true", help="full (slow) grids")
    orch_plan.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker count for the projected-makespan simulation",
    )

    def _add_connect(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--connect",
            default=None,
            metavar="HOST:PORT",
            help="read from a `repro orch serve` server instead of a local file",
        )
        p.add_argument(
            "--token",
            default=None,
            help="shared secret of the server (default: $REPRO_ORCH_TOKEN)",
        )

    orch_status = orch_sub.add_parser("status", help="per-experiment status counts")
    _add_db(orch_status)
    _add_connect(orch_status)
    orch_status.add_argument(
        "--json",
        action="store_true",
        help="print the dashboard snapshot JSON (the /snapshot.json shape) "
        "instead of the table",
    )

    orch_dashboard = orch_sub.add_parser(
        "dashboard",
        help="live HTML dashboard (+ JSON snapshot and Prometheus /metrics) "
        "over a store file or a running `repro orch serve` server",
    )
    orch_dashboard.add_argument(
        "experiments",
        nargs="*",
        help="restrict the grid sections to these store experiment names "
        "(default: everything in the store)",
    )
    _add_db(orch_dashboard)
    _add_connect(orch_dashboard)
    orch_dashboard.add_argument(
        "--http-host",
        default="127.0.0.1",
        help="interface the dashboard binds (default: loopback only)",
    )
    orch_dashboard.add_argument(
        "--http-port",
        type=int,
        # Mirrors repro.observability.dashboard.DEFAULT_DASHBOARD_PORT;
        # literal so building the parser never imports the stack.
        default=7482,
        help="HTTP port (default: 7482; 0 = ephemeral, printed on startup)",
    )
    orch_dashboard.add_argument(
        "--refresh",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="snapshot cache lifetime and page poll interval (default: 0.5)",
    )
    orch_dashboard.add_argument(
        "--spans",
        type=int,
        default=50,
        metavar="N",
        help="journaled trace spans per snapshot (default: 50)",
    )

    orch_priors = orch_sub.add_parser(
        "priors",
        help="ship fitted per-experiment cost scales between stores, so a "
        "fresh store schedules well before its first duration lands",
    )
    priors_sub = orch_priors.add_subparsers(dest="priors_command", required=True)
    priors_export = priors_sub.add_parser(
        "export", help="fit the cost model from this store and write priors JSON"
    )
    _add_db(priors_export)
    priors_export.add_argument(
        "--output",
        "-o",
        type=Path,
        default=Path("priors.json"),
        help="priors JSON path (default: priors.json)",
    )
    priors_import = priors_sub.add_parser(
        "import",
        help="load a priors JSON into this store and re-rank its pending rows",
    )
    _add_db(priors_import)
    priors_import.add_argument("path", type=Path, help="priors JSON file")

    orch_reset = orch_sub.add_parser(
        "reset", help="move rows back to 'pending' (results cleared, cache kept)"
    )
    orch_reset.add_argument("experiments", nargs="*", help="restrict to these experiments")
    _add_db(orch_reset)
    orch_reset.add_argument(
        "--status",
        nargs="+",
        choices=["pending", "running", "done", "error"],
        default=None,
        help="which statuses to touch (reset default: running error; "
        "--delete default: all)",
    )
    orch_reset.add_argument(
        "--clear-cache", action="store_true", help="also drop cached solver results"
    )
    orch_reset.add_argument(
        "--delete", action="store_true", help="delete the grid rows entirely instead"
    )

    orch_export = orch_sub.add_parser(
        "export", help="render completed rows as tables"
    )
    orch_export.add_argument(
        "experiments", nargs="*", help="experiment names (default: all in store)"
    )
    _add_db(orch_export)
    _add_connect(orch_export)
    orch_export.add_argument(
        "--format",
        choices=["text", "markdown", "csv", "latex"],
        default="text",
        dest="fmt",
    )
    orch_export.add_argument(
        "--full",
        action="store_true",
        help="export the full-variant grid (must match the run invocation)",
    )
    orch_export.add_argument(
        "--seed", type=int, default=0, help="grid seed (must match the run invocation)"
    )
    orch_export.add_argument(
        "--output-dir", "-o", type=Path, default=None, help="also write files here"
    )

    return parser


def _load_instance(path: Path) -> Instance:
    if not path.exists():
        raise SystemExit(f"instance file not found: {path}")
    return Instance.load(path)


def _print_result(result: SolverResult) -> None:
    print(f"solver     : {result.solver}")
    print(f"instance   : {result.instance_name}")
    print(f"makespan   : {result.makespan:.6g}")
    print(f"wall time  : {result.wall_time:.3f}s")
    bounds = best_lower_bound(result.schedule.instance)
    print(f"lower bound: {bounds.best:.6g}  (ratio <= {result.makespan / bounds.best:.4f})")
    if result.diagnostics:
        trimmed = {
            key: value
            for key, value in result.diagnostics.items()
            if key not in ("attempts",)
        }
        print(f"diagnostics: {json.dumps(trimmed, default=str)}")


def _cmd_generate(args: argparse.Namespace) -> int:
    kwargs: dict[str, object] = {"seed": args.seed}
    if args.machines is not None:
        kwargs["num_machines"] = args.machines
    if args.jobs is not None:
        kwargs["num_jobs"] = args.jobs
    try:
        generated = generate(args.family, **kwargs)
    except TypeError:
        # Some families do not take num_jobs; retry without it.
        kwargs.pop("num_jobs", None)
        generated = generate(args.family, **kwargs)
    instance = generated.instance
    output = args.output or Path(f"{instance.name}.json")
    instance.save(output)
    print(f"wrote {instance.num_jobs} jobs / {instance.num_bags} bags / "
          f"{instance.num_machines} machines to {output}")
    if generated.known_optimum is not None:
        print(f"known optimum: {generated.known_optimum:.6g}")
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    instance = _load_instance(args.instance)
    result = SOLVERS[args.solver](instance, args.eps)
    _print_result(result)
    if args.output is not None:
        result.schedule.save(args.output)
        print(f"schedule written to {args.output}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    instance = _load_instance(args.instance)
    table = ExperimentTable("compare", f"solver comparison on {instance.name}")
    bounds = best_lower_bound(instance)
    for name in args.solvers:
        result = SOLVERS[name](instance, args.eps)
        table.add_row(
            {
                "solver": name,
                "makespan": result.makespan,
                "ratio_to_lb": result.makespan / bounds.best if bounds.best > 0 else float("nan"),
                "time_s": result.wall_time,
            }
        )
    print(table.to_text())
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    for experiment_id in args.ids:
        table = run_experiment(experiment_id, quick=not args.full, seed=args.seed)
        print(table.to_markdown() if args.markdown else table.to_text())
        print()
        if args.csv_dir is not None:
            args.csv_dir.mkdir(parents=True, exist_ok=True)
            table.save_csv(args.csv_dir / f"{experiment_id.lower()}.csv")
    return 0


def _cmd_constants(args: argparse.Namespace) -> int:
    print(json.dumps(theory_constants_report(args.eps), indent=2))
    return 0


# ----------------------------------------------------------------------
# Orchestration subcommands
# ----------------------------------------------------------------------
def _orch_db_path(args: argparse.Namespace) -> Path:
    import os

    if args.db is not None:
        return args.db
    return Path(os.environ.get("REPRO_ORCH_DB", "orchestration.db"))


def _orch_token(args: argparse.Namespace) -> str | None:
    import os

    return getattr(args, "token", None) or os.environ.get("REPRO_ORCH_TOKEN") or None


def _connect_target(connect: str) -> str:
    return connect if connect.startswith("tcp://") else f"tcp://{connect}"


def _open_cli_store(args: argparse.Namespace):
    """The store a read-only orch command should talk to: remote or local."""
    if getattr(args, "connect", None):
        from .distributed import RemoteStore

        return RemoteStore(_connect_target(args.connect), token=_orch_token(args))
    from .orchestration import ExperimentStore

    return ExperimentStore(_orch_db_path(args))


def _store_label(args: argparse.Namespace) -> str:
    if getattr(args, "connect", None):
        return _connect_target(args.connect)
    return str(_orch_db_path(args))


def _resolve_spec_names(experiments: list[str]) -> list[str]:
    """Map user-typed names to registry names, exiting cleanly on unknowns."""
    from .orchestration import registry

    try:
        return [registry.get_spec(name).name for name in experiments]
    except KeyError as exc:
        # The KeyError message lists the available experiment names.
        raise SystemExit(f"error: {exc.args[0]}") from exc


def _resolve_replan_every(args: argparse.Namespace) -> int:
    if args.no_replan:
        return 0
    if args.replan_every is not None:
        if args.replan_every < 1:
            raise SystemExit("error: --replan-every must be >= 1 (or use --no-replan)")
        return args.replan_every
    from .orchestration.runner import DEFAULT_REPLAN_EVERY

    return DEFAULT_REPLAN_EVERY


def _resolve_solver_connect(args: argparse.Namespace) -> str | None:
    """Validate the local-pool vs fabric choice; returns the connect string."""
    solver_connect = getattr(args, "solver_connect", None)
    if solver_connect and args.solver_servers:
        # Mirrors run_pool's tcp:// guard: an ambiguous topology must fail
        # loudly, not silently pick one interpretation.
        raise SystemExit(
            "error: --solver-servers and --solver-connect are mutually "
            "exclusive — a worker solves on its local pool or on the remote "
            "fabric, not both (run `repro orch solver-serve` on this machine "
            "and list it in --solver-connect to combine them)"
        )
    return solver_connect


def _cmd_orch_run(args: argparse.Namespace) -> int:
    from .orchestration import registry, run_pool

    names = _resolve_spec_names(args.experiments)
    solver_connect = _resolve_solver_connect(args)
    if args.workers > 1:
        timed = [name for name in names if registry.get_spec(name).timing_sensitive]
        if timed:
            print(
                f"warning: {', '.join(sorted(timed))} measure wall-clock time inside "
                "cells; concurrent workers inflate those columns — use --workers 1 "
                "for clean timings",
                file=sys.stderr,
            )
    if args.fifo_every is not None and args.fifo_every < 0:
        raise SystemExit("error: --fifo-every must be >= 0 (0 = pure priority order)")
    replan_every = _resolve_replan_every(args)
    report = run_pool(
        _orch_db_path(args),
        names,
        workers=args.workers,
        quick=not args.full,
        seed=args.seed,
        do_populate=not args.no_populate,
        stale_after=args.stale_after,
        use_cache=not args.no_cache,
        solver_servers=args.solver_servers,
        solver_connect=solver_connect,
        solver_token=args.solver_token or _orch_token(args),
        plan=not args.no_plan,
        replan_every=replan_every,
        fifo_every=args.fifo_every,
    )
    print(
        f"populated {report.populated} new rows, reclaimed {report.reclaimed} stale rows"
    )
    if report.hoisted or report.dependency_edges:
        print(
            f"planner: hoisted {report.hoisted} shared prerequisites, "
            f"gated {report.dependency_edges} cells"
        )
    print(
        f"workers={report.workers} claimed={report.claimed} done={report.done} "
        f"errors={report.errors} replans={report.replans}"
    )
    print(f"wall_time_s={report.wall_time:.3f}")
    if args.save_priors is not None:
        from .orchestration import ExperimentStore
        from .orchestration.scheduling import CostModel, save_priors

        # Own measured history only (no re-blend of imported priors), for
        # the same reason `orch priors export` does it: re-exporting a
        # blend would re-count the same samples on every round-trip.
        with ExperimentStore(_orch_db_path(args)) as store:
            model = CostModel.fit(store, use_priors=False)
        try:
            count = save_priors(model, args.save_priors)
        except OSError as exc:
            raise SystemExit(f"error: cannot write {args.save_priors}: {exc}") from exc
        print(f"saved priors for {count} experiments to {args.save_priors}")
    return 1 if report.errors else 0


def _cmd_orch_serve(args: argparse.Namespace) -> int:
    import signal

    from .distributed import StoreServer

    if not args.db.exists() and not args.create:
        raise SystemExit(
            f"error: store {args.db} does not exist "
            "(pass --create to serve a brand-new empty store)"
        )
    token = _orch_token(args)
    if token is None and args.host not in ("127.0.0.1", "localhost", "::1"):
        print(
            "warning: serving a non-loopback interface without --token — "
            "any network peer can mutate this store",
            file=sys.stderr,
        )
    server = StoreServer(
        args.db,
        host=args.host,
        port=args.port,
        token=token,
        fifo_every=args.fifo_every,
    )
    print(
        f"serving {args.db} on {server.url}"
        + (" (token auth)" if token else " (no auth)"),
        flush=True,
    )

    def _stop(signum: int, frame: object) -> None:
        raise SystemExit(0)

    signal.signal(signal.SIGTERM, _stop)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        print("store server stopped", flush=True)
    return 0


def _cmd_orch_dashboard(args: argparse.Namespace) -> int:
    import signal

    from .observability.dashboard import DashboardServer

    if getattr(args, "connect", None):
        target: "Path | str" = _connect_target(args.connect)
    else:
        target = _orch_db_path(args)
        if not target.exists():
            raise SystemExit(
                f"error: store {target} does not exist "
                "(point --db at a populated store or --connect at a server)"
            )
    server = DashboardServer(
        target,
        token=_orch_token(args),
        host=args.http_host,
        port=args.http_port,
        experiments=args.experiments or None,
        refresh_s=args.refresh,
        span_limit=args.spans,
    )
    print(f"dashboard for {_store_label(args)} on {server.url}", flush=True)

    def _stop(signum: int, frame: object) -> None:
        raise SystemExit(0)

    signal.signal(signal.SIGTERM, _stop)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        print("dashboard stopped", flush=True)
    return 0


def _cmd_racecheck_dump(args: argparse.Namespace) -> int:
    from .analysis import racecheck

    if args.input is not None:
        try:
            payload = json.loads(args.input.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise SystemExit(f"error: cannot read {args.input}: {exc}") from exc
        edges = [
            (str(edge[0]), str(edge[1]))
            for edge in payload.get("edges", [])
            if isinstance(edge, (list, tuple)) and len(edge) == 2
        ]
        violations = [str(v) for v in payload.get("violations", [])]
    else:
        edges = sorted(racecheck.iter_edges())
        violations = [str(v) for v in racecheck.violations()]
    if args.format == "json":
        text = (
            json.dumps(
                {"edges": [list(edge) for edge in edges], "violations": violations},
                indent=2,
            )
            + "\n"
        )
    else:
        text = racecheck.edges_to_dot(edges)
    if args.output is not None:
        args.output.write_text(text, encoding="utf-8")
        print(f"wrote {len(edges)} edge(s) to {args.output}")
    else:
        print(text, end="")
    if violations:
        print(
            f"warning: {len(violations)} recorded violation(s)", file=sys.stderr
        )
    return 0


def _cmd_orch_solver_serve(args: argparse.Namespace) -> int:
    import signal

    from .solver.fabric import SolverFabricServer

    token = _orch_token(args)
    if token is None and args.host not in ("127.0.0.1", "localhost", "::1"):
        print(
            "warning: serving a non-loopback interface without --token — "
            "any network peer can submit solves to this machine",
            file=sys.stderr,
        )
    server = SolverFabricServer(
        host=args.host,
        port=args.port,
        token=token,
        servers=args.servers or None,
    )
    print(
        f"serving {server.num_solver_servers} solver servers on {server.url}"
        + (" (token auth)" if token else " (no auth)"),
        flush=True,
    )

    def _stop(signum: int, frame: object) -> None:
        raise SystemExit(0)

    signal.signal(signal.SIGTERM, _stop)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        print("solver server stopped", flush=True)
    return 0


def _cmd_orch_schedule_serve(args: argparse.Namespace) -> int:
    import signal

    from .service import ScheduleServer
    from .solver.service import solver_service_scope

    token = _orch_token(args)
    if token is None and args.host not in ("127.0.0.1", "localhost", "::1"):
        print(
            "warning: serving a non-loopback interface without --token — "
            "any network peer can submit solves to this machine",
            file=sys.stderr,
        )
    solver_connect = _resolve_solver_connect(args)
    if args.executors < 1:
        raise SystemExit("error: --executors must be >= 1")
    if args.retry_errors < 0:
        raise SystemExit("error: --retry-errors must be >= 0")

    def _stop(signum: int, frame: object) -> None:
        raise SystemExit(0)

    signal.signal(signal.SIGTERM, _stop)
    # The solver scope wraps the whole server lifetime: executor threads
    # pick up the ambient SolverService (pool or fabric) at solve time.
    with solver_service_scope(args.solver_servers, solver_connect, token=token):
        server = ScheduleServer(
            _orch_db_path(args),
            host=args.host,
            port=args.port,
            token=token,
            executors=args.executors,
            budget=args.budget,
            retry_errors=args.retry_errors,
        )
        print(
            f"scheduling service on {server.url} "
            f"(journal {_orch_db_path(args)}, {args.executors} executors"
            + (f", budget {args.budget:g}s" if args.budget is not None else "")
            + (", token auth)" if token else ", no auth)")
            + (
                f"; resumed {server.resumed} in-flight requests"
                if server.resumed
                else ""
            ),
            flush=True,
        )
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.shutdown()
            print("scheduling service stopped", flush=True)
    return 0


def _cmd_orch_submit(args: argparse.Namespace) -> int:
    from .core.errors import ReproError
    from .service import AdmissionError, ScheduleClient

    code = 0
    with ScheduleClient(
        args.connect, token=_orch_token(args), timeout=args.timeout
    ) as client:
        for path in args.instances:
            try:
                instance = Instance.load(path)
            except (OSError, ValueError, KeyError, TypeError, ReproError) as exc:
                print(f"error: cannot load {path}: {exc}", file=sys.stderr)
                code = 1
                continue
            try:
                payload = client.submit(instance, args.solver, eps=args.eps)
            except AdmissionError as exc:
                print(f"{path}: rejected at admission: {exc}", file=sys.stderr)
                code = 1
                continue
            if args.json:
                print(json.dumps({"instance": str(path), **payload}))
            else:
                hit = " (cache hit)" if payload.get("cache_hit") else ""
                print(
                    f"{path}: makespan={payload['makespan']:.6g} "
                    f"solver={payload['solver']} "
                    f"wall_time={payload['wall_time']:.3g}s{hit}"
                )
    return code


def _cmd_orch_worker(args: argparse.Namespace) -> int:
    from .orchestration import run_workers

    names = _resolve_spec_names(args.experiments) if args.experiments else None
    solver_connect = _resolve_solver_connect(args)
    if args.fifo_every is not None and args.fifo_every < 0:
        raise SystemExit("error: --fifo-every must be >= 0 (0 = pure priority order)")
    report = run_workers(
        _connect_target(args.connect),
        names,
        workers=args.workers,
        stale_after=args.stale_after,
        use_cache=not args.no_cache,
        solver_servers=args.solver_servers,
        solver_connect=solver_connect,
        replan_every=_resolve_replan_every(args),
        fifo_every=args.fifo_every,
        token=_orch_token(args),
    )
    print(f"reclaimed {report.reclaimed} stale rows")
    print(
        f"workers={report.workers} claimed={report.claimed} done={report.done} "
        f"errors={report.errors} replans={report.replans}"
    )
    print(f"wall_time_s={report.wall_time:.3f}")
    return 1 if report.errors else 0


def _cmd_orch_plan(args: argparse.Namespace) -> int:
    from .orchestration import ExperimentStore, plan
    from .orchestration.planner import PREREQ_EXPERIMENT

    names = _resolve_spec_names(args.experiments)
    with ExperimentStore(_orch_db_path(args)) as store:
        report = plan(
            store,
            names,
            quick=not args.full,
            seed=args.seed,
            workers=max(1, args.workers),
        )
        table = ExperimentTable("plan", f"schedule plan ({_orch_db_path(args)})")
        for experiment in report.experiments:
            pending = store.fetch_rows(experiment, status="pending")
            gated = sum(1 for row in pending if row.depends_on)
            table.add_row(
                {
                    "experiment": experiment,
                    "pending": len(pending),
                    "est_cost_total": report.estimate_totals.get(experiment, 0.0),
                    "gated_on_prereqs": gated,
                }
            )
        if report.hoisted:
            table.add_row(
                {
                    "experiment": PREREQ_EXPERIMENT,
                    "pending": len(
                        store.fetch_rows(PREREQ_EXPERIMENT, status="pending")
                    ),
                    "est_cost_total": report.estimate_totals.get(PREREQ_EXPERIMENT, 0.0),
                    "gated_on_prereqs": 0,
                }
            )
    table.add_note(
        f"hoisted {len(report.hoisted)} shared prerequisites gating "
        f"{report.dependent_cells} cells"
        + (
            f" ({report.skipped_cached} already satisfied by the cache)"
            if report.skipped_cached
            else ""
        )
    )
    if report.projected_fifo:
        table.add_note(
            f"projected makespan on {max(1, args.workers)} workers "
            f"(cost-model units): fifo={report.projected_fifo:.3g}, "
            f"priority={report.projected_priority:.3g}"
        )
    print(table.to_text())
    return 0


def _cmd_orch_status(args: argparse.Namespace) -> int:
    from .orchestration.export import (
        aggregate_service_telemetry,
        aggregate_solver_telemetry,
        format_service_telemetry,
        format_solver_telemetry,
    )

    if args.json:
        # The same payload the dashboard serves at /snapshot.json, so
        # scripts scrape one contract regardless of transport.
        from .observability.dashboard import build_snapshot

        with _open_cli_store(args) as store:
            print(json.dumps(build_snapshot(store), indent=2, sort_keys=True))
        return 0

    with _open_cli_store(args) as store:
        counts = store.status_counts()
        cache = store.cache_stats()
        completions = store.completion_count()
        epoch = store.replan_epoch()
        priors = len(store.load_cost_priors())
        done_rows = [
            row
            for experiment in sorted(counts)
            if counts[experiment].get("done", 0)
            for row in store.fetch_rows(experiment, status="done")
        ]
        service_tail = store.service_telemetry_tail()
    solver_totals = aggregate_solver_telemetry(done_rows)
    service_totals = aggregate_service_telemetry(done_rows, service_tail)
    table = ExperimentTable("orch", f"store status ({_store_label(args)})")
    for experiment in sorted(counts):
        per_status = counts[experiment]
        table.add_row(
            {
                "experiment": experiment,
                "pending": per_status.get("pending", 0),
                "running": per_status.get("running", 0),
                "done": per_status.get("done", 0),
                "error": per_status.get("error", 0),
            }
        )
    table.add_note(f"cache: {cache['entries']} entries, {cache['hits']} hits")
    table.add_note(
        f"scheduler: {completions} completions, re-plan epoch {epoch}, "
        f"priors for {priors} experiments"
    )
    if solver_totals:
        table.add_note(format_solver_telemetry(solver_totals))
    # "service" is the scheduling service's request journal namespace
    # (repro.service.SERVICE_EXPERIMENT); literal so status never imports
    # the solver stack just to print counts.
    service_counts = counts.get("service")
    if service_counts:
        table.add_note(
            "service queue: "
            f"{service_counts.get('pending', 0)} pending, "
            f"{service_counts.get('running', 0)} running"
        )
    if service_totals:
        table.add_note(format_service_telemetry(service_totals))
    print(table.to_text())
    return 0


def _cmd_orch_priors(args: argparse.Namespace) -> int:
    from .orchestration import ExperimentStore
    from .orchestration.planner import replan
    from .orchestration.scheduling import CostModel, load_priors, save_priors

    with ExperimentStore(_orch_db_path(args)) as store:
        if args.priors_command == "export":
            # Export only this store's own measured history (no blending of
            # previously imported priors): re-exporting a blend would count
            # the same samples again on every export->import round-trip,
            # inflating the weights until stale priors never fade.
            model = CostModel.fit(store, use_priors=False)
            try:
                count = save_priors(model, args.output)
            except OSError as exc:
                raise SystemExit(f"error: cannot write {args.output}: {exc}") from exc
            if not count:
                print(
                    "warning: store has no duration history; "
                    "wrote an empty priors file",
                    file=sys.stderr,
                )
            print(f"wrote priors for {count} experiments to {args.output}")
            return 0
        try:
            imported = load_priors(args.path)
        except ValueError as exc:
            raise SystemExit(f"error: {exc}") from exc
        store.save_cost_priors(imported.to_priors())
        # Re-rank pending rows under history + the just-imported priors so
        # the very next claim benefits (gate boosts recomputed, not wiped).
        summary = replan(store, model=CostModel.fit(store))
        print(
            f"imported priors for {len(imported.per_experiment)} experiments; "
            f"re-ranked {summary['updated']} pending rows"
        )
    return 0


def _cmd_orch_reset(args: argparse.Namespace) -> int:
    from .orchestration import ExperimentStore

    with ExperimentStore(_orch_db_path(args)) as store:
        # Best-effort lowercase so `reset E1` matches stored spec names; rows
        # for experiments no longer in the registry stay addressable too.
        experiments = [name.lower() for name in args.experiments] or None
        if args.delete:
            count = store.delete_rows(experiments, statuses=args.status)
            print(f"deleted {count} rows")
        else:
            count = store.reset(experiments, statuses=args.status or ["running", "error"])
            print(f"reset {count} rows to pending")
        if args.clear_cache:
            print(f"cleared {store.clear_cache()} cache entries")
    return 0


def _cmd_orch_export(args: argparse.Namespace) -> int:
    from .orchestration import registry
    from .orchestration.export import export_experiment

    with _open_cli_store(args) as store:
        in_store = store.experiments()
        # prereq rows are scheduling infrastructure, and "service" rows are
        # the scheduling service's ad-hoc request journal — neither is an
        # experiment table; export them only when named explicitly.
        from .orchestration.planner import PREREQ_EXPERIMENT

        names = args.experiments or [
            name for name in in_store if name not in (PREREQ_EXPERIMENT, "service")
        ]
        if not names:
            print("store is empty; run `repro orch run` first", file=sys.stderr)
            return 1
        code = 0
        for name in names:
            if name == "service":
                from .orchestration.export import render_table, service_table

                print(render_table(service_table(store), args.fmt))
                print()
                continue
            try:
                spec_name = registry.get_spec(name).name
            except KeyError:
                # e.g. rows written by an older code version whose spec is
                # gone from the registry: skip, but keep exporting the rest.
                print(
                    f"warning: {name!r} is not a registered experiment; skipping",
                    file=sys.stderr,
                )
                code = 1
                continue
            if spec_name not in in_store:
                print(
                    f"warning: no rows for {name!r} in this store; skipping",
                    file=sys.stderr,
                )
                code = 1
                continue
            print(
                export_experiment(
                    store,
                    spec_name,
                    args.fmt,
                    quick=not args.full,
                    seed=args.seed,
                    output_dir=args.output_dir,
                )
            )
            print()
    return code


_ORCH_HANDLERS = {
    "run": _cmd_orch_run,
    "serve": _cmd_orch_serve,
    "solver-serve": _cmd_orch_solver_serve,
    "schedule-serve": _cmd_orch_schedule_serve,
    "submit": _cmd_orch_submit,
    "worker": _cmd_orch_worker,
    "plan": _cmd_orch_plan,
    "status": _cmd_orch_status,
    "dashboard": _cmd_orch_dashboard,
    "priors": _cmd_orch_priors,
    "reset": _cmd_orch_reset,
    "export": _cmd_orch_export,
}


def _cmd_orch(args: argparse.Namespace) -> int:
    from .distributed.protocol import ProtocolError
    from .solver.pool import SolverPoolError

    try:
        return _ORCH_HANDLERS[args.orch_command](args)
    except (ProtocolError, SolverPoolError) as exc:
        # Connection refused, auth rejected, server-side store errors, dead
        # solver endpoints: a one-line diagnosis, not a traceback.
        raise SystemExit(f"error: {exc}") from exc


def _cmd_lint(args: argparse.Namespace) -> int:
    from .analysis import RULES, findings_to_json, lint_paths

    if args.list_rules:
        width = max(len(rule.id) for rule in RULES)
        for rule in RULES:
            print(f"{rule.id:<{width}}  {rule.summary}")
        return 0
    package_root = Path(__file__).resolve().parent
    if args.paths:
        paths = [Path(p) for p in args.paths]
        root = Path.cwd()
    else:
        # Default: lint this installation's own source tree, with findings
        # reported relative to the repo root (src/repro/cli.py -> repo).
        paths = [package_root]
        root = package_root.parent.parent
    findings = lint_paths(paths, root=root)
    if args.json:
        print(findings_to_json(findings))
    else:
        for finding in findings:
            print(finding.format())
        print(f"{len(findings)} finding(s)" if findings else "clean: 0 findings")
    return 1 if findings else 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "solve": _cmd_solve,
        "compare": _cmd_compare,
        "experiments": _cmd_experiments,
        "constants": _cmd_constants,
        "lint": _cmd_lint,
        "racecheck-dump": _cmd_racecheck_dump,
        "orch": _cmd_orch,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
