"""Das–Wiese-style PTAS baseline (configuration ILP over *all* bags).

Das and Wiese (ESA 2017) gave the first PTAS for machine scheduling with
bag-constraints.  Their scheme guesses the placement of large jobs with a
dynamic program / configuration ILP in which the configuration alphabet
contains one entry per *(bag, rounded size)* pair for **every** bag — this is
exactly the dependence that makes the running time ``n^{f(1/eps)}`` instead
of ``f(1/eps) * poly(n)`` and that the paper reproduced here removes.

This module implements a faithful-in-spirit baseline (the original has no
public code):

1. dual-approximation binary search over the target makespan ``T``;
2. large jobs (``p_j >= eps*T``) are grouped by bag and geometrically
   rounded size; configurations are multisets of such groups with at most
   one job per bag and height at most ``(1+eps)*T``;
3. an ILP chooses how many machines run each configuration (covering every
   large job and reserving enough residual area for the small jobs);
4. small jobs are added greedily (LPT order, least-loaded conflict-free
   machine), mirroring the greedy/flow step of the original.

The baseline certifies a (1+O(eps)) makespan on the instances it can solve;
its cost explodes with the number of bags, which experiment E3 demonstrates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Iterator

from ..bounds import combined_lower_bound
from ..core.errors import SolverLimitError
from ..core.instance import Instance
from ..core.job import Job
from ..core.result import SolverResult, timed_solver_result
from ..core.schedule import Schedule
from ..milp import LinearModel, SolutionStatus
from ..solver import BackendSpec, get_solver_service
from .list_scheduling import greedy_assign, upper_bound_makespan

__all__ = ["das_wiese_schedule", "DasWieseConfig"]


@dataclass(frozen=True, slots=True)
class DasWieseConfig:
    """Tuning knobs of the Das–Wiese-style baseline.

    ``milp_backend`` is validated against the solver-backend registry at
    construction (see :mod:`repro.solver`).
    """

    eps: float = 0.25
    max_configurations: int = 200_000
    milp_backend: str | BackendSpec = "scipy"
    milp_time_limit: float | None = 60.0
    binary_search_tol: float = 1e-4

    def __post_init__(self) -> None:
        object.__setattr__(self, "milp_backend", BackendSpec.coerce(self.milp_backend))

    @property
    def backend_spec(self) -> BackendSpec:
        assert isinstance(self.milp_backend, BackendSpec)
        return self.milp_backend


def _rounded_size(size: float, eps: float) -> float:
    """Round a size up to the next power of ``1 + eps`` (absolute grid)."""
    if size <= 0:
        return 0.0
    exponent = math.ceil(math.log(size, 1.0 + eps) - 1e-12)
    return (1.0 + eps) ** exponent


def _enumerate_configurations(
    groups: list[tuple[int, float, int]],
    capacity: float,
    max_configurations: int,
) -> Iterator[tuple[tuple[int, ...], float]]:
    """Enumerate configurations as count-vectors over the large-job groups.

    ``groups`` holds ``(bag, rounded size, available count)`` triples.  A
    configuration takes at most one job per *bag* (the bag constraint for
    large jobs) and has total rounded height at most ``capacity``.  Yields
    ``(counts, height)`` pairs; raises :class:`SolverLimitError` when more
    than ``max_configurations`` configurations would be generated.
    """
    emitted = 0
    num_groups = len(groups)
    counts = [0] * num_groups

    def recurse(start: int, height: float, used_bags: set[int]) -> Iterator[tuple[tuple[int, ...], float]]:
        nonlocal emitted
        emitted += 1
        if emitted > max_configurations:
            raise SolverLimitError(
                f"Das–Wiese baseline exceeded max_configurations={max_configurations}"
            )
        yield tuple(counts), height
        for index in range(start, num_groups):
            bag, size, available = groups[index]
            if available <= 0 or bag in used_bags:
                continue
            if height + size > capacity + 1e-9:
                continue
            counts[index] = 1
            used_bags.add(bag)
            yield from recurse(index + 1, height + size, used_bags)
            used_bags.discard(bag)
            counts[index] = 0

    yield from recurse(0, 0.0, set())


def _try_build_schedule(
    instance: Instance, target: float, config: DasWieseConfig
) -> Schedule | None:
    """Attempt to build a schedule of makespan roughly ``(1+O(eps))*target``."""
    eps = config.eps
    threshold = eps * target
    capacity = (1.0 + eps) * target

    large_jobs = [job for job in instance.jobs if job.size >= threshold]
    small_jobs = sorted(
        (job for job in instance.jobs if job.size < threshold),
        key=lambda job: (-job.size, job.id),
    )

    # Group the large jobs by (bag, rounded size).
    group_jobs: dict[tuple[int, float], list[Job]] = {}
    for job in large_jobs:
        key = (job.bag, _rounded_size(job.size, eps))
        group_jobs.setdefault(key, []).append(job)
    groups = [
        (bag, size, len(jobs)) for (bag, size), jobs in sorted(group_jobs.items())
    ]

    configurations = list(
        _enumerate_configurations(groups, capacity, config.max_configurations)
    )

    # ILP over configuration multiplicities.
    model = LinearModel("das-wiese")
    for index, (counts, height) in enumerate(configurations):
        model.add_variable(f"x_{index}", integer=True, lower=0.0, objective=0.0)

    model.add_le(
        "machines",
        {f"x_{index}": 1.0 for index in range(len(configurations))},
        float(instance.num_machines),
    )
    for group_index, (bag, size, available) in enumerate(groups):
        coefficients = {
            f"x_{index}": float(counts[group_index])
            for index, (counts, _) in enumerate(configurations)
            if counts[group_index] > 0
        }
        model.add_ge(f"cover_{group_index}", coefficients, float(available))
    # Residual area for small jobs: machines must leave enough headroom.
    total_small_area = sum(job.size for job in small_jobs)
    if total_small_area > 0:
        model.add_ge(
            "small_area",
            {
                f"x_{index}": capacity - height
                for index, (_, height) in enumerate(configurations)
            },
            total_small_area,
        )
    # Use every machine slot (cheap way to spread residual capacity).
    model.add_ge(
        "use_machines",
        {f"x_{index}": 1.0 for index in range(len(configurations))},
        float(instance.num_machines),
    )

    solution = get_solver_service().solve(
        model, spec=config.backend_spec, time_limit=config.milp_time_limit
    )
    if solution.status not in (SolutionStatus.OPTIMAL, SolutionStatus.FEASIBLE):
        return None

    # Materialise machines from configuration multiplicities.
    machine_configs: list[tuple[int, ...]] = []
    for index, (counts, _) in enumerate(configurations):
        multiplicity = int(round(solution.value(f"x_{index}")))
        machine_configs.extend([counts] * multiplicity)
    machine_configs = machine_configs[: instance.num_machines]
    while len(machine_configs) < instance.num_machines:
        machine_configs.append(tuple([0] * len(groups)))

    remaining: dict[int, list[Job]] = {
        group_index: sorted(group_jobs[(bag, size)], key=lambda job: (-job.size, job.id))
        for group_index, (bag, size, _) in enumerate(groups)
    }
    schedule = Schedule(instance, allow_partial=True)
    for machine, counts in enumerate(machine_configs):
        for group_index, count in enumerate(counts):
            for _ in range(count):
                if remaining[group_index]:
                    job = remaining[group_index].pop()
                    schedule.assign(job.id, machine)
    # Any large job not covered by a slot (possible when coverage exceeded
    # availability elsewhere) falls back to greedy placement.
    leftovers = [job for jobs in remaining.values() for job in jobs]
    if leftovers:
        greedy_assign(instance, sorted(leftovers, key=lambda j: -j.size), schedule=schedule)

    # Small jobs: greedy LPT onto the least loaded conflict-free machine.
    greedy_assign(instance, small_jobs, schedule=schedule)
    return schedule


def das_wiese_schedule(
    instance: Instance, *, eps: float = 0.25, config: DasWieseConfig | None = None
) -> SolverResult:
    """Run the Das–Wiese-style PTAS baseline.

    Performs a geometric binary search on the target makespan; for each
    candidate the configuration ILP is solved and the resulting schedule is
    kept if it is feasible.  The best schedule over the search is returned.
    """
    config = config or DasWieseConfig(eps=eps)
    if config.eps != eps:
        config = replace(config, eps=eps)

    diagnostics: dict[str, object] = {"search_iterations": 0}

    def build() -> Schedule:
        lower = combined_lower_bound(instance)
        upper = upper_bound_makespan(instance)
        if lower <= 0:
            lower = min(upper, 1e-9) or 1e-9
        best: Schedule | None = None
        low, high = lower, upper
        iterations = 0
        tolerance = 1.0 + min(config.eps / 4, 0.02)
        # Geometric binary search with multiplicative tolerance.
        while high / low > tolerance and iterations < 60:
            iterations += 1
            target = math.sqrt(low * high)
            schedule = _try_build_schedule(instance, target, config)
            if schedule is not None and schedule.is_conflict_free() and schedule.is_complete:
                best = schedule
                high = min(target, schedule.makespan())
            else:
                low = target
        if best is None:
            # The bracket was already tight: try the upper end once before
            # falling back to the greedy upper-bound solution.
            iterations += 1
            schedule = _try_build_schedule(instance, high, config)
            if schedule is not None and schedule.is_conflict_free() and schedule.is_complete:
                best = schedule
        if best is None:
            best = greedy_assign(
                instance, sorted(instance.jobs, key=lambda job: -job.size)
            )
        diagnostics["search_iterations"] = iterations
        return best

    return timed_solver_result(
        "das-wiese",
        build,
        params={"eps": config.eps},
        diagnostics=diagnostics,
    )
