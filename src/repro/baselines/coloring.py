"""Coloring-based scheduling baseline.

For conflict graphs that can be colored optimally in polynomial time, the
classical result of Bodlaender, Jansen and Woeginger gives a
2-approximation for scheduling with incompatibilities.  Bag constraints are
the special case of cluster conflict graphs, which are trivially optimally
colorable (color the jobs of each bag ``0, 1, 2, …``).  The scheduler below
follows that scheme: it processes color classes one after the other (largest
area first) and distributes each class LPT-style over the machines, always
respecting previously placed bags.  Jobs of one color class never conflict
with each other, so each class spreads freely; conflicts with earlier classes
are avoided by the feasible-machine rule, which always succeeds because a
bag's jobs occupy pairwise different classes.
"""

from __future__ import annotations

from ..core.conflict_graph import color_classes, greedy_clique_coloring
from ..core.errors import InvalidInstanceError
from ..core.instance import Instance
from ..core.result import SolverResult, timed_solver_result
from ..core.schedule import Schedule

__all__ = ["coloring_schedule"]


def coloring_schedule(instance: Instance) -> SolverResult:
    """Schedule via an optimal coloring of the cluster conflict graph."""

    def build() -> Schedule:
        coloring = greedy_clique_coloring(instance)
        classes = color_classes(coloring)
        schedule = Schedule(instance, allow_partial=True)
        machine_loads = [0.0] * instance.num_machines
        machine_bags: list[set[int]] = [set() for _ in range(instance.num_machines)]

        # Largest-area color class first: this mirrors the Bodlaender et al.
        # analysis where each class is spread as evenly as possible before
        # smaller classes fill the gaps.
        def class_area(job_ids: list[int]) -> float:
            return sum(instance.job(job_id).size for job_id in job_ids)

        ordered_classes = sorted(
            classes.items(), key=lambda item: (-class_area(item[1]), item[0])
        )
        for _, job_ids in ordered_classes:
            jobs = sorted(
                (instance.job(job_id) for job_id in job_ids),
                key=lambda job: (-job.size, job.id),
            )
            for job in jobs:
                candidates = [
                    (machine_loads[machine], machine)
                    for machine in range(instance.num_machines)
                    if job.bag not in machine_bags[machine]
                ]
                if not candidates:
                    raise InvalidInstanceError(
                        f"no conflict-free machine for job {job.id} of bag {job.bag}"
                    )
                _, machine = min(candidates)
                schedule.assign(job.id, machine)
                machine_loads[machine] += job.size
                machine_bags[machine].add(job.bag)
        return schedule

    return timed_solver_result("coloring", build, params={})
