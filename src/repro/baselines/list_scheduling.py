"""Greedy list scheduling with bag-awareness.

The classical Graham list-scheduling rule ("next job goes to the least loaded
machine") extends naturally to bag constraints: the next job goes to the
least loaded machine *that carries no job of its bag*.  Because no bag has
more jobs than machines, such a machine always exists, so the algorithm never
gets stuck.  For conflict graphs that can be colored in polynomial time
(cluster graphs can), this greedy strategy is a 2-approximation
[Bodlaender, Jansen, Woeginger 1994]; it is the upper bound used to seed the
EPTAS's dual-approximation binary search.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Sequence

from ..core.errors import InvalidInstanceError
from ..core.instance import Instance
from ..core.job import Job
from ..core.result import SolverResult, timed_solver_result
from ..core.schedule import Schedule

__all__ = ["greedy_assign", "greedy_schedule", "first_fit_schedule"]


def greedy_assign(
    instance: Instance,
    order: Sequence[Job] | None = None,
    *,
    schedule: Schedule | None = None,
) -> Schedule:
    """Assign jobs in the given order to the least-loaded conflict-free machine.

    Parameters
    ----------
    instance:
        The instance to schedule.
    order:
        Job processing order; defaults to the instance order.  Passing a
        size-descending order turns this into bag-aware LPT.
    schedule:
        An existing (possibly partial) schedule to extend in place.  Machine
        loads and bag occupancies of already-placed jobs are respected.
        A new empty schedule is created when omitted.

    Returns
    -------
    Schedule
        The extended schedule.  Raises :class:`InvalidInstanceError` when a
        job has no conflict-free machine (only possible if a bag has more
        members than machines).
    """
    jobs = list(order) if order is not None else list(instance.jobs)
    schedule = schedule if schedule is not None else Schedule(instance, allow_partial=True)

    machine_loads = schedule.loads().tolist()
    machine_bags: list[set[int]] = [set() for _ in range(instance.num_machines)]
    for job_id, machine in schedule.assignment.items():
        machine_bags[machine].add(instance.job(job_id).bag)

    # A heap of (load, machine) gives O(log m) selection of the least-loaded
    # machine; conflicting machines are popped, stashed and pushed back.
    heap: list[tuple[float, int]] = [
        (machine_loads[machine], machine) for machine in range(instance.num_machines)
    ]
    heapq.heapify(heap)

    for job in jobs:
        if job.id in schedule:
            continue
        stash: list[tuple[float, int]] = []
        chosen: int | None = None
        while heap:
            load, machine = heapq.heappop(heap)
            if load != machine_loads[machine]:
                # Stale heap entry; reinsert the fresh value lazily.
                heapq.heappush(heap, (machine_loads[machine], machine))
                continue
            if job.bag in machine_bags[machine]:
                stash.append((load, machine))
                continue
            chosen = machine
            break
        for entry in stash:
            heapq.heappush(heap, entry)
        if chosen is None:
            raise InvalidInstanceError(
                f"no conflict-free machine for job {job.id} of bag {job.bag}; "
                f"bag has more jobs than machines"
            )
        schedule.assign(job.id, chosen)
        machine_loads[chosen] += job.size
        machine_bags[chosen].add(job.bag)
        heapq.heappush(heap, (machine_loads[chosen], chosen))

    return schedule


def greedy_schedule(
    instance: Instance, *, order: Sequence[Job] | None = None
) -> SolverResult:
    """Bag-aware Graham list scheduling (instance order by default)."""
    return timed_solver_result(
        "greedy-list",
        lambda: greedy_assign(instance, order),
        params={"order": "input" if order is None else "custom"},
    )


def first_fit_schedule(instance: Instance, *, capacity: float | None = None) -> SolverResult:
    """First-fit: place each job on the lowest-index conflict-free machine.

    With ``capacity`` set, a machine is only eligible while its load plus the
    job stays within the capacity; jobs that fit nowhere fall back to the
    least-loaded conflict-free machine.  First-fit is intentionally weaker
    than :func:`greedy_schedule` — it is the "naive placement" that the
    Figure-1 experiment (E1) contrasts against bag-aware algorithms.
    """

    def build() -> Schedule:
        schedule = Schedule(instance, allow_partial=True)
        machine_loads = [0.0] * instance.num_machines
        machine_bags: list[set[int]] = [set() for _ in range(instance.num_machines)]
        for job in instance.jobs:
            placed = False
            for machine in range(instance.num_machines):
                if job.bag in machine_bags[machine]:
                    continue
                if capacity is not None and machine_loads[machine] + job.size > capacity:
                    continue
                schedule.assign(job.id, machine)
                machine_loads[machine] += job.size
                machine_bags[machine].add(job.bag)
                placed = True
                break
            if not placed:
                # Fall back to the least-loaded conflict-free machine.
                candidates = [
                    (machine_loads[machine], machine)
                    for machine in range(instance.num_machines)
                    if job.bag not in machine_bags[machine]
                ]
                if not candidates:
                    raise InvalidInstanceError(
                        f"no conflict-free machine for job {job.id} of bag {job.bag}"
                    )
                _, machine = min(candidates)
                schedule.assign(job.id, machine)
                machine_loads[machine] += job.size
                machine_bags[machine].add(job.bag)
        return schedule

    return timed_solver_result(
        "first-fit",
        build,
        params={"capacity": capacity},
    )


def upper_bound_makespan(instance: Instance) -> float:
    """A quick feasible makespan (greedy LPT order), used to bracket searches."""
    order = sorted(instance.jobs, key=lambda job: -job.size)
    return greedy_assign(instance, order).makespan()
