"""The LPT family: classical LPT, bag-LPT and group-bag-LPT (paper Section 4).

* :func:`lpt_schedule` — bag-aware longest-processing-time-first list
  scheduling (Graham's LPT with the conflict-free-machine rule).
* :func:`bag_lpt` — the paper's *bag-LPT*: given a group of machines and a
  collection of bags whose jobs may run on any machine of the group, process
  bags one at a time; within a bag, the largest job goes to the least loaded
  machine, the second largest to the second least loaded machine, and so on.
  Lemma 8 shows that on machines of equal height the loads never diverge by
  more than the largest job size.
* :func:`group_bag_lpt` — the paper's *group-bag-LPT*: distribute the jobs of
  each bag over machine *groups* (sorted by average load); the largest jobs
  of a bag go to the least loaded group.  Lemma 9 bounds the area each group
  receives.

The latter two are the building blocks the EPTAS uses to place small jobs;
they are exposed here because they are also reasonable standalone heuristics
and are benchmarked as such.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence

from ..core.errors import AlgorithmError
from ..core.instance import Instance
from ..core.job import Job
from ..core.result import SolverResult, timed_solver_result
from ..core.schedule import Schedule
from .list_scheduling import greedy_assign

__all__ = [
    "lpt_schedule",
    "bag_lpt",
    "group_bag_lpt",
    "BagLptResult",
    "GroupAssignment",
]


def lpt_schedule(instance: Instance) -> SolverResult:
    """Bag-aware LPT: jobs in non-increasing size order, least-loaded feasible machine."""
    order = sorted(instance.jobs, key=lambda job: (-job.size, job.id))
    return timed_solver_result(
        "lpt",
        lambda: greedy_assign(instance, order),
        params={"order": "size-descending"},
    )


# ----------------------------------------------------------------------
# bag-LPT
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class BagLptResult:
    """Result of :func:`bag_lpt`.

    ``assignment`` maps job id to the machine identifier it was placed on;
    ``loads`` gives the final load per machine identifier.
    """

    assignment: dict[int, Hashable]
    loads: dict[Hashable, float]

    def max_load(self) -> float:
        return max(self.loads.values()) if self.loads else 0.0

    def min_load(self) -> float:
        return min(self.loads.values()) if self.loads else 0.0

    def spread(self) -> float:
        """Difference between the highest and lowest machine load."""
        return self.max_load() - self.min_load() if self.loads else 0.0


def bag_lpt(
    machines: Sequence[Hashable],
    initial_loads: Mapping[Hashable, float],
    bags: Sequence[Sequence[Job]],
) -> BagLptResult:
    """The paper's bag-LPT on a group of machines.

    Every bag must have at most ``len(machines)`` jobs; the algorithm
    implicitly pads bags with zero-size dummy jobs (they are simply not
    assigned).  Jobs of one bag end up on pairwise distinct machines, so the
    result never violates the bag constraint *within* the given bags.

    Parameters
    ----------
    machines:
        Identifiers of the machines in the group.
    initial_loads:
        Current load of each machine (missing machines default to ``0``).
    bags:
        One sequence of jobs per bag.  The jobs may come from the same
        instance-bag or be artificial merged jobs (the EPTAS uses both).
    """
    machine_list = list(machines)
    if not machine_list:
        if any(len(bag) for bag in bags):
            raise AlgorithmError("bag-LPT called with jobs but no machines")
        return BagLptResult(assignment={}, loads={})
    loads: dict[Hashable, float] = {
        machine: float(initial_loads.get(machine, 0.0)) for machine in machine_list
    }
    assignment: dict[int, Hashable] = {}
    for bag_index, bag in enumerate(bags):
        if len(bag) > len(machine_list):
            raise AlgorithmError(
                f"bag-LPT: bag #{bag_index} has {len(bag)} jobs but the group "
                f"only has {len(machine_list)} machines"
            )
        # Largest job onto least loaded machine, 2nd largest onto 2nd least
        # loaded, and so on (ties broken deterministically by identifier).
        sorted_jobs = sorted(bag, key=lambda job: (-job.size, job.id))
        sorted_machines = sorted(machine_list, key=lambda machine: (loads[machine], str(machine)))
        for job, machine in zip(sorted_jobs, sorted_machines):
            assignment[job.id] = machine
            loads[machine] += job.size
    return BagLptResult(assignment=assignment, loads=loads)


# ----------------------------------------------------------------------
# group-bag-LPT
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class GroupAssignment:
    """Result of :func:`group_bag_lpt`.

    ``jobs_per_group[g]`` lists, per bag, the jobs of that bag routed to
    group ``g`` (flattened); ``area_per_group[g]`` is the total processing
    time routed to group ``g``.
    """

    jobs_per_group: dict[int, list[Job]]
    bags_per_group: dict[int, list[list[Job]]]
    area_per_group: dict[int, float]


def group_bag_lpt(
    group_sizes: Mapping[int, int],
    group_average_loads: Mapping[int, float],
    bags: Sequence[Sequence[Job]],
) -> GroupAssignment:
    """The paper's group-bag-LPT: route bag jobs to machine groups.

    For every bag (in the given order): sort its jobs by non-increasing
    size and the groups by non-decreasing *current* average load, then give
    the first ``|M_1|`` jobs to the least loaded group, the next ``|M_2|``
    jobs to the next group, and so on.  Average loads are updated after each
    bag so later bags see the area already routed.

    Parameters
    ----------
    group_sizes:
        ``group index -> number of machines in the group``.
    group_average_loads:
        ``group index -> current average machine load of the group``.
    bags:
        Jobs of each bag (each bag must fit into the total machine count).

    Returns
    -------
    GroupAssignment
        Which jobs go to which group, keeping the per-bag structure so that
        bag-LPT can be run inside each group afterwards.
    """
    total_capacity = sum(group_sizes.values())
    averages: dict[int, float] = {
        group: float(group_average_loads.get(group, 0.0)) for group in group_sizes
    }
    jobs_per_group: dict[int, list[Job]] = {group: [] for group in group_sizes}
    bags_per_group: dict[int, list[list[Job]]] = {group: [] for group in group_sizes}
    area_per_group: dict[int, float] = {group: 0.0 for group in group_sizes}

    for bag_index, bag in enumerate(bags):
        if len(bag) > total_capacity:
            raise AlgorithmError(
                f"group-bag-LPT: bag #{bag_index} has {len(bag)} jobs but all "
                f"groups together only have {total_capacity} machines"
            )
        sorted_jobs = sorted(bag, key=lambda job: (-job.size, job.id))
        sorted_groups = sorted(group_sizes, key=lambda group: (averages[group], group))
        cursor = 0
        for group in sorted_groups:
            if cursor >= len(sorted_jobs):
                break
            take = min(group_sizes[group], len(sorted_jobs) - cursor)
            chunk = sorted_jobs[cursor : cursor + take]
            cursor += take
            jobs_per_group[group].extend(chunk)
            bags_per_group[group].append(list(chunk))
            chunk_area = sum(job.size for job in chunk)
            area_per_group[group] += chunk_area
            averages[group] += chunk_area / group_sizes[group]
        if cursor < len(sorted_jobs):  # pragma: no cover - guarded above
            raise AlgorithmError("group-bag-LPT failed to place every job of a bag")
    return GroupAssignment(
        jobs_per_group=jobs_per_group,
        bags_per_group=bags_per_group,
        area_per_group=area_per_group,
    )


def small_job_lpt_schedule(instance: Instance) -> SolverResult:
    """Standalone scheduler built from group-bag-LPT + bag-LPT.

    Schedules the *whole* instance with the Section-4 machinery alone (all
    machines form one group at height 0).  This only makes sense when every
    bag fits on the machines — which instance validation guarantees — and is
    benchmarked as the "small-jobs-only heuristic" ablation.
    """

    def build() -> Schedule:
        bags = [list(members) for members in instance.bags().values()]
        result = bag_lpt(
            list(range(instance.num_machines)),
            {machine: 0.0 for machine in range(instance.num_machines)},
            bags,
        )
        schedule = Schedule(instance, allow_partial=True)
        for job_id, machine in result.assignment.items():
            schedule.assign(job_id, int(machine))
        return schedule

    return timed_solver_result("bag-lpt", build, params={})
