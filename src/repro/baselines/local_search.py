"""Local-search post-optimisation for bag-constrained schedules.

The paper's algorithm (and every baseline here) produces a feasible schedule
whose quality is certified analytically or empirically.  In practice a cheap
local search squeezes out the remaining slack: it repeatedly tries to

* **move** a job from the busiest machine to a less loaded machine, or
* **swap** a job of the busiest machine with a smaller job elsewhere,

accepting only changes that keep the schedule feasible (no two jobs of one
bag on a machine) and strictly reduce the makespan (or, as a tie-break,
reduce the load of the busiest machine).  This is the classical
move/swap neighbourhood of makespan scheduling restricted to bag-feasible
moves; it terminates because the sorted load vector decreases
lexicographically with every accepted step.

The local search is exposed both as a standalone improver
(:func:`improve_schedule`) and as a solver wrapper
(:func:`local_search_schedule`) that runs bag-aware LPT first and then
improves it — a strong, fast baseline that the ablation experiment (E10)
and the examples use.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.instance import Instance
from ..core.result import SolverResult, timed_solver_result
from ..core.schedule import Schedule
from .list_scheduling import greedy_assign

__all__ = ["LocalSearchStats", "improve_schedule", "local_search_schedule"]


@dataclass(slots=True)
class LocalSearchStats:
    """Counters describing one local-search run."""

    moves: int = 0
    swaps: int = 0
    rounds: int = 0
    initial_makespan: float = 0.0
    final_makespan: float = 0.0

    @property
    def improvement(self) -> float:
        """Absolute makespan reduction achieved."""
        return self.initial_makespan - self.final_makespan

    def to_dict(self) -> dict[str, float | int]:
        return {
            "moves": self.moves,
            "swaps": self.swaps,
            "rounds": self.rounds,
            "initial_makespan": self.initial_makespan,
            "final_makespan": self.final_makespan,
            "improvement": self.improvement,
        }


def _machine_state(instance: Instance, schedule: Schedule):
    loads = schedule.loads().tolist()
    bags: list[set[int]] = [set() for _ in range(instance.num_machines)]
    jobs_on: list[list[int]] = [[] for _ in range(instance.num_machines)]
    for job_id, machine in schedule.assignment.items():
        bags[machine].add(instance.job(job_id).bag)
        jobs_on[machine].append(job_id)
    return loads, bags, jobs_on


def improve_schedule(
    schedule: Schedule,
    *,
    max_rounds: int = 1000,
    tolerance: float = 1e-12,
) -> LocalSearchStats:
    """Improve a feasible schedule in place with bag-feasible moves and swaps.

    Parameters
    ----------
    schedule:
        A complete, feasible schedule; it is modified in place.
    max_rounds:
        Safety cap on improvement rounds (each round applies one accepted
        move or swap).  The search usually stalls long before the cap.
    tolerance:
        Minimum required decrease of the busiest-machine load.

    Returns
    -------
    LocalSearchStats
        Counters, including the initial and final makespan.
    """
    instance = schedule.instance
    schedule.validate(require_complete=True)
    loads, bags, jobs_on = _machine_state(instance, schedule)
    stats = LocalSearchStats(initial_makespan=max(loads) if loads else 0.0)

    for _ in range(max_rounds):
        stats.rounds += 1
        busiest = max(range(len(loads)), key=lambda m: loads[m])
        busiest_load = loads[busiest]
        improved = False

        # --- try moves: job from the busiest machine to a lighter machine.
        for job_id in sorted(jobs_on[busiest], key=lambda j: -instance.job(j).size):
            job = instance.job(job_id)
            for target in sorted(range(len(loads)), key=lambda m: loads[m]):
                if target == busiest:
                    continue
                if job.bag in bags[target]:
                    continue
                if loads[target] + job.size >= busiest_load - tolerance:
                    continue
                # accept the move
                schedule.assign(job_id, target)
                loads[busiest] -= job.size
                loads[target] += job.size
                bags[busiest].discard(job.bag)
                bags[target].add(job.bag)
                jobs_on[busiest].remove(job_id)
                jobs_on[target].append(job_id)
                stats.moves += 1
                improved = True
                break
            if improved:
                break
        if improved:
            continue

        # --- try swaps: exchange a big job on the busiest machine with a
        #     smaller job elsewhere.
        for job_id in sorted(jobs_on[busiest], key=lambda j: -instance.job(j).size):
            job = instance.job(job_id)
            for target in sorted(range(len(loads)), key=lambda m: loads[m]):
                if target == busiest:
                    continue
                for other_id in sorted(jobs_on[target], key=lambda j: instance.job(j).size):
                    other = instance.job(other_id)
                    delta = job.size - other.size
                    if delta <= tolerance:
                        break  # other jobs on this machine are only bigger
                    # feasibility after the swap
                    if job.bag != other.bag:
                        if job.bag in bags[target]:
                            continue
                        if other.bag in bags[busiest]:
                            continue
                    new_busiest = busiest_load - delta
                    new_target = loads[target] + delta
                    if max(new_busiest, new_target) >= busiest_load - tolerance:
                        continue
                    schedule.swap(job_id, other_id)
                    loads[busiest] = new_busiest
                    loads[target] = new_target
                    bags[busiest].discard(job.bag)
                    bags[busiest].add(other.bag)
                    bags[target].discard(other.bag)
                    bags[target].add(job.bag)
                    jobs_on[busiest].remove(job_id)
                    jobs_on[busiest].append(other_id)
                    jobs_on[target].remove(other_id)
                    jobs_on[target].append(job_id)
                    stats.swaps += 1
                    improved = True
                    break
                if improved:
                    break
            if improved:
                break
        if not improved:
            break

    stats.final_makespan = max(loads) if loads else 0.0
    return stats


def local_search_schedule(
    instance: Instance, *, max_rounds: int = 1000
) -> SolverResult:
    """Bag-aware LPT followed by move/swap local search."""
    diagnostics: dict[str, object] = {}

    def build() -> Schedule:
        order = sorted(instance.jobs, key=lambda job: (-job.size, job.id))
        schedule = greedy_assign(instance, order)
        stats = improve_schedule(schedule, max_rounds=max_rounds)
        diagnostics.update(stats.to_dict())
        return schedule

    return timed_solver_result(
        "lpt+local-search",
        build,
        params={"max_rounds": max_rounds},
        diagnostics=diagnostics,
    )
