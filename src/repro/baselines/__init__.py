"""Baseline solvers the paper's EPTAS is compared against."""

from .list_scheduling import first_fit_schedule, greedy_assign, greedy_schedule, upper_bound_makespan
from .lpt import (
    BagLptResult,
    GroupAssignment,
    bag_lpt,
    group_bag_lpt,
    lpt_schedule,
    small_job_lpt_schedule,
)
from .coloring import coloring_schedule
from .das_wiese import DasWieseConfig, das_wiese_schedule
from .local_search import LocalSearchStats, improve_schedule, local_search_schedule

__all__ = [
    "BagLptResult",
    "DasWieseConfig",
    "GroupAssignment",
    "LocalSearchStats",
    "bag_lpt",
    "coloring_schedule",
    "das_wiese_schedule",
    "first_fit_schedule",
    "greedy_assign",
    "greedy_schedule",
    "group_bag_lpt",
    "improve_schedule",
    "local_search_schedule",
    "lpt_schedule",
    "small_job_lpt_schedule",
    "upper_bound_makespan",
]
