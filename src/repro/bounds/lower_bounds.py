"""Combinatorial and LP-based lower bounds on the optimal makespan.

The bounds implemented here are valid for machine scheduling with
bag-constraints on identical machines (``P | bag | C_max``); most of them are
also the classical ``P || C_max`` bounds, which remain valid because adding
constraints can only increase the optimum.

* :func:`area_lower_bound` — total work divided by the number of machines.
* :func:`max_job_lower_bound` — the largest single processing time.
* :func:`pairwise_lower_bound` — the pigeonhole bound: among the ``t*m + 1``
  largest jobs some machine receives at least ``t + 1`` of them.
* :func:`bag_cardinality_lower_bound` — a bag-specific bound: when a bag has
  exactly ``m`` jobs every machine hosts one of them, so any extra job stacks
  on top of some bag job.
* :func:`lp_relaxation_lower_bound` — the LP relaxation of the assignment
  formulation (uses :func:`scipy.optimize.linprog`); intended for small
  instances and for cross-checking the combinatorial bounds.
* :func:`best_lower_bound` / :func:`combined_lower_bound` — the maximum of
  the cheap combinatorial bounds (and optionally the LP bound).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

import numpy as np
from scipy import optimize, sparse

from ..core.instance import Instance

__all__ = [
    "LowerBoundReport",
    "area_lower_bound",
    "bag_cardinality_lower_bound",
    "best_lower_bound",
    "combined_lower_bound",
    "lp_relaxation_lower_bound",
    "max_job_lower_bound",
    "pairwise_lower_bound",
]


def area_lower_bound(instance: Instance) -> float:
    """Total processing time divided by the number of machines.

    Every schedule distributes the total work over ``m`` machines, so the
    busiest machine carries at least the average load.
    """
    if instance.num_machines == 0:
        return float("inf")
    return instance.total_work / instance.num_machines


def max_job_lower_bound(instance: Instance) -> float:
    """The largest processing time: some machine must run that job."""
    return instance.max_job_size


def pairwise_lower_bound(instance: Instance, *, max_level: int = 3) -> float:
    """Pigeonhole bound over the largest jobs.

    For every ``t >= 1`` with ``t*m + 1 <= n``: among the ``t*m + 1`` largest
    jobs, some machine receives at least ``t + 1`` of them, hence the optimum
    is at least the sum of the ``t + 1`` *smallest* jobs among those
    ``t*m + 1`` largest.  For ``t = 1`` this is the classical
    ``p_(m) + p_(m+1)`` bound.  ``max_level`` caps ``t`` (the bound rarely
    improves past small ``t``).
    """
    sizes = np.sort(instance.sizes)[::-1]
    n = sizes.size
    m = instance.num_machines
    best = 0.0
    for t in range(1, max_level + 1):
        top = t * m + 1
        if top > n:
            break
        # The t+1 smallest among the `top` largest jobs are at positions
        # top-1, top-2, ..., top-1-t of the descending-sorted array.
        best = max(best, float(sizes[top - 1 - t : top].sum()))
    return best


def bag_cardinality_lower_bound(instance: Instance) -> float:
    """Bag-specific bound exploiting *full* bags.

    If some bag ``B`` contains exactly ``m`` jobs, then in every feasible
    schedule each machine hosts exactly one job of ``B``.  Consequently, if
    the instance contains any job outside ``B``, that job shares a machine
    with some job of ``B``, so the optimum is at least
    ``min(p_j : j in B) + min(p_j : j not in B)``.

    If some bag contains more than ``m`` jobs, no feasible schedule exists
    and the bound is ``+inf``.
    """
    m = instance.num_machines
    best = 0.0
    bag_members = instance.bags()
    for bag, members in bag_members.items():
        if len(members) > m:
            return float("inf")
        if len(members) == m and instance.num_jobs > m:
            min_inside = min(job.size for job in members)
            min_outside = min(
                (job.size for job in instance.jobs if job.bag != bag), default=0.0
            )
            best = max(best, min_inside + min_outside)
    return best


def combined_lower_bound(instance: Instance) -> float:
    """Maximum of the cheap combinatorial bounds (no LP solve)."""
    return max(
        area_lower_bound(instance),
        max_job_lower_bound(instance),
        pairwise_lower_bound(instance),
        bag_cardinality_lower_bound(instance),
    )


def lp_relaxation_lower_bound(instance: Instance) -> float:
    """LP relaxation of the machine-assignment formulation.

    Variables ``x[i, j] in [0, 1]`` give the fraction of job ``j`` placed on
    machine ``i``; ``T`` is the makespan.  Constraints: every job fully
    assigned, per-machine load at most ``T``, and at most one (fractional)
    job of each bag per machine.  The model has ``n*m + 1`` variables and is
    only intended for small to medium instances; the combinatorial bounds are
    used by default in the solvers.
    """
    n = instance.num_jobs
    m = instance.num_machines
    if n == 0:
        return 0.0
    sizes = instance.sizes
    jobs = instance.jobs

    num_x = n * m

    def xvar(i: int, j: int) -> int:
        return i * n + j

    t_var = num_x
    num_vars = num_x + 1

    # Objective: minimise T.
    c = np.zeros(num_vars)
    c[t_var] = 1.0

    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    b_ub: list[float] = []
    row = 0

    # Machine load constraints: sum_j p_j x[i, j] - T <= 0.
    for i in range(m):
        for j in range(n):
            rows.append(row)
            cols.append(xvar(i, j))
            vals.append(float(sizes[j]))
        rows.append(row)
        cols.append(t_var)
        vals.append(-1.0)
        b_ub.append(0.0)
        row += 1

    # Bag constraints: sum_{j in B} x[i, j] <= 1 for every machine and bag.
    index_of = {job.id: idx for idx, job in enumerate(jobs)}
    for _, members in instance.bags().items():
        if len(members) <= 1:
            continue
        member_indices = [index_of[job.id] for job in members]
        for i in range(m):
            for j in member_indices:
                rows.append(row)
                cols.append(xvar(i, j))
                vals.append(1.0)
            b_ub.append(1.0)
            row += 1

    a_ub = sparse.coo_matrix((vals, (rows, cols)), shape=(row, num_vars)).tocsr()

    # Assignment equalities: sum_i x[i, j] = 1.
    eq_rows: list[int] = []
    eq_cols: list[int] = []
    eq_vals: list[float] = []
    for j in range(n):
        for i in range(m):
            eq_rows.append(j)
            eq_cols.append(xvar(i, j))
            eq_vals.append(1.0)
    a_eq = sparse.coo_matrix((eq_vals, (eq_rows, eq_cols)), shape=(n, num_vars)).tocsr()
    b_eq = np.ones(n)

    bounds = [(0.0, 1.0)] * num_x + [(0.0, None)]
    result = optimize.linprog(
        c, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq, bounds=bounds, method="highs"
    )
    if not result.success:
        # The LP relaxation is always feasible when every bag fits on the
        # machines; failure indicates an unsatisfiable bag, mirror the
        # combinatorial bound behaviour.
        return float("inf")
    return float(result.fun)


@dataclass(frozen=True, slots=True)
class LowerBoundReport:
    """All individual bounds for an instance plus the best one."""

    area: float
    max_job: float
    pairwise: float
    bag_cardinality: float
    lp_relaxation: float | None
    best: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "area": self.area,
            "max_job": self.max_job,
            "pairwise": self.pairwise,
            "bag_cardinality": self.bag_cardinality,
            "lp_relaxation": self.lp_relaxation,
            "best": self.best,
        }


def best_lower_bound(instance: Instance, *, use_lp: bool = False) -> LowerBoundReport:
    """Compute all lower bounds and return them together with the maximum.

    Parameters
    ----------
    use_lp:
        Also solve the LP relaxation (costlier; off by default).  The LP
        bound dominates the area and max-job bounds but not necessarily the
        pigeonhole bound, so the maximum of all of them is reported.
    """
    area = area_lower_bound(instance)
    max_job = max_job_lower_bound(instance)
    pairwise = pairwise_lower_bound(instance)
    bag_card = bag_cardinality_lower_bound(instance)
    lp_bound: float | None = None
    candidates = [area, max_job, pairwise, bag_card]
    if use_lp:
        lp_bound = lp_relaxation_lower_bound(instance)
        candidates.append(lp_bound)
    best = max(candidates) if candidates else 0.0
    if math.isinf(best):
        best = float("inf")
    return LowerBoundReport(
        area=area,
        max_job=max_job,
        pairwise=pairwise,
        bag_cardinality=bag_card,
        lp_relaxation=lp_bound,
        best=best,
    )
