"""Lower bounds on the optimal makespan of bag-constrained instances.

Lower bounds drive the dual-approximation binary search of the EPTAS (they
give the initial bracket together with a greedy upper bound) and serve as the
reference value in the approximation-ratio experiments whenever computing the
exact optimum is too expensive.
"""

from .lower_bounds import (
    area_lower_bound,
    bag_cardinality_lower_bound,
    best_lower_bound,
    combined_lower_bound,
    lp_relaxation_lower_bound,
    max_job_lower_bound,
    pairwise_lower_bound,
    LowerBoundReport,
)

__all__ = [
    "LowerBoundReport",
    "area_lower_bound",
    "bag_cardinality_lower_bound",
    "best_lower_bound",
    "combined_lower_bound",
    "lp_relaxation_lower_bound",
    "max_job_lower_bound",
    "pairwise_lower_bound",
]
