"""Discrete-event cluster simulator for schedule execution and fault injection.

The paper motivates bag constraints with fault-tolerant parallel systems:
replicas of a service must run on distinct machines so that a single machine
failure cannot take the whole service down (Section 1.1).  This simulator
executes a computed schedule on a cluster of identical machines, optionally
injects machine failures, and reports

* the makespan actually realised (which equals the schedule's makespan when
  nothing fails),
* per-bag *survivability*: how many bags lose all / some / none of their
  jobs under the injected failures, and
* per-machine utilisation traces.

It is a substrate for the examples and for experiment E9; no claim of the
paper depends on it.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..core.instance import Instance
from ..core.schedule import Schedule

__all__ = ["MachineFailure", "SimulationReport", "ClusterSimulator", "simulate_schedule"]


@dataclass(frozen=True, slots=True)
class MachineFailure:
    """A machine that fails at a given time and stays down."""

    machine: int
    time: float


@dataclass(slots=True)
class SimulationReport:
    """Outcome of one simulation run."""

    completed_jobs: list[int] = field(default_factory=list)
    failed_jobs: list[int] = field(default_factory=list)
    makespan: float = 0.0
    machine_busy_time: dict[int, float] = field(default_factory=dict)
    bags_fully_completed: int = 0
    bags_partially_completed: int = 0
    bags_fully_lost: int = 0
    events: list[tuple[float, str]] = field(default_factory=list)

    @property
    def num_completed(self) -> int:
        return len(self.completed_jobs)

    @property
    def num_failed(self) -> int:
        return len(self.failed_jobs)

    def survivability(self) -> float:
        """Fraction of bags that kept at least one completed job."""
        total = self.bags_fully_completed + self.bags_partially_completed + self.bags_fully_lost
        if total == 0:
            return 1.0
        return (self.bags_fully_completed + self.bags_partially_completed) / total

    def utilisation(self, horizon: float | None = None) -> float:
        """Average machine utilisation over the given horizon (default makespan)."""
        if not self.machine_busy_time:
            return 0.0
        horizon = horizon or max(self.makespan, 1e-12)
        return float(np.mean([busy / horizon for busy in self.machine_busy_time.values()]))

    def to_dict(self) -> dict[str, float | int]:
        return {
            "completed": self.num_completed,
            "failed": self.num_failed,
            "makespan": self.makespan,
            "bags_fully_completed": self.bags_fully_completed,
            "bags_partially_completed": self.bags_partially_completed,
            "bags_fully_lost": self.bags_fully_lost,
            "survivability": self.survivability(),
            "utilisation": self.utilisation(),
        }


@dataclass(frozen=True, slots=True)
class _Event:
    """Internal event of the discrete-event loop (ordered by time, then kind)."""

    time: float
    order: int
    kind: str  # "finish" or "failure"
    machine: int
    job_id: int | None = None

    def sort_key(self) -> tuple[float, int, int]:
        # Failures at time t pre-empt job completions at the same instant:
        # a job finishing exactly when its machine dies is considered lost,
        # which is the conservative interpretation.
        kind_rank = 0 if self.kind == "failure" else 1
        return (self.time, kind_rank, self.order)


class ClusterSimulator:
    """Executes a schedule on a cluster with optional machine failures.

    Jobs on one machine run sequentially in LPT order (the order does not
    matter for the makespan, but a deterministic order makes failure
    outcomes reproducible).  A machine failure cancels the job currently
    running on it and every job still queued there.
    """

    def __init__(self, instance: Instance, schedule: Schedule) -> None:
        schedule.validate(require_complete=True)
        self.instance = instance
        self.schedule = schedule

    def run(self, failures: Iterable[MachineFailure] = ()) -> SimulationReport:
        report = SimulationReport()
        failures = sorted(failures, key=lambda f: f.time)
        failure_time: dict[int, float] = {}
        for failure in failures:
            failure_time.setdefault(failure.machine, failure.time)

        # Per-machine queues in deterministic LPT order.
        queues: dict[int, list[int]] = {m: [] for m in range(self.instance.num_machines)}
        for job_id, machine in self.schedule.assignment.items():
            queues[machine].append(job_id)
        for machine in queues:
            queues[machine].sort(key=lambda job_id: (-self.instance.job(job_id).size, job_id))

        completed: set[int] = set()
        failed: set[int] = set()
        busy: dict[int, float] = {m: 0.0 for m in queues}
        makespan = 0.0

        for machine, queue in queues.items():
            cutoff = failure_time.get(machine, float("inf"))
            clock = 0.0
            for job_id in queue:
                size = self.instance.job(job_id).size
                finish = clock + size
                if finish <= cutoff + 1e-12 and clock < cutoff:
                    completed.add(job_id)
                    busy[machine] += size
                    clock = finish
                    report.events.append((finish, f"finish job {job_id} on machine {machine}"))
                else:
                    failed.add(job_id)
                    report.events.append(
                        (min(cutoff, clock), f"lose job {job_id} on machine {machine}")
                    )
            makespan = max(makespan, min(clock, cutoff) if cutoff < float("inf") else clock)

        report.completed_jobs = sorted(completed)
        report.failed_jobs = sorted(failed)
        report.makespan = makespan
        report.machine_busy_time = busy

        for _, members in self.instance.bags().items():
            done = sum(1 for job in members if job.id in completed)
            if done == len(members):
                report.bags_fully_completed += 1
            elif done == 0:
                report.bags_fully_lost += 1
            else:
                report.bags_partially_completed += 1
        report.events.sort()
        return report

    def run_with_random_failures(
        self,
        *,
        num_failures: int,
        seed: int = 0,
        failure_window: tuple[float, float] | None = None,
    ) -> SimulationReport:
        """Fail ``num_failures`` distinct machines at random times."""
        rng = np.random.default_rng(seed)
        num_machines = self.instance.num_machines
        num_failures = min(num_failures, num_machines)
        machines = rng.choice(num_machines, size=num_failures, replace=False)
        if failure_window is None:
            failure_window = (0.0, max(self.schedule.makespan(), 1e-9))
        times = rng.uniform(failure_window[0], failure_window[1], size=num_failures)
        return self.run(
            MachineFailure(machine=int(m), time=float(t)) for m, t in zip(machines, times)
        )


def simulate_schedule(
    instance: Instance,
    schedule: Schedule,
    failures: Sequence[MachineFailure] = (),
) -> SimulationReport:
    """Convenience wrapper: build a simulator and run it once."""
    return ClusterSimulator(instance, schedule).run(failures)
