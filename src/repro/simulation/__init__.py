"""Discrete-event cluster simulator (the paper's fault-tolerance motivation)."""

from .cluster import (
    ClusterSimulator,
    MachineFailure,
    SimulationReport,
    simulate_schedule,
)

__all__ = [
    "ClusterSimulator",
    "MachineFailure",
    "SimulationReport",
    "simulate_schedule",
]
