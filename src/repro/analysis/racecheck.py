"""Runtime lock-order and store-thread checker for the distributed stack.

The stack's thread-safety rests on two conventions that no test asserts
directly:

* **Lock ordering** — the RPC dispatch lock, the scheduling service's store
  lock, the fabric client lock, the solver pool lock and the cache memo
  lock are only ever nested in one direction.  A new code path that nests
  two of them the other way round deadlocks only under load, typically in
  CI's chaos jobs, where the hang is a timeout rather than a diagnosis.
* **Store thread confinement** — an :class:`ExperimentStore` is used from
  the thread that opened it, *except* for owners that pass
  ``check_same_thread=False`` and serialize every access themselves (the
  store server under its dispatch lock, the scheduling service under its
  ``_store_lock``).  SQLite does not reliably detect violations of that
  contract; it corrupts cursors instead.

This module makes both conventions checkable at runtime.  It is **opt-in**
and zero-cost when off: the lock factories (:func:`tracked_lock`,
:func:`tracked_rlock`, :func:`tracked_condition`) return plain ``threading``
primitives unless checking was enabled *before* the lock was created, and
:func:`wrap_store_connection` returns the raw sqlite3 connection unchanged.

Enable it with the ``REPRO_RACECHECK=1`` environment variable (the tier-1
suite's ``conftest`` honours it, which is how CI runs the whole suite under
the checker) or programmatically::

    from repro.analysis import racecheck
    racecheck.enable()
    ...build servers/fabrics/pools...
    racecheck.disable()

Violations raise :class:`LockOrderViolation` / :class:`StoreThreadViolation`
at the offending acquisition or store access — the stack trace *is* the
diagnosis — and are also recorded in :func:`violations` for post-hoc
assertions.

Ordering is tracked per lock *name* (lock class), not per instance, the way
kernel lockdep tracks lock classes: every ``RpcServer`` dispatch lock is
one node called ``rpc.dispatch``.  An edge ``A -> B`` is recorded when a
thread acquires a ``B`` while holding an ``A``; a cycle in that graph is a
potential deadlock even if this particular run never interleaved into it.
Reentrant acquisition of the same name (RLocks, conditions sharing their
owner's lock) is never an edge.
"""

from __future__ import annotations

import atexit
import json
import os
import threading
from typing import Any, Iterable, Iterator

__all__ = [
    "ENV_RACECHECK",
    "ENV_RACECHECK_DUMP",
    "LockOrderViolation",
    "StoreThreadViolation",
    "RacecheckViolation",
    "enable",
    "disable",
    "enabled",
    "session",
    "reset",
    "violations",
    "tracked_lock",
    "tracked_rlock",
    "tracked_condition",
    "guard_store",
    "wrap_store_connection",
    "dump_edges",
    "edges_to_dot",
]

ENV_RACECHECK = "REPRO_RACECHECK"

# When set to a path, the process writes its observed lock-order graph
# there at exit (JSON: {"edges": [[src, dst], ...], "violations": [...]}).
# CI's smoke jobs set it on one worker and archive the rendered DOT via
# ``repro racecheck-dump``.
ENV_RACECHECK_DUMP = "REPRO_RACECHECK_DUMP"


class RacecheckViolation(RuntimeError):
    """Base class for everything the race checker can flag."""


class LockOrderViolation(RacecheckViolation):
    """Two lock classes were nested in both directions (potential deadlock)."""


class StoreThreadViolation(RacecheckViolation):
    """A store was touched from a foreign thread outside its sanctioned path."""


# ----------------------------------------------------------------------
# Global checker state
# ----------------------------------------------------------------------
_enabled = False
_state_lock = threading.Lock()
# Lock-class ordering graph: edges[a] = {b, ...} means "a held while
# acquiring b was observed".  Example stacks recorded for diagnostics.
_edges: dict[str, set[str]] = {}
_violations: list[RacecheckViolation] = []
# Per-thread stack of held lock names (with counts for reentrancy).
_held = threading.local()


def enabled() -> bool:
    """Whether checking is on (explicitly or via ``REPRO_RACECHECK``)."""
    return _enabled or os.environ.get(ENV_RACECHECK, "") not in ("", "0")


def enable() -> None:
    """Turn checking on for locks/stores created from now on."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn checking off (already-created tracked locks keep recording)."""
    global _enabled
    _enabled = False


def reset() -> None:
    """Drop the recorded ordering graph and violation list."""
    with _state_lock:
        _edges.clear()
        _violations.clear()


def violations() -> list[RacecheckViolation]:
    """Violations recorded so far (raised ones are recorded too)."""
    with _state_lock:
        return list(_violations)


class session:
    """Context manager: enable checking, reset state, disable on exit."""

    def __enter__(self) -> "session":
        reset()
        enable()
        return self

    def __exit__(self, *exc_info: object) -> None:
        disable()


def _held_stack() -> list[list[Any]]:
    stack = getattr(_held, "stack", None)
    if stack is None:
        stack = _held.stack = []
    return stack


def _reaches(start: str, target: str) -> bool:
    """DFS over the ordering graph: is ``target`` reachable from ``start``?"""
    seen = {start}
    frontier = [start]
    while frontier:
        node = frontier.pop()
        if node == target:
            return True
        for nxt in _edges.get(node, ()):
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return False


def _record_violation(exc: RacecheckViolation) -> None:
    _violations.append(exc)


def _note_acquire(name: str) -> None:
    """Record intent to acquire ``name`` with the current thread's held set."""
    stack = _held_stack()
    for entry in stack:
        if entry[0] == name:
            return  # reentrant / sibling same-class: never an edge
    with _state_lock:
        for entry in stack:
            held = entry[0]
            _edges.setdefault(held, set()).add(name)
            # A cycle means some thread can nest name -> ... -> held while
            # we nest held -> name: the classic inversion.
            if _reaches(name, held):
                exc = LockOrderViolation(
                    f"lock order inversion: acquiring {name!r} while holding "
                    f"{held!r}, but the reverse nesting "
                    f"({name!r} -> ... -> {held!r}) was already observed"
                )
                _record_violation(exc)
                raise exc


def _push(name: str) -> None:
    stack = _held_stack()
    for entry in stack:
        if entry[0] == name:
            entry[1] += 1
            return
    stack.append([name, 1])


def _pop(name: str, *, all_counts: bool = False) -> int:
    """Drop one (or all) holds of ``name``; returns the count released."""
    stack = _held_stack()
    for index, entry in enumerate(stack):
        if entry[0] == name:
            released = entry[1] if all_counts else 1
            entry[1] -= released
            if entry[1] <= 0:
                del stack[index]
            return released
    return 0


def _holds(name: str) -> bool:
    return any(entry[0] == name for entry in _held_stack())


# ----------------------------------------------------------------------
# Tracked primitives
# ----------------------------------------------------------------------
class _TrackedLockBase:
    """Order-tracking wrapper around a ``threading`` lock primitive.

    Exposes the ``_release_save`` / ``_acquire_restore`` / ``_is_owned``
    trio, so a plain :class:`threading.Condition` can be built directly on
    top of a tracked lock (the fabric builds its endpoint conditions on the
    shared client RLock this way).
    """

    _reentrant = False

    def __init__(self, name: str, inner: Any) -> None:
        self.name = name
        self._inner = inner

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        if blocking:
            _note_acquire(self.name)
        got = self._inner.acquire(blocking, timeout)
        if got:
            _push(self.name)
        return got

    def release(self) -> None:
        self._inner.release()
        _pop(self.name)

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def locked(self) -> bool:
        probe = getattr(self._inner, "locked", None)
        return bool(probe()) if callable(probe) else _holds(self.name)

    def held_by_current_thread(self) -> bool:
        """Best-effort: does *this* thread hold the lock right now?"""
        return _holds(self.name)

    # --- Condition-compatibility surface -------------------------------
    def _release_save(self) -> Any:
        # Condition.wait: fully release (all reentrant counts) and remember.
        count = _pop(self.name, all_counts=True)
        inner_state = (
            self._inner._release_save()  # type: ignore[attr-defined]
            if hasattr(self._inner, "_release_save")
            else (self._inner.release() or None)
        )
        return (inner_state, count)

    def _acquire_restore(self, state: Any) -> None:
        inner_state, count = state
        if hasattr(self._inner, "_acquire_restore"):
            self._inner._acquire_restore(inner_state)  # type: ignore[attr-defined]
        else:
            self._inner.acquire()
        for _ in range(max(1, count)):
            _push(self.name)

    def _is_owned(self) -> bool:
        if hasattr(self._inner, "_is_owned"):
            return bool(self._inner._is_owned())  # type: ignore[attr-defined]
        # Plain Lock (Condition's fallback probe): owned iff we can't acquire.
        if self._inner.acquire(False):
            self._inner.release()
            return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return f"<tracked {type(self._inner).__name__} {self.name!r}>"


class _TrackedLock(_TrackedLockBase):
    pass


class _TrackedRLock(_TrackedLockBase):
    _reentrant = True


def tracked_lock(name: str) -> Any:
    """A ``threading.Lock`` — order-tracked when checking is enabled."""
    if not enabled():
        return threading.Lock()
    return _TrackedLock(name, threading.Lock())


def tracked_rlock(name: str) -> Any:
    """A ``threading.RLock`` — order-tracked when checking is enabled."""
    if not enabled():
        return threading.RLock()
    return _TrackedRLock(name, threading.RLock())


def tracked_condition(name: str) -> threading.Condition:
    """A standalone ``threading.Condition`` over a tracked RLock."""
    if not enabled():
        return threading.Condition()
    return threading.Condition(_TrackedRLock(name, threading.RLock()))


# ----------------------------------------------------------------------
# Store thread confinement
# ----------------------------------------------------------------------
# store id -> (owner thread ident, shared, guard lock or None).  Keyed by
# id() with explicit unregistration on close — the store owns the entry's
# lifetime exactly like it owns the connection's.
_stores: dict[int, list[Any]] = {}


def guard_store(store: Any, lock: Any) -> None:
    """Declare ``lock`` as the sanctioned serializer for ``store``.

    Cross-thread access to a ``check_same_thread=False`` store is legal only
    while the current thread holds this (tracked) lock.
    """
    if not enabled():
        return
    with _state_lock:
        entry = _stores.get(id(store))
        if entry is not None:
            entry[2] = lock


class _TrackedConnection:
    """Thin sqlite3 connection proxy that checks thread confinement.

    Every ``execute``/``executescript``/``executemany``/``close`` first runs
    the confinement check; everything else delegates untouched.
    """

    def __init__(self, conn: Any, store: Any) -> None:
        object.__setattr__(self, "_conn", conn)
        object.__setattr__(self, "_store_id", id(store))

    def _check(self) -> None:
        entry = _stores.get(self._store_id)
        if entry is None:
            return
        owner, shared, guard = entry
        ident = threading.get_ident()
        if ident == owner:
            return
        if not shared:
            exc: StoreThreadViolation = StoreThreadViolation(
                "ExperimentStore opened with check_same_thread=True was "
                f"accessed from thread {threading.current_thread().name!r} "
                "(not its opener)"
            )
            with _state_lock:
                _record_violation(exc)
            raise exc
        if guard is not None and hasattr(guard, "held_by_current_thread"):
            if guard.held_by_current_thread():
                return
            exc = StoreThreadViolation(
                "cross-thread access to a shared ExperimentStore from "
                f"thread {threading.current_thread().name!r} without holding "
                f"its sanctioned guard lock {getattr(guard, 'name', guard)!r}"
            )
            with _state_lock:
                _record_violation(exc)
            raise exc
        # No checkable guard registered (yet): a check_same_thread=False
        # store whose owner never declared a serializer. Tolerated — the
        # owner may serialize some other way — but only the guarded path
        # gives the hard guarantee.

    def execute(self, *args: Any, **kwargs: Any) -> Any:
        self._check()
        return self._conn.execute(*args, **kwargs)

    def executemany(self, *args: Any, **kwargs: Any) -> Any:
        self._check()
        return self._conn.executemany(*args, **kwargs)

    def executescript(self, *args: Any, **kwargs: Any) -> Any:
        self._check()
        return self._conn.executescript(*args, **kwargs)

    def close(self) -> None:
        self._check()
        _stores.pop(self._store_id, None)
        self._conn.close()

    def __getattr__(self, name: str) -> Any:
        return getattr(self._conn, name)

    def __setattr__(self, name: str, value: Any) -> None:
        setattr(self._conn, name, value)


def wrap_store_connection(conn: Any, store: Any, *, shared: bool) -> Any:
    """Register ``store`` and wrap its connection; identity when disabled.

    Called by :class:`~repro.orchestration.store.ExperimentStore` at
    construction.  ``shared`` mirrors ``not check_same_thread``: only shared
    stores may be touched cross-thread, and then only under the guard lock
    registered via :func:`guard_store`.
    """
    if not enabled():
        return conn
    with _state_lock:
        _stores[id(store)] = [threading.get_ident(), shared, None]
    return _TrackedConnection(conn, store)


def iter_edges() -> Iterator[tuple[str, str]]:
    """Snapshot of the observed ordering edges (diagnostics / tests)."""
    with _state_lock:
        for src, dsts in _edges.items():
            for dst in sorted(dsts):
                yield (src, dst)


def dump_edges(path: "str | os.PathLike[str]") -> int:
    """Write the observed lock-order graph to ``path`` as JSON.

    The payload is ``{"edges": [[src, dst], ...], "violations": [str, ...]}``
    — the input format of ``repro racecheck-dump``, which renders it to DOT
    for CI artifacts.  Returns the number of edges written.
    """
    edges = sorted(iter_edges())
    payload = {
        "edges": [list(edge) for edge in edges],
        "violations": [str(violation) for violation in violations()],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return len(edges)


def edges_to_dot(edges: Iterable[tuple[str, str]]) -> str:
    """Render ordering edges as a Graphviz digraph (lock classes as nodes)."""
    lines = ["digraph lock_order {", "  rankdir=LR;", "  node [shape=box];"]
    for src, dst in sorted(set(tuple(edge) for edge in edges)):
        lines.append(f'  "{src}" -> "{dst}";')
    lines.append("}")
    return "\n".join(lines) + "\n"


def _dump_at_exit() -> None:  # pragma: no cover - exercised via subprocess
    target = os.environ.get(ENV_RACECHECK_DUMP)
    if not target:
        return
    try:
        dump_edges(target)
    except OSError:
        # Best-effort: a failed diagnostics dump must not turn a clean
        # worker exit into a traceback.
        pass


if os.environ.get(ENV_RACECHECK_DUMP):
    atexit.register(_dump_at_exit)
