"""Static and dynamic invariant checking for the repro stack.

Two halves:

* :mod:`repro.analysis.lint` — ``repro lint``, an AST checker for the
  repo-specific conventions the distributed stack depends on (op-id
  threading, store-layer SQLite, framed sockets, ownership-guarded
  closes, re-parent watches, pure cache keys, …).
* :mod:`repro.analysis.racecheck` — an opt-in runtime lock-order and
  store-thread-confinement checker (``REPRO_RACECHECK=1``) that the
  concurrency layers build their locks through.
"""

from __future__ import annotations

from .lint import (
    RULES,
    Finding,
    LintRule,
    findings_to_json,
    iter_python_files,
    lint_paths,
    lint_project,
)
from .racecheck import (
    ENV_RACECHECK,
    LockOrderViolation,
    RacecheckViolation,
    StoreThreadViolation,
    enabled,
    guard_store,
    tracked_condition,
    tracked_lock,
    tracked_rlock,
    wrap_store_connection,
)

__all__ = [
    "RULES",
    "Finding",
    "LintRule",
    "findings_to_json",
    "iter_python_files",
    "lint_paths",
    "lint_project",
    "ENV_RACECHECK",
    "LockOrderViolation",
    "RacecheckViolation",
    "StoreThreadViolation",
    "enabled",
    "guard_store",
    "tracked_condition",
    "tracked_lock",
    "tracked_rlock",
    "wrap_store_connection",
]
