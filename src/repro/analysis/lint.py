"""``repro lint``: AST invariant checks for the repo's own conventions.

Generic linters catch generic bugs.  The bugs that actually bit this repo —
orphaned solver-server processes, the cache layer closing caller-owned
store connections, wire calls that would double-execute on retry — were
violations of *repo-specific* conventions that no off-the-shelf tool knows
about.  Each rule here encodes one of those conventions; the module scans
``src/repro`` with nothing but the stdlib ``ast`` module.

Rules (ids are stable; see ``docs/static-analysis.md`` for the motivating
incident behind each):

====================  ====================================================
``wire-op-id``        request payloads must thread an op id
``sqlite-connect``    ``sqlite3.connect`` only inside ``orchestration/store.py``
``raw-socket-send``   raw ``socket.send*`` only inside ``distributed/protocol.py``
``cache-owned-close`` the cache layer never closes caller-owned stores
``reparent-watch``    spawned server processes must watch for re-parenting
``wall-clock-key``    no wall clock in cache-key/fingerprint construction
``telemetry-json``    telemetry dataclass fields and metric values JSON-safe
``claim-pairing``     ``claim_next`` callers must complete/fail/reclaim
``dispatch-except``   server dispatch must re-raise or reply with a typed error
``roster-parity``     CLI solver table and service roster must agree
``store-thread``      ``check_same_thread=False`` stores need a serializer
====================  ====================================================

Suppress a single finding by putting ``# repro-lint: disable=<rule-id>``
(or ``disable=all``) on the flagged line or the line above it.
"""

from __future__ import annotations

import ast
import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

__all__ = [
    "Finding",
    "LintRule",
    "RULES",
    "lint_paths",
    "lint_project",
    "iter_python_files",
    "findings_to_json",
]

# JSON-safe field annotation atoms for telemetry dataclasses (rule
# telemetry-json).  Unions/Optionals/containers of these are fine too.
_JSON_SAFE_NAMES = {"str", "int", "float", "bool", "None", "Any", "object"}
_JSON_SAFE_CONTAINERS = {"dict", "list", "tuple", "Dict", "List", "Tuple", "Mapping", "Sequence", "Optional", "Union"}

_WALL_CLOCK_CALLS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
}

_KEY_FUNCTION_SUFFIXES = ("_key", "_digest", "_fingerprint", "_hash")
_KEY_FUNCTION_NAMES = {"cache_key", "instance_digest", "backend_fingerprint", "params_hash"}


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"


@dataclass
class ModuleContext:
    """One parsed module plus the path facts rules scope themselves by."""

    path: Path
    relpath: str  # posix, relative to the lint root when possible
    tree: ast.Module
    lines: list[str]

    def suppressed(self, rule: str, line: int) -> bool:
        for candidate in (line, line - 1):
            if 1 <= candidate <= len(self.lines):
                text = self.lines[candidate - 1]
                marker = text.rfind("repro-lint:")
                if marker == -1:
                    continue
                directive = text[marker:]
                if "disable=" in directive:
                    targets = directive.split("disable=", 1)[1].split()[0]
                    names = {name.strip() for name in targets.split(",")}
                    if rule in names or "all" in names:
                        return True
        return False


@dataclass(frozen=True)
class LintRule:
    """A named check: per-module, or project-wide (cross-module)."""

    id: str
    summary: str
    check_module: Callable[[ModuleContext], Iterator[Finding]] | None = None
    check_project: Callable[[Sequence[ModuleContext]], Iterator[Finding]] | None = None


def _walk_with_stack(tree: ast.AST) -> Iterator[tuple[ast.AST, list[ast.AST]]]:
    """Yield every node along with its ancestor stack (outermost first)."""
    stack: list[ast.AST] = []

    def visit(node: ast.AST) -> Iterator[tuple[ast.AST, list[ast.AST]]]:
        yield node, list(stack)
        stack.append(node)
        for child in ast.iter_child_nodes(node):
            yield from visit(child)
        stack.pop()

    yield from visit(tree)


def _dict_str_keys(node: ast.Dict) -> set[str]:
    return {
        key.value
        for key in node.keys
        if isinstance(key, ast.Constant) and isinstance(key.value, str)
    }


def _call_name(node: ast.Call) -> str | None:
    """Trailing identifier of the called object (``a.b.c()`` -> ``c``)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _receiver_name(node: ast.Call) -> str | None:
    """Identifier the method is called on (``sock.sendall()`` -> ``sock``)."""
    func = node.func
    if not isinstance(func, ast.Attribute):
        return None
    value = func.value
    if isinstance(value, ast.Name):
        return value.id
    if isinstance(value, ast.Attribute):
        return value.attr
    return None


def _enclosing(stack: Sequence[ast.AST], *types: type) -> ast.AST | None:
    for node in reversed(stack):
        if isinstance(node, types):
            return node
    return None


def _finding(ctx: ModuleContext, rule: str, node: ast.AST, message: str) -> Finding:
    return Finding(
        rule=rule,
        path=ctx.relpath,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0) + 1,
        message=message,
    )


# ----------------------------------------------------------------------
# wire-op-id
# ----------------------------------------------------------------------
def _wire_mutating_methods() -> frozenset[str]:
    """Method names that mutate server state, from the protocol itself.

    Sourced from ``MUTATING_METHODS`` so new store methods are covered the
    moment they are declared; the fabric's ``solve`` and the service's
    ``submit`` execute work on the server side, so they count too.
    """
    extra = frozenset({"solve", "submit"})
    try:
        from ..distributed.protocol import MUTATING_METHODS
    except Exception:  # lint must degrade, not crash, on a broken tree
        return extra
    return frozenset(MUTATING_METHODS) | extra


def _check_wire_op_id(ctx: ModuleContext) -> Iterator[Finding]:
    """A mutating wire request payload must carry an op id.

    A payload is a dict literal with "id" and "method" keys.  Read-only
    methods (a constant method name outside the protocol's mutating set)
    are exempt.  Compliant shapes for the rest: an ``"op"`` key in the
    literal itself (the fabric's per-item op id), or a later
    ``payload["op"] = ...`` in the same function (the clients attach it for
    mutating methods / ``op=True`` calls).  Without one, a retried request
    whose reply was lost re-executes the mutation — the exact bug class
    op-id replay exists to kill.
    """
    mutating = _wire_mutating_methods()
    for node, stack in _walk_with_stack(ctx.tree):
        if not isinstance(node, ast.Dict):
            continue
        keys = _dict_str_keys(node)
        if "id" not in keys or "method" not in keys:
            continue
        if "op" in keys:
            continue
        method_value = next(
            (
                value
                for key, value in zip(node.keys, node.values)
                if isinstance(key, ast.Constant) and key.value == "method"
            ),
            None,
        )
        if (
            isinstance(method_value, ast.Constant)
            and isinstance(method_value.value, str)
            and method_value.value not in mutating
        ):
            continue  # read-only probe; retries are harmless
        function = _enclosing(stack, ast.FunctionDef, ast.AsyncFunctionDef)
        if function is None:
            yield _finding(
                ctx,
                "wire-op-id",
                node,
                "wire request payload built outside a function never threads "
                'an op id (no ``payload["op"] = ...`` is possible)',
            )
            continue
        # The name this dict is bound to, if the statement is an assignment.
        bound: set[str] = set()
        statement = _enclosing(stack, ast.Assign, ast.AnnAssign)
        if isinstance(statement, ast.Assign):
            bound = {t.id for t in statement.targets if isinstance(t, ast.Name)}
        elif isinstance(statement, ast.AnnAssign) and isinstance(
            statement.target, ast.Name
        ):
            bound = {statement.target.id}
        threads_op = False
        for sub in ast.walk(function):
            if not isinstance(sub, ast.Assign):
                continue
            for target in sub.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in bound
                    and isinstance(target.slice, ast.Constant)
                    and target.slice.value == "op"
                ):
                    threads_op = True
        if not threads_op:
            yield _finding(
                ctx,
                "wire-op-id",
                node,
                "wire request payload never threads an op id: add an \"op\" "
                'key or assign ``<payload>["op"] = ...`` in the same function '
                "so lost-reply retries replay instead of re-executing",
            )


# ----------------------------------------------------------------------
# sqlite-connect
# ----------------------------------------------------------------------
def _check_sqlite_connect(ctx: ModuleContext) -> Iterator[Finding]:
    """Only ``orchestration/store.py`` may open SQLite connections.

    Every connection the repo opens must inherit the store layer's WAL
    mode, timeout, migration and thread-confinement decisions; a stray
    ``sqlite3.connect`` silently opts out of all four.
    """
    if ctx.relpath.endswith("orchestration/store.py"):
        return
    sqlite_aliases = {"sqlite3"}
    connect_aliases: set[str] = set()
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "sqlite3":
                    sqlite_aliases.add(alias.asname or alias.name)
        elif isinstance(node, ast.ImportFrom) and node.module == "sqlite3":
            for alias in node.names:
                if alias.name == "connect":
                    connect_aliases.add(alias.asname or alias.name)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        flagged = (
            isinstance(func, ast.Attribute)
            and func.attr == "connect"
            and isinstance(func.value, ast.Name)
            and func.value.id in sqlite_aliases
        ) or (isinstance(func, ast.Name) and func.id in connect_aliases)
        if flagged:
            yield _finding(
                ctx,
                "sqlite-connect",
                node,
                "sqlite3.connect outside orchestration/store.py: open stores "
                "through ExperimentStore so WAL/timeout/migrations/thread "
                "rules apply",
            )


# ----------------------------------------------------------------------
# raw-socket-send
# ----------------------------------------------------------------------
def _check_raw_socket_send(ctx: ModuleContext) -> Iterator[Finding]:
    """Raw socket sends belong to the frame helpers in ``protocol.py``.

    Everything on the wire is a length-prefixed JSON frame; a stray
    ``sock.send(...)`` can emit a partial write or an unframed blob that
    desynchronises the peer's stream.  ``send_frame`` / ``send_encoded``
    are the only sanctioned exits.
    """
    if ctx.relpath.endswith("distributed/protocol.py"):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
            continue
        attr = node.func.attr
        receiver = _receiver_name(node) or ""
        if attr == "sendall" or (attr in ("send", "sendto") and "sock" in receiver):
            yield _finding(
                ctx,
                "raw-socket-send",
                node,
                f"raw socket .{attr}() outside distributed/protocol.py: use "
                "send_frame()/send_encoded() so framing stays in one place",
            )


# ----------------------------------------------------------------------
# cache-owned-close
# ----------------------------------------------------------------------
def _check_cache_owned_close(ctx: ModuleContext) -> Iterator[Finding]:
    """Modules with the ``_active_owned`` convention must guard ``.close()``.

    The cache layer installs caller-owned stores (a remote worker's
    RemoteStore shares its claim connection); closing one severs the
    owner's live connection mid-drain — the PR 8 bug.  Any ``.close()`` in
    such a module must sit under an ``if`` that consults ownership.
    """
    module_has_convention = any(
        isinstance(node, ast.Assign)
        and any(
            isinstance(t, ast.Name) and t.id == "_active_owned" for t in node.targets
        )
        for node in ctx.tree.body
    )
    if not module_has_convention:
        return
    for node, stack in _walk_with_stack(ctx.tree):
        if (
            not isinstance(node, ast.Call)
            or not isinstance(node.func, ast.Attribute)
            or node.func.attr != "close"
        ):
            continue
        guarded = False
        for ancestor in stack:
            if isinstance(ancestor, ast.If):
                test_src = ast.unparse(ancestor.test)
                if "owned" in test_src:
                    guarded = True
        if not guarded:
            yield _finding(
                ctx,
                "cache-owned-close",
                node,
                ".close() in an ownership-convention module without an "
                "ownership guard: only stores this module opened may be "
                "closed here (caller-owned stores stay open)",
            )


# ----------------------------------------------------------------------
# reparent-watch
# ----------------------------------------------------------------------
def _check_reparent_watch(ctx: ModuleContext) -> Iterator[Finding]:
    """Subprocess server targets must poll ``os.getppid()``.

    A solver server whose parent dies without cleanup re-parents to init
    and spins forever — the PR 7 orphan bug.  Every ``Process(target=f)``
    spawn must point at a target that watches its parent pid.
    """
    functions = {
        node.name: node
        for node in ast.walk(ctx.tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(node)
        if name != "Process":
            continue
        target_name: str | None = None
        for keyword in node.keywords:
            if keyword.arg == "target" and isinstance(keyword.value, ast.Name):
                target_name = keyword.value.id
        if target_name is None:
            yield _finding(
                ctx,
                "reparent-watch",
                node,
                "Process(...) spawn without a resolvable local target= "
                "function: the linter cannot verify the re-parent watch",
            )
            continue
        target = functions.get(target_name)
        has_watch = target is not None and any(
            isinstance(sub, ast.Call) and _call_name(sub) == "getppid"
            for sub in ast.walk(target)
        )
        if not has_watch:
            yield _finding(
                ctx,
                "reparent-watch",
                node,
                f"Process(target={target_name}) whose target never checks "
                "os.getppid(): an orphaned child will outlive its parent "
                "forever (add the re-parent watch loop)",
            )


# ----------------------------------------------------------------------
# wall-clock-key
# ----------------------------------------------------------------------
def _check_wall_clock_key(ctx: ModuleContext) -> Iterator[Finding]:
    """No wall clock in cache-key / digest / fingerprint construction.

    A timestamp folded into a content key makes every entry a permanent
    miss (or worse, a rare stale hit).  Key functions must be pure in the
    content they hash.
    """
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        name = node.name
        if not (
            name in _KEY_FUNCTION_NAMES or name.endswith(_KEY_FUNCTION_SUFFIXES)
        ):
            continue
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call) or not isinstance(
                sub.func, ast.Attribute
            ):
                continue
            receiver = _receiver_name(sub) or ""
            if (receiver, sub.func.attr) in _WALL_CLOCK_CALLS:
                yield _finding(
                    ctx,
                    "wall-clock-key",
                    sub,
                    f"wall-clock call {receiver}.{sub.func.attr}() inside key "
                    f"function {name}(): content keys must not depend on "
                    "when they were computed",
                )


# ----------------------------------------------------------------------
# telemetry-json
# ----------------------------------------------------------------------
def _annotation_is_json_safe(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        return node.value is None or isinstance(node.value, str)
    if isinstance(node, ast.Name):
        return node.id in _JSON_SAFE_NAMES or node.id in _JSON_SAFE_CONTAINERS
    if isinstance(node, ast.Attribute):  # typing.Any etc.
        return node.attr in _JSON_SAFE_NAMES or node.attr in _JSON_SAFE_CONTAINERS
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return _annotation_is_json_safe(node.left) and _annotation_is_json_safe(
            node.right
        )
    if isinstance(node, ast.Subscript):
        if not _annotation_is_json_safe(node.value):
            return False
        inner = node.slice
        parts = inner.elts if isinstance(inner, ast.Tuple) else [inner]
        return all(
            isinstance(part, ast.Constant) and part.value is Ellipsis
            or _annotation_is_json_safe(part)
            for part in parts
        )
    return False


# Metric-emission helpers of repro.observability.metrics: their value
# argument (positional 2 or the amount=/value=/delta= keyword) must be a
# number — the registry raises TypeError on stringly data, but only at
# runtime on the instrumented hot path.
_METRIC_EMIT_NAMES = frozenset({"counter", "gauge", "gauge_add", "observe"})


def _metric_value_arg(call: ast.Call) -> ast.expr | None:
    if len(call.args) >= 2:
        return call.args[1]
    for keyword in call.keywords:
        if keyword.arg in ("amount", "value", "delta"):
            return keyword.value
    return None


def _is_non_numeric_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        return node.value is None or isinstance(node.value, (str, bytes))
    return isinstance(node, (ast.Dict, ast.List, ast.Set, ast.Tuple, ast.JoinedStr))


def _metrics_bare_names(ctx: ModuleContext) -> set[str]:
    """Emission helpers imported bare from an observability/metrics module."""
    names: set[str] = set()
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            module = node.module.lower()
            if "observability" in module or "metrics" in module:
                for alias in node.names:
                    if alias.name in _METRIC_EMIT_NAMES:
                        names.add(alias.asname or alias.name)
    return names


def _check_telemetry_json(ctx: ModuleContext) -> Iterator[Finding]:
    """Telemetry payloads must be JSON-safe: dataclass fields and metrics.

    ``*Telemetry`` dataclass objects cross the wire and land in journal
    rows as JSON; a set/ndarray/custom-object field serialises as garbage
    (or raises) only at runtime, on the reporting path nobody tests under
    load.  The same contract covers the metrics registry: a non-numeric
    literal passed to ``counter``/``gauge``/``gauge_add``/``observe``
    raises ``TypeError`` only when the instrumented hot path actually runs.
    """
    bare_names = _metrics_bare_names(ctx)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        if isinstance(node.func, ast.Attribute):
            if node.func.attr not in _METRIC_EMIT_NAMES:
                continue
            receiver = (_receiver_name(node) or "").lower()
            if "metrics" not in receiver and "registry" not in receiver:
                continue
            label = f"{_receiver_name(node)}.{node.func.attr}"
        elif isinstance(node.func, ast.Name) and node.func.id in bare_names:
            label = node.func.id
        else:
            continue
        value = _metric_value_arg(node)
        if value is not None and _is_non_numeric_literal(value):
            yield _finding(
                ctx,
                "telemetry-json",
                node,
                f"non-numeric literal {ast.unparse(value)!r} passed to "
                f"{label}(): metric values must be JSON-safe numbers",
            )
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef) or not node.name.endswith("Telemetry"):
            continue
        is_dataclass = any(
            (isinstance(dec, ast.Name) and dec.id == "dataclass")
            or (isinstance(dec, ast.Attribute) and dec.attr == "dataclass")
            or (
                isinstance(dec, ast.Call)
                and (
                    (isinstance(dec.func, ast.Name) and dec.func.id == "dataclass")
                    or (
                        isinstance(dec.func, ast.Attribute)
                        and dec.func.attr == "dataclass"
                    )
                )
            )
            for dec in node.decorator_list
        )
        if not is_dataclass:
            continue
        for statement in node.body:
            if not isinstance(statement, ast.AnnAssign):
                continue
            if not _annotation_is_json_safe(statement.annotation):
                field = (
                    statement.target.id
                    if isinstance(statement.target, ast.Name)
                    else ast.unparse(statement.target)
                )
                yield _finding(
                    ctx,
                    "telemetry-json",
                    statement,
                    f"telemetry field {node.name}.{field} has non-JSON type "
                    f"{ast.unparse(statement.annotation)!r}: telemetry "
                    "payloads must serialise cleanly into journal rows",
                )


# ----------------------------------------------------------------------
# claim-pairing
# ----------------------------------------------------------------------
def _check_claim_pairing(ctx: ModuleContext) -> Iterator[Finding]:
    """A module that claims rows must also settle them.

    ``claim_next`` flips a row to ``running``; without a ``complete``/
    ``fail`` (or a ``reclaim_stale`` story) on the same code path, a crash
    strands the row until someone notices the drain never finishes.
    """
    claim_calls = [
        node
        for node in ast.walk(ctx.tree)
        if isinstance(node, ast.Call) and _call_name(node) == "claim_next"
    ]
    if not claim_calls:
        return
    settles = {
        _call_name(node)
        for node in ast.walk(ctx.tree)
        if isinstance(node, ast.Call)
        and _call_name(node) in ("complete", "fail", "reclaim_stale")
    }
    if "reclaim_stale" in settles or ("complete" in settles and "fail" in settles):
        return
    for node in claim_calls:
        yield _finding(
            ctx,
            "claim-pairing",
            node,
            "claim_next() here, but this module never completes AND fails "
            "(or reclaims) rows: a crash on this path strands rows as "
            "'running' forever",
        )


# ----------------------------------------------------------------------
# dispatch-except
# ----------------------------------------------------------------------
def _looks_like_rpc_server(node: ast.ClassDef) -> bool:
    if any(
        isinstance(base, (ast.Name, ast.Attribute))
        and (getattr(base, "id", None) or getattr(base, "attr", "")).endswith(
            "RpcServer"
        )
        for base in node.bases
    ):
        return True
    for statement in node.body:
        targets: list[ast.expr] = []
        if isinstance(statement, ast.Assign):
            targets = statement.targets
        elif isinstance(statement, ast.AnnAssign):
            targets = [statement.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id in (
                "rpc_methods",
                "serialize_dispatch",
            ):
                return True
    return False


def _handler_replies_or_reraises(handler: ast.ExceptHandler) -> bool:
    for sub in ast.walk(handler):
        if isinstance(sub, ast.Raise):
            return True
        if isinstance(sub, ast.Call):
            name = _call_name(sub) or ""
            if name in ("error_reply", "raise_reply_error", "fail") or name.startswith(
                "_error"
            ):
                return True
    return False


def _check_dispatch_except(ctx: ModuleContext) -> Iterator[Finding]:
    """Inside RPC server classes, ``except Exception`` must not swallow.

    A dispatch loop that catches Exception and moves on leaves the client
    waiting on a reply that never comes.  Handlers must re-raise or answer
    with a typed error reply (``error_reply`` / journal ``fail``).
    """
    for node, _stack in _walk_with_stack(ctx.tree):
        if not isinstance(node, ast.ClassDef) or not _looks_like_rpc_server(node):
            continue
        for sub in ast.walk(node):
            if not isinstance(sub, ast.ExceptHandler):
                continue
            handler_type = sub.type
            catches_exception = handler_type is None or (
                isinstance(handler_type, ast.Name)
                and handler_type.id in ("Exception", "BaseException")
            )
            if not catches_exception:
                continue
            if not _handler_replies_or_reraises(sub):
                yield _finding(
                    ctx,
                    "dispatch-except",
                    sub,
                    f"except Exception in server class {node.name} neither "
                    "re-raises nor replies with a typed error: the client "
                    "hangs (or retries blind) on the swallowed failure",
                )


# ----------------------------------------------------------------------
# store-thread
# ----------------------------------------------------------------------
def _class_declares_serializer(node: ast.ClassDef) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Assign):
            for target in sub.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr == "_store_lock"
                ) or (isinstance(target, ast.Name) and target.id == "_store_lock"):
                    return True
                if (
                    isinstance(target, ast.Name)
                    and target.id == "serialize_dispatch"
                    and isinstance(sub.value, ast.Constant)
                    and sub.value.value is True
                ):
                    return True
    return False


def _check_store_thread(ctx: ModuleContext) -> Iterator[Finding]:
    """``check_same_thread=False`` stores need a declared serializer.

    SQLite connections are never safe for concurrent cross-thread use; the
    flag only waives the *detection*.  An owner passing it must visibly
    serialize: a ``_store_lock`` or serialized RPC dispatch
    (``serialize_dispatch = True``).
    """
    for node, stack in _walk_with_stack(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        callee = _call_name(node)
        if callee != "ExperimentStore":
            continue
        waives = any(
            keyword.arg == "check_same_thread"
            and isinstance(keyword.value, ast.Constant)
            and keyword.value.value is False
            for keyword in node.keywords
        )
        if not waives:
            continue
        enclosing_class = _enclosing(stack, ast.ClassDef)
        if enclosing_class is None or not _class_declares_serializer(enclosing_class):
            yield _finding(
                ctx,
                "store-thread",
                node,
                "ExperimentStore(check_same_thread=False) outside a class "
                "that declares its serializer (a _store_lock or "
                "serialize_dispatch = True): cross-thread SQLite use must "
                "be visibly serialized",
            )


# ----------------------------------------------------------------------
# roster-parity (project-wide)
# ----------------------------------------------------------------------
def _module_dict_keys(ctx: ModuleContext, name: str) -> tuple[set[str], int] | None:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            targets = [node.target.id]
        else:
            continue
        if name in targets and isinstance(getattr(node, "value", None), ast.Dict):
            return _dict_str_keys(node.value), node.lineno
    return None


def _check_roster_parity(contexts: Sequence[ModuleContext]) -> Iterator[Finding]:
    """The CLI ``SOLVERS`` table and the service ``SOLVER_ROSTER`` must agree.

    A solver registered in one but not the other is reachable from
    ``repro solve`` but rejected by the service (or vice versa) — silent
    drift between two entry points to the same capability.
    """
    cli: tuple[ModuleContext, set[str], int] | None = None
    roster: tuple[ModuleContext, set[str], int] | None = None
    for ctx in contexts:
        found = _module_dict_keys(ctx, "SOLVERS")
        if found is not None and cli is None:
            cli = (ctx, found[0], found[1])
        found = _module_dict_keys(ctx, "SOLVER_ROSTER")
        if found is not None and roster is None:
            roster = (ctx, found[0], found[1])
    if cli is None or roster is None:
        return
    cli_ctx, cli_keys, cli_line = cli
    roster_ctx, roster_keys, roster_line = roster
    for missing in sorted(cli_keys - roster_keys):
        yield Finding(
            rule="roster-parity",
            path=roster_ctx.relpath,
            line=roster_line,
            col=1,
            message=(
                f"solver {missing!r} is in the CLI SOLVERS table but missing "
                "from SOLVER_ROSTER: the scheduling service would reject it"
            ),
        )
    for missing in sorted(roster_keys - cli_keys):
        yield Finding(
            rule="roster-parity",
            path=cli_ctx.relpath,
            line=cli_line,
            col=1,
            message=(
                f"solver {missing!r} is in SOLVER_ROSTER but missing from "
                "the CLI SOLVERS table: `repro solve` cannot reach it"
            ),
        )


RULES: tuple[LintRule, ...] = (
    LintRule("wire-op-id", "request payloads must thread an op id", _check_wire_op_id),
    LintRule(
        "sqlite-connect",
        "sqlite3.connect only inside orchestration/store.py",
        _check_sqlite_connect,
    ),
    LintRule(
        "raw-socket-send",
        "raw socket.send* only inside distributed/protocol.py",
        _check_raw_socket_send,
    ),
    LintRule(
        "cache-owned-close",
        "the cache layer never closes caller-owned stores",
        _check_cache_owned_close,
    ),
    LintRule(
        "reparent-watch",
        "spawned server processes must watch for re-parenting",
        _check_reparent_watch,
    ),
    LintRule(
        "wall-clock-key",
        "no wall clock in cache-key/fingerprint construction",
        _check_wall_clock_key,
    ),
    LintRule(
        "telemetry-json",
        "telemetry dataclass fields and metric values must be JSON-safe",
        _check_telemetry_json,
    ),
    LintRule(
        "claim-pairing",
        "claim_next callers must complete/fail/reclaim",
        _check_claim_pairing,
    ),
    LintRule(
        "dispatch-except",
        "server dispatch must re-raise or reply with a typed error",
        _check_dispatch_except,
    ),
    LintRule(
        "roster-parity",
        "CLI solver table and service roster must agree",
        check_project=_check_roster_parity,
    ),
    LintRule(
        "store-thread",
        "check_same_thread=False stores need a declared serializer",
        _check_store_thread,
    ),
)


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def _load_context(path: Path, root: Path) -> ModuleContext | None:
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError):
        return None
    try:
        relpath = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        relpath = path.as_posix()
    return ModuleContext(
        path=path, relpath=relpath, tree=tree, lines=source.splitlines()
    )


def lint_paths(paths: Sequence[Path], *, root: Path | None = None) -> list[Finding]:
    """Lint every ``.py`` under ``paths``; returns findings sorted by location."""
    root = root or Path.cwd()
    contexts = [
        ctx
        for ctx in (_load_context(path, root) for path in iter_python_files(paths))
        if ctx is not None
    ]
    findings: list[Finding] = []
    by_path = {ctx.relpath: ctx for ctx in contexts}
    for rule in RULES:
        produced: list[Finding] = []
        if rule.check_module is not None:
            for ctx in contexts:
                produced.extend(rule.check_module(ctx))
        if rule.check_project is not None:
            produced.extend(rule.check_project(contexts))
        for finding in produced:
            ctx = by_path.get(finding.path)
            if ctx is not None and ctx.suppressed(finding.rule, finding.line):
                continue
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_project(root: Path) -> list[Finding]:
    """Lint the repo's source tree (``src/repro`` under ``root``)."""
    source_root = root / "src" / "repro"
    if not source_root.is_dir():
        raise FileNotFoundError(
            f"no src/repro under {root}: pass explicit paths to lint"
        )
    return lint_paths([source_root], root=root)


def findings_to_json(findings: Sequence[Finding]) -> str:
    return json.dumps([asdict(finding) for finding in findings], indent=2)
