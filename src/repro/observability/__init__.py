"""Live observability for the orchestration stack.

Three pieces, layered:

* :mod:`repro.observability.metrics` — a cheap process-local registry of
  counters/gauges/histograms, instrumented through the distributed
  server/client, the solver fabric, the scheduling service and the
  runner/store hot paths.
* :mod:`repro.observability.events` — structured trace spans correlated
  by the wire op-ids, journaled into the store's ``events`` table so
  traces cross process boundaries and survive restarts.
* :mod:`repro.observability.dashboard` — a stdlib-``http.server`` live
  HTML dashboard + JSON snapshot + Prometheus ``/metrics`` endpoint over
  any :class:`~repro.distributed.protocol.StoreProtocol` backend (import
  it explicitly; it pulls in the export/distributed layers).

This package deliberately imports only :mod:`repro.analysis` — the hot
layers import it, so it must stay cycle-free and light.
"""

from . import events, metrics
from .metrics import MetricsRegistry, registry

__all__ = ["events", "metrics", "MetricsRegistry", "registry"]
