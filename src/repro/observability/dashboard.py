"""Live repro orch dashboard: HTML view, JSON snapshot, Prometheus text.

``repro orch dashboard DB|--connect HOST:PORT`` serves three endpoints from
a stdlib :class:`http.server.ThreadingHTTPServer` (no new dependencies):

``/``
    A self-contained HTML page that polls ``/snapshot.json`` and renders
    grid progress, per-worker throughput, cache hit rates, the per-epoch
    cost-model accuracy trend, the solver queue/solve/wire split with the
    per-endpoint histogram, the scheduling-service counters, and the most
    recent op-id-correlated trace chains.
``/snapshot.json``
    The raw :func:`build_snapshot` payload — the same shape ``repro orch
    status --json`` prints, so scripts and the page consume one contract.
``/metrics``
    Prometheus text: the process-local registry
    (:mod:`repro.observability.metrics`) merged with store-derived gauges
    (row counts, completions, re-plan epoch, cache counters), so the
    fleet-wide progress counters are scrapable even though workers and
    servers bump their registries in *their* processes.

All store reads go through :class:`~repro.distributed.protocol.StoreProtocol`
— the dashboard points at a SQLite file or at a running ``repro orch
serve`` address interchangeably, and never writes.
"""

from __future__ import annotations

import json
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Sequence

from ..analysis import racecheck
from . import events, metrics

__all__ = [
    "DEFAULT_DASHBOARD_PORT",
    "DashboardServer",
    "build_snapshot",
]

# Default HTTP port; store serve=7479, fabric=7480, schedule service=7481.
DEFAULT_DASHBOARD_PORT = 7482

# How many journaled spans a snapshot carries by default: enough to show
# the latest chains without the payload growing with the run.
DEFAULT_SPAN_LIMIT = 50

# The scheduling service journals under this experiment name; imported
# lazily in build_snapshot to keep this module's import graph light.
_SERVICE_EXPERIMENT = "service"


def build_snapshot(
    store: Any,
    experiments: Sequence[str] | None = None,
    *,
    span_limit: int = DEFAULT_SPAN_LIMIT,
) -> dict[str, Any]:
    """One JSON-safe progress snapshot of a store (local or remote).

    The single read-path contract behind ``/snapshot.json`` and ``repro
    orch status --json``.  ``experiments`` scopes the grid sections (the
    trace spans and metrics sections are store- and process-global).
    Every value is derived through :class:`StoreProtocol` reads only.
    """
    from ..orchestration.export import (
        aggregate_service_telemetry,
        aggregate_solver_telemetry,
        replan_trend,
    )

    counts = store.status_counts()
    if experiments is not None:
        scope = [name for name in experiments if name in counts]
    else:
        scope = sorted(counts)
    per_experiment = {name: dict(counts.get(name, {})) for name in scope}

    totals = {status: 0 for status in ("pending", "running", "done", "error")}
    for statuses in per_experiment.values():
        for status, n in statuses.items():
            totals[status] = totals.get(status, 0) + n
    total_rows = sum(totals.values())
    totals["total"] = total_rows
    totals["claimed"] = totals["running"] + totals["done"] + totals["error"]
    totals["completions"] = int(store.completion_count())

    done_rows = []
    error_rows = []
    for name in scope:
        statuses = per_experiment[name]
        if statuses.get("done"):
            done_rows.extend(store.fetch_rows(name, status="done"))
        if statuses.get("error"):
            error_rows.extend(store.fetch_rows(name, status="error"))

    workers: dict[str, dict[str, Any]] = {}
    for row in done_rows:
        stats = workers.setdefault(
            row.worker or "?", {"done": 0, "errors": 0, "total_duration": 0.0}
        )
        stats["done"] += 1
        stats["total_duration"] += float(row.duration or 0.0)
    for row in error_rows:
        stats = workers.setdefault(
            row.worker or "?", {"done": 0, "errors": 0, "total_duration": 0.0}
        )
        stats["errors"] += 1
    for stats in workers.values():
        stats["mean_duration"] = (
            stats["total_duration"] / stats["done"] if stats["done"] else 0.0
        )

    service: dict[str, Any] | None = None
    if _SERVICE_EXPERIMENT in counts and (
        experiments is None or _SERVICE_EXPERIMENT in experiments
    ):
        service_counts = counts[_SERVICE_EXPERIMENT]
        service_done = [row for row in done_rows if row.experiment == _SERVICE_EXPERIMENT]
        if _SERVICE_EXPERIMENT not in scope:
            service_done = store.fetch_rows(_SERVICE_EXPERIMENT, status="done")
        service = {
            "queue": service_counts.get("pending", 0) + service_counts.get("running", 0),
            "telemetry": aggregate_service_telemetry(
                service_done, tail=store.service_telemetry_tail()
            ),
        }

    # Old servers predate the events table: degrade to an empty trace
    # section instead of failing the whole snapshot.
    try:
        recent = store.fetch_events(limit=span_limit)
    except Exception:
        recent = []

    return {
        "generated": time.time(),
        "experiments": per_experiment,
        "totals": totals,
        "cache": dict(store.cache_stats()),
        "replan_epoch": int(store.replan_epoch()),
        "cost_trend": replan_trend(done_rows),
        "workers": workers,
        "solver_telemetry": aggregate_solver_telemetry(done_rows),
        "service": service,
        "spans": {"recent": recent, "chains": events.chains(recent)},
        "metrics": metrics.snapshot(),
    }


def _store_gauges(snapshot: dict[str, Any]) -> dict[str, float]:
    """Store-derived values merged into the ``/metrics`` scrape.

    Workers and servers bump their registries in their *own* processes, so
    the dashboard's registry alone cannot show fleet progress — these
    gauges carry the store's ground truth (and the CI smoke asserts they
    advance during a live drain).
    """
    totals = snapshot["totals"]
    gauges = {
        f"store.rows_{status}": float(totals.get(status, 0))
        for status in ("pending", "running", "done", "error", "claimed", "total")
    }
    gauges["store.completions"] = float(totals.get("completions", 0))
    gauges["store.replan_epoch"] = float(snapshot.get("replan_epoch", 0))
    cache = snapshot.get("cache", {})
    gauges["store.cache_entries"] = float(cache.get("entries", 0))
    gauges["store.cache_hits"] = float(cache.get("hits", 0))
    if snapshot.get("service"):
        gauges["service.queue"] = float(snapshot["service"].get("queue", 0))
    return gauges


_PAGE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro orch dashboard</title>
<style>
  body { font-family: ui-monospace, Menlo, Consolas, monospace;
         margin: 1.5rem; background: #11151c; color: #d8dee9; }
  h1 { font-size: 1.2rem; } h2 { font-size: 1rem; margin-top: 1.4rem;
       border-bottom: 1px solid #2e3440; padding-bottom: 0.2rem; }
  table { border-collapse: collapse; margin-top: 0.4rem; }
  th, td { padding: 0.15rem 0.8rem 0.15rem 0; text-align: left;
           font-size: 0.85rem; }
  th { color: #81a1c1; font-weight: normal; }
  .bar { background: #2e3440; height: 0.8rem; width: 24rem;
         display: inline-block; vertical-align: middle; }
  .bar > span { background: #a3be8c; height: 100%; display: block; }
  .err { color: #bf616a; } .dim { color: #616e88; }
  #meta { color: #616e88; font-size: 0.8rem; }
  pre { font-size: 0.78rem; color: #8fbcbb; }
</style>
</head>
<body>
<h1>repro orch dashboard</h1>
<div id="meta">connecting&hellip;</div>
<h2>progress</h2><div id="progress"></div>
<h2>experiments</h2><div id="experiments"></div>
<h2>workers</h2><div id="workers"></div>
<h2>cost model</h2><div id="trend"></div>
<h2>solver</h2><div id="solver"></div>
<h2>service</h2><div id="service"></div>
<h2>trace chains</h2><div id="chains"></div>
<h2>metrics</h2><pre id="metrics"></pre>
<script>
const REFRESH_MS = %REFRESH_MS%;
function esc(s) { return String(s).replace(/[&<>"]/g,
  c => ({"&":"&amp;","<":"&lt;",">":"&gt;","\\"":"&quot;"}[c])); }
function table(headers, rows) {
  let h = "<table><tr>" + headers.map(x => "<th>"+esc(x)+"</th>").join("") + "</tr>";
  for (const r of rows)
    h += "<tr>" + r.map(x => "<td>"+x+"</td>").join("") + "</tr>";
  return h + "</table>";
}
function render(s) {
  const t = s.totals;
  document.getElementById("meta").textContent =
    "snapshot " + new Date(s.generated * 1000).toLocaleTimeString() +
    " — replan epoch " + s.replan_epoch +
    " — cache " + s.cache.entries + " entries / " + s.cache.hits + " hits";
  const pct = t.total ? Math.round(100 * t.done / t.total) : 0;
  document.getElementById("progress").innerHTML =
    '<span class="bar"><span style="width:' + pct + '%"></span></span> ' +
    t.done + "/" + t.total + " done (" + pct + "%), " +
    t.running + " running, " + t.pending + " pending" +
    (t.error ? ', <span class="err">' + t.error + " error</span>" : "") +
    ' <span class="dim">claimed ' + t.claimed +
    ", completions " + t.completions + "</span>";
  document.getElementById("experiments").innerHTML = table(
    ["experiment", "pending", "running", "done", "error"],
    Object.entries(s.experiments).map(([name, c]) =>
      [esc(name), c.pending||0, c.running||0, c.done||0, c.error||0]));
  document.getElementById("workers").innerHTML = table(
    ["worker", "done", "errors", "mean s/cell", "total s"],
    Object.entries(s.workers).map(([tag, w]) =>
      [esc(tag), w.done, w.errors, w.mean_duration.toFixed(3),
       w.total_duration.toFixed(2)]));
  document.getElementById("trend").innerHTML = s.cost_trend.length
    ? table(["epoch", "estimate/actual (gmean)", "n"],
        s.cost_trend.map(p => [p.epoch, p.accuracy.toFixed(3) + "x", p.n]))
    : '<span class="dim">no completed rows with estimates yet</span>';
  const st = s.solver_telemetry;
  document.getElementById("solver").innerHTML = st
    ? table(["solves", "pooled", "queue s", "solve s", "wire s", "endpoints"],
        [[st.solves, st.pooled_solves, st.queue_wait_s.toFixed(3),
          st.solve_s.toFixed(3), st.wire_s.toFixed(3),
          esc(Object.entries(st.endpoints || {}).map(
            ([e, n]) => e + ":" + n).join(" ") || "-")]])
    : '<span class="dim">no solver telemetry yet</span>';
  const svc = s.service;
  document.getElementById("service").innerHTML = svc
    ? table(["queue", "requests", "admitted", "rejected", "cache hits", "solves"],
        [[svc.queue].concat(["requests", "admitted", "rejected",
          "cache_hits", "solves"].map(
            k => (svc.telemetry || {})[k] || 0))])
    : '<span class="dim">no scheduling service journal</span>';
  const chains = Object.entries(s.spans.chains).slice(-8).reverse();
  document.getElementById("chains").innerHTML = chains.length
    ? table(["op", "chain"],
        chains.map(([op, spans]) => [
          '<span class="dim">' + esc(op.slice(0, 12)) + "&hellip;</span>",
          spans.map(sp => esc(sp.kind) +
            (sp.duration != null
              ? " (" + (sp.duration * 1000).toFixed(1) + "ms)" : "")
          ).join(" &rarr; ")]))
    : '<span class="dim">no journaled spans yet</span>';
  const counters = Object.entries(s.metrics.counters);
  document.getElementById("metrics").textContent = counters.length
    ? counters.map(([k, v]) => k + " = " + v).join("\\n")
    : "(dashboard-process registry is empty; see /metrics for store gauges)";
}
async function tick() {
  try {
    const reply = await fetch("snapshot.json");
    render(await reply.json());
  } catch (err) {
    document.getElementById("meta").textContent = "snapshot failed: " + err;
  }
  setTimeout(tick, REFRESH_MS);
}
tick();
</script>
</body>
</html>
"""


class DashboardServer:
    """Serve the dashboard for one store target (SQLite path or server).

    Owns its own store handle: a remote target opens a read-only-by-use
    :class:`~repro.distributed.RemoteStore` ride-along connection; a local
    path opens the SQLite file with ``check_same_thread=False``, serialized
    by ``_store_lock`` (HTTP handler threads all read under it — the same
    visible-serializer contract the store servers follow).  Snapshots are
    cached for ``refresh_s`` so a fast-polling page (or several) costs one
    store read per interval, not one per request.
    """

    def __init__(
        self,
        target: "str | os.PathLike[str]",
        *,
        token: str | None = None,
        host: str = "127.0.0.1",
        port: int = DEFAULT_DASHBOARD_PORT,
        experiments: Sequence[str] | None = None,
        refresh_s: float = 0.5,
        span_limit: int = DEFAULT_SPAN_LIMIT,
    ) -> None:
        from ..distributed.client import RemoteStore
        from ..distributed.protocol import is_remote_target
        from ..orchestration.store import ExperimentStore

        self._experiments = list(experiments) if experiments is not None else None
        self._refresh_s = max(0.0, float(refresh_s))
        self._span_limit = int(span_limit)
        self._store_lock = racecheck.tracked_rlock("dashboard.store")
        if is_remote_target(str(target)):
            self._store: Any = RemoteStore(str(target), token=token)
        else:
            self._store = ExperimentStore(target, check_same_thread=False)
        racecheck.guard_store(self._store, self._store_lock)
        self._cached: dict[str, Any] | None = None
        self._cached_at = 0.0
        self._closed = False
        self._serve_thread: threading.Thread | None = None
        try:
            self._httpd = _DashboardHTTPServer((host, int(port)), _Handler)
        except BaseException:
            self._store.close()
            raise
        self._httpd.owner = self

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://[{host}]:{port}/" if ":" in host else f"http://{host}:{port}/"

    def serve_forever(self) -> None:
        self._httpd.serve_forever(poll_interval=0.1)

    def start(self) -> "DashboardServer":
        if self._serve_thread is None:
            self._serve_thread = threading.Thread(
                target=self.serve_forever, name="repro-dashboard", daemon=True
            )
            self._serve_thread.start()
        return self

    def shutdown(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._httpd.shutdown()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
        self._httpd.server_close()
        with self._store_lock:
            self._store.close()

    def __enter__(self) -> "DashboardServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # Payloads
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """The (cached) :func:`build_snapshot` payload for this target."""
        now = time.monotonic()
        with self._store_lock:
            if self._cached is not None and now - self._cached_at < self._refresh_s:
                return self._cached
            snapshot = build_snapshot(
                self._store, self._experiments, span_limit=self._span_limit
            )
            self._cached = snapshot
            self._cached_at = time.monotonic()
            return snapshot

    def prometheus(self) -> str:
        """The ``/metrics`` text: local registry + store-derived gauges."""
        snapshot = self.snapshot()
        return metrics.render_prometheus(
            snapshot["metrics"], extra_gauges=_store_gauges(snapshot)
        )

    def page(self) -> str:
        refresh_ms = max(250, int(self._refresh_s * 1000) or 500)
        return _PAGE.replace("%REFRESH_MS%", str(refresh_ms))


class _DashboardHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    owner: DashboardServer


class _Handler(BaseHTTPRequestHandler):
    """Route the three endpoints; no logging noise, no writes."""

    server: _DashboardHTTPServer

    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        owner = self.server.owner
        path = self.path.split("?", 1)[0]
        try:
            if path == "/" or path == "/index.html":
                body = owner.page().encode()
                content_type = "text/html; charset=utf-8"
            elif path == "/snapshot.json":
                body = json.dumps(owner.snapshot()).encode()
                content_type = "application/json"
            elif path == "/metrics":
                body = owner.prometheus().encode()
                content_type = "text/plain; version=0.0.4; charset=utf-8"
            else:
                self.send_error(404, "unknown endpoint")
                return
        except Exception as exc:  # degrade to a 503, never kill the server
            self.send_error(503, f"{type(exc).__name__}: {exc}")
            return
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:
        """Silence per-request stderr lines (the page polls twice a second)."""
