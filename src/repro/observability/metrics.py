"""Process-local metrics registry: counters, gauges, histograms.

The registry is the in-process half of the observability layer (the
cross-process half — trace spans journaled through the store — lives in
:mod:`repro.observability.events`).  Every hot layer bumps named metrics
through the module-level singleton:

* ``repro.distributed`` — ``rpc.requests``/``rpc.frames_in``/
  ``rpc.frames_out``/``rpc.op_replays`` on the server,
  ``remote_store.calls``/``remote_store.bytes_out``/
  ``remote_store.reconnects``/``remote_store.retries`` on the client.
* ``repro.solver.fabric`` — ``fabric.submitted``/``fabric.completed``/
  ``fabric.memo_hits``/``fabric.steals``/``fabric.duplicates_dropped``,
  the ``fabric.server.active`` queue-depth gauge and per-endpoint
  ``fabric.endpoint_rate.*`` EWMA gauges.
* ``repro.service`` — ``service.requests``/``service.admitted``/
  ``service.rejected``/``service.cache_hits``/``service.solves`` mirrors
  of the journaled telemetry counters plus the
  ``service.executors_busy`` occupancy gauge.
* ``repro.orchestration`` — ``runner.claims``/``runner.completes``/
  ``runner.failures`` with ``runner.claim_latency_s`` and
  ``runner.cell_duration_s`` histograms; ``store.claims``/
  ``store.completes``/``store.reclaims`` and the ``store.replan_epoch``
  gauge on the store itself.

Design constraints, in order: **cheap** (one leaf-lock acquisition and a
dict update per bump — instrumentation must stay inside the 5% overhead
envelope on the scheduling-service benchmark), **JSON-safe** (every value
is a number; :meth:`MetricsRegistry.snapshot` must serialise with a plain
``json.dumps`` — the ``telemetry-json`` lint rule also flags non-numeric
literals passed to the emission helpers), and **dependency-free**.

The registry lock is a :func:`repro.analysis.racecheck.tracked_lock` leaf:
metric bumps happen under dispatch/fabric/service locks all over the
stack, and never acquire anything else while held, so the order graph
gains only inbound edges.
"""

from __future__ import annotations

import re
from typing import Any, Iterable, Mapping

from ..analysis import racecheck

__all__ = [
    "DEFAULT_BUCKETS",
    "MetricsRegistry",
    "registry",
    "counter",
    "gauge",
    "gauge_add",
    "observe",
    "snapshot",
    "reset",
    "render_prometheus",
]

# Histogram bucket upper bounds, in seconds: spans claim RPCs (sub-ms on
# loopback) through multi-minute MILP cells.
DEFAULT_BUCKETS: tuple[float, ...] = (0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0, 60.0)


def _numeric(value: Any) -> float:
    """Validate a metric value: JSON-safe numbers only, no stringly data."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(
            f"metric values must be int/float (JSON-safe numbers), "
            f"got {type(value).__name__}: {value!r}"
        )
    return float(value)


class MetricsRegistry:
    """A named bag of counters, gauges and fixed-bucket histograms.

    All three families share one flat dot-separated namespace
    (``layer.metric``) and one leaf lock; :meth:`snapshot` returns a plain
    JSON-safe dict copy, cheap enough to serve from a polling endpoint.
    """

    def __init__(self, buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        self._lock = racecheck.tracked_lock("observability.metrics")
        self._buckets = tuple(sorted(float(b) for b in buckets))
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        # name -> [count, total, minimum, maximum, per-bucket counts]
        self._histograms: dict[str, list[Any]] = {}

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def counter(self, name: str, amount: int | float = 1) -> None:
        """Add ``amount`` (default 1) to a monotonic counter."""
        value = _numeric(amount)
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + value

    def gauge(self, name: str, value: int | float) -> None:
        """Set a point-in-time gauge."""
        level = _numeric(value)
        with self._lock:
            self._gauges[name] = level

    def gauge_add(self, name: str, delta: int | float) -> None:
        """Adjust a gauge by ``delta`` (occupancy/queue-depth tracking)."""
        step = _numeric(delta)
        with self._lock:
            self._gauges[name] = self._gauges.get(name, 0.0) + step

    def observe(self, name: str, value: int | float) -> None:
        """Record one sample into a fixed-bucket histogram."""
        sample = _numeric(value)
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = [0, 0.0, sample, sample, [0] * (len(self._buckets) + 1)]
                self._histograms[name] = hist
            hist[0] += 1
            hist[1] += sample
            hist[2] = min(hist[2], sample)
            hist[3] = max(hist[3], sample)
            for index, bound in enumerate(self._buckets):
                if sample <= bound:
                    hist[4][index] += 1
                    break
            else:
                hist[4][-1] += 1

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """JSON-safe copy of every metric (the dashboard/endpoint payload)."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = {
                name: {
                    "count": hist[0],
                    "sum": hist[1],
                    "min": hist[2],
                    "max": hist[3],
                    "buckets": {
                        **{
                            str(bound): hist[4][index]
                            for index, bound in enumerate(self._buckets)
                        },
                        "+Inf": hist[4][-1],
                    },
                }
                for name, hist in self._histograms.items()
            }
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def reset(self) -> None:
        """Drop every recorded metric (tests and fresh servers)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


# ----------------------------------------------------------------------
# Prometheus text rendering
# ----------------------------------------------------------------------
_NAME_SANITISE = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(prefix: str, name: str) -> str:
    return _NAME_SANITISE.sub("_", f"{prefix}_{name}")


def render_prometheus(
    snap: Mapping[str, Any],
    *,
    prefix: str = "repro",
    extra_gauges: Mapping[str, int | float] | None = None,
) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` as Prometheus text format.

    ``extra_gauges`` lets callers (the dashboard) merge store-derived
    values — row counts, completions, the re-plan epoch — into the same
    scrape without routing them through the process-local registry.
    """
    lines: list[str] = []
    for name, value in sorted(snap.get("counters", {}).items()):
        metric = _prom_name(prefix, name) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value:g}")
    merged = dict(snap.get("gauges", {}))
    merged.update(extra_gauges or {})
    for name, value in sorted(merged.items()):
        metric = _prom_name(prefix, name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {float(value):g}")
    for name, hist in sorted(snap.get("histograms", {}).items()):
        metric = _prom_name(prefix, name)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in hist["buckets"].items():
            cumulative += count
            lines.append(f'{metric}_bucket{{le="{bound}"}} {cumulative}')
        lines.append(f"{metric}_sum {hist['sum']:g}")
        lines.append(f"{metric}_count {hist['count']}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Module-level singleton: the registry every layer instruments against
# ----------------------------------------------------------------------
registry = MetricsRegistry()

counter = registry.counter
gauge = registry.gauge
gauge_add = registry.gauge_add
observe = registry.observe
snapshot = registry.snapshot
reset = registry.reset
