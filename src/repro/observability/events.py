"""Structured trace spans correlated by wire op-ids.

A *span* is one timed hop of a request through the fleet, correlated with
the other hops of the same logical operation by the **op-id** the
distributed layer already threads through every mutating RPC
(:data:`repro.distributed.protocol.MUTATING_METHODS`).  A remote worker's
claim produces three spans sharing one op::

    client.call      the worker's RemoteStore issuing claim_next
    server.dispatch  the store server executing it
    worker.cell      the claimed cell's execution, stamped with the claim op

Spans are process-local until *flushed*: :func:`emit` appends to a bounded
in-process buffer (a deque — tracing can never exhaust memory, old spans
fall off), and :func:`flush` journals the drained buffer through
``StoreProtocol.record_events``, so spans from every process of a fleet
land in the one store ``events`` table (bounded retention, see
:meth:`repro.orchestration.store.ExperimentStore.record_events`) and
survive restarts.  Because ``record_events`` is an ordinary store RPC, a
remote worker's spans ride its existing :class:`RemoteStore` connection
unchanged.

Flushing is deliberately best-effort: a span journal write must never fail
work that already completed, so :func:`flush` swallows store errors and
counts them in ``events.flush_errors`` instead.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Iterable, Mapping

from . import metrics

__all__ = [
    "FLUSH_BATCH",
    "FLUSH_INTERVAL_S",
    "MAX_BUFFERED_SPANS",
    "SPANNED_METHODS",
    "emit",
    "pending",
    "drain",
    "flush",
    "maybe_flush",
    "span",
    "chains",
]

# Buffer ceiling: tracing is diagnostics, not a durability queue — when no
# flusher keeps up, the oldest spans fall off rather than growing the heap.
MAX_BUFFERED_SPANS = 1024

# Batched-flush policy for :func:`maybe_flush`: journal when this many
# spans have accumulated, or this long after the previous flush, whichever
# comes first.  Each flush is one store write transaction — on hot
# dispatch paths (the service's duplicate-heavy cache hits run at
# hundreds of requests/s) a flush per dispatch would cost more than the
# request itself, so servers trade bounded staleness for amortization.
FLUSH_BATCH = 64
FLUSH_INTERVAL_S = 1.0

# The claim lifecycle is the trace worth correlating end-to-end; read-only
# polls (status/snapshot traffic) would drown it in noise.  The journal
# methods themselves are deliberately absent — a flush must not generate
# the spans the next flush would carry.
SPANNED_METHODS = frozenset({"claim_next", "complete", "fail", "submit"})

_buffer: deque[dict[str, Any]] = deque(maxlen=MAX_BUFFERED_SPANS)
_buffer_lock = threading.Lock()


def emit(
    kind: str,
    *,
    op: str | None = None,
    actor: str | None = None,
    duration: float | None = None,
    detail: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Record one span into the process-local buffer and return it."""
    span_row: dict[str, Any] = {
        "kind": str(kind),
        "op": str(op) if op is not None else None,
        "actor": str(actor) if actor is not None else None,
        "ts": time.time(),
        "duration": float(duration) if duration is not None else None,
        "detail": dict(detail) if detail else {},
    }
    with _buffer_lock:
        _buffer.append(span_row)
    return span_row


def pending() -> int:
    """Number of buffered spans awaiting a flush."""
    with _buffer_lock:
        return len(_buffer)


def drain() -> list[dict[str, Any]]:
    """Pop and return every buffered span (oldest first)."""
    with _buffer_lock:
        spans = list(_buffer)
        _buffer.clear()
    return spans


def flush(store: Any) -> int:
    """Journal the buffered spans through ``store.record_events``.

    Best-effort by contract: the store may be mid-restart or the server
    may predate the events table — either way the spans are dropped and
    counted, never raised into the caller's claim loop.
    """
    global _last_flush
    spans = drain()
    if not spans:
        return 0
    _last_flush = time.monotonic()
    try:
        return int(store.record_events(spans))
    except Exception:
        metrics.counter("events.flush_errors")
        metrics.counter("events.spans_dropped", len(spans))
        return 0


# Monotonic time of the last flush attempt; 0.0 makes the process's first
# maybe_flush journal immediately.
_last_flush = 0.0


def maybe_flush(store: Any) -> int:
    """:func:`flush`, rate-limited by the batched-flush policy.

    Dispatch-path callers (the store server, the scheduling service) use
    this so tracing stays off the per-request critical path; explicit
    flush points (the worker after each cell, shutdown paths) call
    :func:`flush` directly.
    """
    n = pending()
    if not n:
        return 0
    if n < FLUSH_BATCH and time.monotonic() - _last_flush < FLUSH_INTERVAL_S:
        return 0
    return flush(store)


class span:
    """Context manager: time a block and :func:`emit` it on exit.

    The span is emitted even when the block raises, with
    ``detail["error"]`` set to the exception type name — a trace with the
    failure hop present beats one that silently ends mid-chain.
    """

    def __init__(
        self,
        kind: str,
        *,
        op: str | None = None,
        actor: str | None = None,
        detail: Mapping[str, Any] | None = None,
    ) -> None:
        self._kind = kind
        self._op = op
        self._actor = actor
        self._detail = dict(detail) if detail else {}
        self._start = 0.0

    def __enter__(self) -> "span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if exc_type is not None:
            self._detail["error"] = getattr(exc_type, "__name__", str(exc_type))
        emit(
            self._kind,
            op=self._op,
            actor=self._actor,
            duration=time.perf_counter() - self._start,
            detail=self._detail,
        )


def chains(events: Iterable[Mapping[str, Any]]) -> dict[str, list[dict[str, Any]]]:
    """Group journaled spans by op-id, each chain in timestamp order.

    Spans without an op (local-only hops) are excluded — a chain is by
    definition the set of hops one wire op crossed.
    """
    grouped: dict[str, list[dict[str, Any]]] = {}
    for event in events:
        op = event.get("op")
        if op:
            grouped.setdefault(str(op), []).append(dict(event))
    for spans in grouped.values():
        spans.sort(key=lambda event: (event.get("ts") or 0.0))
    return grouped
