"""Table/series containers shared by the experiment drivers and benchmarks.

The paper has no numeric tables of its own (it is a theory paper); the
experiment harness therefore produces its *own* tables — one per experiment
listed in DESIGN.md — and EXPERIMENTS.md records the paper's claim next to
the measured numbers.  This module provides a tiny, dependency-free table
abstraction with text and CSV rendering so that every experiment prints the
same kind of artefact.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

__all__ = ["ExperimentTable"]


def _format_cell(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000 or (abs(value) < 0.001 and value != 0):
            return f"{value:.3e}"
        return f"{value:.4g}"
    if value is None:
        return "-"
    return str(value)


@dataclass(slots=True)
class ExperimentTable:
    """A titled table of experiment results.

    ``rows`` are mappings from column name to value; the column order is the
    order of first appearance unless ``columns`` is given explicitly.
    """

    experiment_id: str
    title: str
    columns: list[str] = field(default_factory=list)
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, row: Mapping[str, Any]) -> None:
        for key in row:
            if key not in self.columns:
                self.columns.append(key)
        self.rows.append(dict(row))

    def add_rows(self, rows: Iterable[Mapping[str, Any]]) -> None:
        for row in rows:
            self.add_row(row)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, name: str) -> list[Any]:
        """All values of one column (missing cells become ``None``)."""
        return [row.get(name) for row in self.rows]

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def to_text(self) -> str:
        """Render as an aligned plain-text table."""
        header = [str(column) for column in self.columns]
        body = [[_format_cell(row.get(column)) for column in self.columns] for row in self.rows]
        widths = [
            max(len(header[i]), *(len(line[i]) for line in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.append("  ".join(header[i].ljust(widths[i]) for i in range(len(header))))
        lines.append("  ".join("-" * widths[i] for i in range(len(header))))
        for line in body:
            lines.append("  ".join(line[i].ljust(widths[i]) for i in range(len(header))))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """Render as a GitHub-flavoured markdown table."""
        lines = [f"### {self.experiment_id}: {self.title}", ""]
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("| " + " | ".join("---" for _ in self.columns) + " |")
        for row in self.rows:
            lines.append(
                "| " + " | ".join(_format_cell(row.get(column)) for column in self.columns) + " |"
            )
        for note in self.notes:
            lines.append(f"\n*{note}*")
        return "\n".join(lines)

    def to_csv(self) -> str:
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=self.columns)
        writer.writeheader()
        for row in self.rows:
            writer.writerow({column: row.get(column) for column in self.columns})
        return buffer.getvalue()

    def save_csv(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.to_csv())
        return path

    def to_dict(self) -> dict[str, Any]:
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "columns": list(self.columns),
            "rows": [dict(row) for row in self.rows],
            "notes": list(self.notes),
        }
