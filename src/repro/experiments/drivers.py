"""Experiment drivers: one function per experiment listed in DESIGN.md.

Each driver returns an :class:`~repro.experiments.tables.ExperimentTable`.
Every driver takes a ``quick`` flag: the benchmark harness runs the quick
variant (seconds), ``python -m repro experiments`` can run the full variant
(minutes).  The experiment identifiers (E1…E10) match DESIGN.md and
EXPERIMENTS.md.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from ..baselines import (
    coloring_schedule,
    das_wiese_schedule,
    first_fit_schedule,
    greedy_schedule,
    local_search_schedule,
    lpt_schedule,
)
from ..bounds import combined_lower_bound
from ..core.instance import Instance
from ..core.result import SolverResult
from ..core.schedule import Schedule
from ..eptas import (
    ConstantsMode,
    EptasConfig,
    classify_bags,
    classify_jobs,
    eptas_schedule,
    forward_transform_schedule,
    normalise_eps,
    reinsert_medium_jobs,
    revert_to_original,
    scale_and_round,
    solve_for_guess,
    theory_constants_report,
    transform_instance,
)
from ..exact import exact_milp_schedule
from ..generators import (
    bag_heavy_instance,
    clustered_sizes_instance,
    figure1_adversarial_instance,
    planted_optimum_instance,
    replica_workload_instance,
    two_size_instance,
    uniform_random_instance,
)
from ..simulation import ClusterSimulator
from .tables import ExperimentTable

__all__ = [
    "experiment_e1_figure1_placement",
    "experiment_e2_approximation_ratio",
    "experiment_e3_scaling_with_n",
    "experiment_e4_epsilon_tradeoff",
    "experiment_e5_transformation_overhead",
    "experiment_e6_medium_reinsertion",
    "experiment_e7_milp_size",
    "experiment_e8_repair_statistics",
    "experiment_e9_fault_tolerance",
    "experiment_e10_ablation",
    "EXPERIMENTS",
    "run_experiment",
    "run_all_experiments",
]


# ----------------------------------------------------------------------
# E1 — Figure 1: large-job placement matters
# ----------------------------------------------------------------------
def experiment_e1_figure1_placement(*, quick: bool = True, seed: int = 0) -> ExperimentTable:
    """Naive vs bag-aware placement on the Figure-1 adversarial family."""
    table = ExperimentTable(
        "E1",
        "Figure 1 — large-job placement matters (makespans, optimum = 1)",
    )
    machine_counts = [4, 6] if quick else [4, 6, 8, 12]
    for machines in machine_counts:
        generated = figure1_adversarial_instance(num_machines=machines, seed=seed)
        instance = generated.instance
        naive = first_fit_schedule(instance)
        greedy = greedy_schedule(instance)
        lpt = lpt_schedule(instance)
        eptas = eptas_schedule(instance, eps=0.25)
        optimum = generated.known_optimum or exact_milp_schedule(instance).makespan
        table.add_row(
            {
                "machines": machines,
                "optimum": optimum,
                "first_fit": naive.makespan,
                "greedy_list": greedy.makespan,
                "lpt": lpt.makespan,
                "eptas(0.25)": eptas.makespan,
            }
        )
    table.add_note(
        "first-fit packs large jobs to height OPT and is then forced to stack "
        "the full bag of small jobs — the phenomenon of the paper's Figure 1; "
        "the EPTAS places large jobs so small jobs still fit."
    )
    return table


# ----------------------------------------------------------------------
# E2 — Theorem 1: approximation ratios across solvers and families
# ----------------------------------------------------------------------
def _ratio_solvers(eps_values: tuple[float, ...]) -> dict[str, Callable[[Instance], SolverResult]]:
    solvers: dict[str, Callable[[Instance], SolverResult]] = {
        "greedy_list": greedy_schedule,
        "lpt": lpt_schedule,
        "lpt+local_search": local_search_schedule,
        "coloring": coloring_schedule,
        "das_wiese(0.25)": lambda inst: das_wiese_schedule(inst, eps=0.25),
    }
    for eps in eps_values:
        solvers[f"eptas({eps:g})"] = lambda inst, eps=eps: eptas_schedule(inst, eps=eps)
    return solvers


def experiment_e2_approximation_ratio(*, quick: bool = True, seed: int = 0) -> ExperimentTable:
    """Measured ratio to the exact optimum for every solver, per family."""
    table = ExperimentTable("E2", "Theorem 1 — measured approximation ratios (vs exact optimum)")
    num_seeds = 2 if quick else 5
    size = dict(num_jobs=14, num_machines=4, num_bags=6) if quick else dict(
        num_jobs=24, num_machines=5, num_bags=8
    )
    families: dict[str, Callable[[int], Instance]] = {
        "uniform": lambda s: uniform_random_instance(**size, seed=s).instance,
        "figure1": lambda s: figure1_adversarial_instance(
            num_machines=size["num_machines"], seed=s
        ).instance,
        "replicas": lambda s: replica_workload_instance(
            num_services=size["num_bags"], num_machines=size["num_machines"], seed=s
        ).instance,
        "bag_heavy": lambda s: bag_heavy_instance(
            num_machines=size["num_machines"], num_full_bags=3, extra_jobs=6, seed=s
        ).instance,
    }
    eps_values = (0.5, 0.25)
    solvers = _ratio_solvers(eps_values)
    for family, make in families.items():
        ratios: dict[str, list[float]] = {name: [] for name in solvers}
        for offset in range(num_seeds):
            instance = make(seed + offset)
            optimum = exact_milp_schedule(instance).makespan
            for name, solver in solvers.items():
                ratios[name].append(solver(instance).makespan / optimum)
        row: dict[str, object] = {"family": family}
        for name, values in ratios.items():
            row[name] = float(np.mean(values))
        table.add_row(row)
    table.add_note(
        "expected shape: eptas <= 1 + O(eps) and never worse than the "
        "2-approximations; greedy/list scheduling degrades on adversarial families."
    )
    return table


# ----------------------------------------------------------------------
# E3 — running time scaling with n at fixed eps
# ----------------------------------------------------------------------
def experiment_e3_scaling_with_n(*, quick: bool = True, seed: int = 0) -> ExperimentTable:
    """Wall-clock time of EPTAS / Das-Wiese / exact MILP / LPT as n grows."""
    table = ExperimentTable("E3", "Running time vs number of jobs (fixed eps)")
    sizes = [16, 32, 64, 128] if quick else [16, 32, 64, 128, 256, 512]
    exact_cap = 32 if quick else 48
    for num_jobs in sizes:
        # Weak scaling: the machine count grows with n so that the per-machine
        # load (and hence the large/small structure seen by the EPTAS) stays
        # comparable across the sweep.
        machines = max(4, num_jobs // 8)
        instance = clustered_sizes_instance(
            num_jobs=num_jobs,
            num_machines=machines,
            num_bags=max(6, num_jobs // 3),
            size_values=(1.0, 0.6, 0.3, 0.1),
            seed=seed,
        ).instance
        row: dict[str, object] = {"n": num_jobs, "m": machines}
        start = time.perf_counter()
        lpt = lpt_schedule(instance)
        row["lpt_time"] = time.perf_counter() - start

        start = time.perf_counter()
        eptas = eptas_schedule(instance, eps=0.5)
        row["eptas_time"] = time.perf_counter() - start

        start = time.perf_counter()
        das = das_wiese_schedule(instance, eps=0.5)
        row["das_wiese_time"] = time.perf_counter() - start

        if num_jobs <= exact_cap:
            start = time.perf_counter()
            exact = exact_milp_schedule(instance)
            row["exact_time"] = time.perf_counter() - start
            optimum = exact.makespan
        else:
            row["exact_time"] = None
            optimum = combined_lower_bound(instance)
        row["eptas_ratio"] = eptas.makespan / optimum
        row["lpt_ratio"] = lpt.makespan / optimum
        row["das_wiese_ratio"] = das.makespan / optimum
        table.add_row(row)
    table.add_note(
        "expected shape: the exact MILP blows up first; EPTAS and Das-Wiese "
        "grow polynomially in n, with the EPTAS paying a constant (eps-only) "
        "MILP cost per binary-search step."
    )
    return table


# ----------------------------------------------------------------------
# E4 — eps trade-off
# ----------------------------------------------------------------------
def experiment_e4_epsilon_tradeoff(*, quick: bool = True, seed: int = 0) -> ExperimentTable:
    """Ratio / time / MILP size as eps varies on a fixed instance."""
    table = ExperimentTable("E4", "Accuracy-versus-cost trade-off in eps")
    instance = uniform_random_instance(
        num_jobs=20 if quick else 32,
        num_machines=4,
        num_bags=7,
        seed=seed,
    ).instance
    optimum = exact_milp_schedule(instance).makespan
    eps_values = [1.0, 0.5, 0.25] if quick else [1.0, 0.5, 1 / 3, 0.25, 0.2]
    for eps in eps_values:
        start = time.perf_counter()
        result = eptas_schedule(instance, eps=eps)
        elapsed = time.perf_counter() - start
        table.add_row(
            {
                "eps": normalise_eps(eps),
                "ratio": result.makespan / optimum,
                "guarantee": 1 + 2 * eps + eps * eps,
                "time_s": elapsed,
                "patterns": result.diagnostics.get("num_patterns"),
                "integer_vars": result.diagnostics.get("integer_variables"),
                "constraints": result.diagnostics.get("constraints"),
            }
        )
    table.add_note("ratio stays below the (1 + 2eps + eps^2) budget; cost rises as eps shrinks.")
    return table


# ----------------------------------------------------------------------
# E5 — Lemma 2: transformation overhead
# ----------------------------------------------------------------------
def experiment_e5_transformation_overhead(*, quick: bool = True, seed: int = 0) -> ExperimentTable:
    """Constructive check of Lemma 2: transformed makespan <= (1+eps)*C."""
    table = ExperimentTable("E5", "Lemma 2 — instance transformation overhead")
    eps = 0.25
    num_cases = 3 if quick else 8
    for offset in range(num_cases):
        # Many bags relative to the priority cap and a wide size spread, so a
        # substantial fraction of bags becomes non-priority and is actually
        # transformed (large jobs split off, fillers added).
        instance = clustered_sizes_instance(
            num_jobs=40,
            num_machines=5,
            num_bags=18,
            size_values=(0.9, 0.6, 0.05, 0.03, 0.02),
            weights=(0.25, 0.2, 0.2, 0.2, 0.15),
            seed=seed + offset,
        ).instance
        # A feasible schedule S of the original instance (LPT).
        schedule = lpt_schedule(instance).schedule
        c_value = schedule.makespan()
        rounded = scale_and_round(instance, eps, c_value)
        working = rounded.instance
        job_classes = classify_jobs(working, eps)
        bag_classes = classify_bags(
            working, job_classes, mode=ConstantsMode.PRACTICAL, practical_priority_cap=1
        )
        record = transform_instance(working, job_classes, bag_classes)
        scaled_schedule = Schedule(working, schedule.assignment)
        transformed_schedule = forward_transform_schedule(record, scaled_schedule)
        inflation = transformed_schedule.makespan() / max(scaled_schedule.makespan(), 1e-12)
        table.add_row(
            {
                "seed": seed + offset,
                "original_makespan": scaled_schedule.makespan(),
                "transformed_makespan": transformed_schedule.makespan(),
                "inflation": inflation,
                "lemma2_bound": 1 + eps,
                "within_bound": inflation <= 1 + eps + 1e-9,
                "filler_jobs": record.num_filler_jobs,
                "non_priority_bags_split": len(record.companion_bag),
            }
        )
    table.add_note("Lemma 2: the transformed instance admits a schedule of makespan <= (1+eps)*C.")
    return table


# ----------------------------------------------------------------------
# E6 — Lemmas 3 & 4: medium re-insertion and revert
# ----------------------------------------------------------------------
def experiment_e6_medium_reinsertion(*, quick: bool = True, seed: int = 0) -> ExperimentTable:
    """Measure the makespan increase of Lemma 3 and the zero-cost revert of Lemma 4."""
    table = ExperimentTable("E6", "Lemmas 3-4 — medium-job re-insertion and filler revert")
    eps = 0.25
    num_cases = 3 if quick else 8
    for offset in range(num_cases):
        # Hand-crafted shape in already-normalised units (the guessed optimum
        # is fixed to 1, so the Lemma-1 window for eps = 1/4 and k = 1 is
        # [1/16, 1/4)): many bags mixing one large job, a few small jobs, and
        # occasionally one *medium* job of size 0.1.  With a priority cap of
        # 1 most bags are non-priority, so their medium jobs are removed by
        # the transformation and Lemma 3 genuinely has work to do.
        rng = np.random.default_rng(seed + offset)
        sizes: list[float] = []
        bags: list[int] = []
        num_bags = 14
        for bag in range(num_bags):
            sizes.append(float(rng.choice([0.55, 0.35])))
            bags.append(bag)
            for _ in range(2):
                sizes.append(float(rng.uniform(0.01, 0.04)))
                bags.append(bag)
            if bag % 4 == 0:
                sizes.append(0.1)  # medium window [1/16, 1/4) for eps = 1/4
                bags.append(bag)
        instance = Instance.from_sizes(sizes, bags, num_machines=6, name=f"e6-{offset}")
        guess = 1.0
        rounded = scale_and_round(instance, eps, guess)
        working = rounded.instance
        working_job_classes = classify_jobs(working, eps)
        bag_classes = classify_bags(
            working,
            working_job_classes,
            mode=ConstantsMode.PRACTICAL,
            practical_priority_cap=1,
        )
        record = transform_instance(working, working_job_classes, bag_classes)
        base_schedule = lpt_schedule(record.transformed).schedule
        before = base_schedule.makespan()
        augmented = reinsert_medium_jobs(record, base_schedule)
        after = augmented.makespan()
        reverted = revert_to_original(record, augmented)
        reverted.validate()
        table.add_row(
            {
                "seed": seed + offset,
                "medium_jobs_reinserted": record.num_removed_medium,
                "makespan_before": before,
                "makespan_after_lemma3": after,
                "lemma3_increase": after - before,
                "lemma3_bound": 2 * eps,
                "makespan_after_revert": reverted.makespan(),
                "revert_conflict_free": reverted.is_conflict_free(),
                "revert_within_augmented": reverted.makespan() <= after + 1e-9,
            }
        )
    table.add_note(
        "Lemma 3 bounds the increase by 2*eps (in units of the guessed optimum); "
        "Lemma 4 never increases the makespan and removes every conflict."
    )
    return table


# ----------------------------------------------------------------------
# E7 — Lemma 6: MILP size as a function of eps
# ----------------------------------------------------------------------
def experiment_e7_milp_size(*, quick: bool = True, seed: int = 0) -> ExperimentTable:
    """Theory constants vs measured MILP sizes (patterns, integer variables)."""
    table = ExperimentTable("E7", "Lemma 6 — size of the configuration MILP")
    instance = clustered_sizes_instance(
        num_jobs=18 if quick else 30,
        num_machines=4,
        num_bags=6,
        size_values=(1.0, 0.55, 0.3),
        seed=seed,
    ).instance
    guess = combined_lower_bound(instance)
    eps_values = [1.0, 0.5, 0.25] if quick else [1.0, 0.5, 1 / 3, 0.25, 0.2]
    for eps in eps_values:
        theory = theory_constants_report(eps)
        config = EptasConfig(eps=eps, max_patterns=200_000).normalised()
        _, report = solve_for_guess(instance, guess, config)
        worst = theory["k=worst"]
        table.add_row(
            {
                "eps": normalise_eps(eps),
                "theory_q": worst["q"],
                "theory_b_prime": worst["b_prime"],
                "theory_log10_patterns": worst["log10_pattern_bound"],
                "measured_patterns": report.num_patterns,
                "measured_integer_vars": report.integer_variables,
                "measured_continuous_vars": report.continuous_variables,
                "measured_constraints": report.constraints,
                "milp_feasible": report.feasible,
            }
        )
    table.add_note(
        "the theory columns reproduce the 2^{O(...)} growth of Lemma 6 (log10 of the "
        "pattern bound); the measured columns use the practical constants on a real instance."
    )
    return table


# ----------------------------------------------------------------------
# E8 — Lemmas 7 & 11: repair statistics
# ----------------------------------------------------------------------
def experiment_e8_repair_statistics(*, quick: bool = True, seed: int = 0) -> ExperimentTable:
    """Swap/repair counters of the EPTAS across instance families."""
    table = ExperimentTable("E8", "Lemmas 7 & 11 — conflict-repair statistics")
    num_seeds = 2 if quick else 5
    families: dict[str, Callable[[int], Instance]] = {
        "uniform": lambda s: uniform_random_instance(
            num_jobs=24, num_machines=4, num_bags=8, seed=s
        ).instance,
        "bag_heavy": lambda s: bag_heavy_instance(
            num_machines=4, num_full_bags=3, extra_jobs=8, seed=s
        ).instance,
        "two_size": lambda s: two_size_instance(num_machines=6, seed=s).instance,
        # Many bags sharing few large sizes with a priority cap of 1 puts
        # most large jobs into wildcard slots, which is where Lemma-7 swaps
        # can become necessary.
        "many_bags_clustered": lambda s: clustered_sizes_instance(
            num_jobs=36,
            num_machines=6,
            num_bags=18,
            size_values=(0.7, 0.45, 0.05),
            seed=s,
        ).instance,
    }
    config = EptasConfig(eps=0.25, practical_priority_cap=1)
    for family, make in families.items():
        swaps, conflicts, fallbacks, residual = [], [], [], []
        for offset in range(num_seeds):
            instance = make(seed + offset)
            result = eptas_schedule(instance, eps=0.25, config=config)
            swaps.append(result.diagnostics.get("large_swaps") or 0)
            conflicts.append(result.diagnostics.get("repair_conflicts") or 0)
            attempts = result.diagnostics.get("attempts") or []
            fallback = 0
            for attempt in attempts:
                fallback += attempt.get("large_fallback_moves") or 0
                fallback += attempt.get("resolved_by_fallback") or 0
            fallbacks.append(fallback)
            residual.append(result.schedule.num_conflicts())
        table.add_row(
            {
                "family": family,
                "mean_lemma7_swaps": float(np.mean(swaps)),
                "mean_lemma11_conflicts": float(np.mean(conflicts)),
                "mean_fallback_moves": float(np.mean(fallbacks)),
                "residual_conflicts": int(max(residual)),
            }
        )
    table.add_note("residual_conflicts must be 0: every returned schedule is feasible.")
    return table


# ----------------------------------------------------------------------
# E9 — fault tolerance of bag-constrained schedules (intro motivation)
# ----------------------------------------------------------------------
def experiment_e9_fault_tolerance(*, quick: bool = True, seed: int = 0) -> ExperimentTable:
    """Replica survivability under machine failures with and without bags."""
    table = ExperimentTable("E9", "Motivation — replica survivability under machine failures")
    num_seeds = 3 if quick else 10
    num_failures_list = [1, 2]
    for num_failures in num_failures_list:
        surv_bag, surv_nobag, mk_bag, mk_nobag = [], [], [], []
        for offset in range(num_seeds):
            generated = replica_workload_instance(
                num_services=10, num_machines=6, replicas_range=(2, 3), seed=seed + offset
            )
            instance = generated.instance
            bag_schedule = lpt_schedule(instance).schedule
            # The bag-oblivious schedule ignores replica separation entirely:
            # first-fit on singleton bags happily co-locates the replicas of
            # one service on a single machine.
            no_bag_instance = Instance(
                [job.with_bag(job.id) for job in instance.jobs],
                instance.num_machines,
                name=instance.name + "#nobags",
            )
            no_bag_schedule_raw = first_fit_schedule(
                no_bag_instance, capacity=bag_schedule.makespan()
            ).schedule
            no_bag_schedule = Schedule(instance, no_bag_schedule_raw.assignment, allow_partial=True)

            failures_seed = seed * 1000 + offset
            report_bag = ClusterSimulator(instance, bag_schedule).run_with_random_failures(
                num_failures=num_failures, seed=failures_seed
            )
            simulator_nobag = ClusterSimulator.__new__(ClusterSimulator)
            simulator_nobag.instance = instance
            simulator_nobag.schedule = no_bag_schedule
            report_nobag = simulator_nobag.run_with_random_failures(
                num_failures=num_failures, seed=failures_seed
            )
            surv_bag.append(report_bag.survivability())
            surv_nobag.append(report_nobag.survivability())
            mk_bag.append(bag_schedule.makespan())
            mk_nobag.append(no_bag_schedule.makespan())
        table.add_row(
            {
                "machine_failures": num_failures,
                "survivability_with_bags": float(np.mean(surv_bag)),
                "survivability_without_bags": float(np.mean(surv_nobag)),
                "makespan_with_bags": float(np.mean(mk_bag)),
                "makespan_without_bags": float(np.mean(mk_nobag)),
            }
        )
    table.add_note(
        "bag-constrained schedules keep (almost) every service alive after failures at a "
        "small makespan premium — the paper's introductory motivation."
    )
    return table


# ----------------------------------------------------------------------
# E10 — ablations of the EPTAS design choices
# ----------------------------------------------------------------------
def experiment_e10_ablation(*, quick: bool = True, seed: int = 0) -> ExperimentTable:
    """Ablate the priority-bag cap, the MILP backend and the binary search."""
    table = ExperimentTable("E10", "Ablation of EPTAS design choices")
    # Few distinct sizes but many bags: this is the regime where the priority
    # cap genuinely changes the set of priority bags (and hence the MILP).
    instance = clustered_sizes_instance(
        num_jobs=24 if quick else 36,
        num_machines=4,
        num_bags=12,
        size_values=(0.8, 0.5, 0.2),
        seed=seed,
    ).instance
    optimum = exact_milp_schedule(instance).makespan

    variants: dict[str, EptasConfig] = {
        "default (cap=3, scipy)": EptasConfig(eps=0.25),
        "priority cap = 1": EptasConfig(eps=0.25, practical_priority_cap=1),
        "priority cap = 12": EptasConfig(eps=0.25, practical_priority_cap=12),
        "own branch-and-bound MILP": EptasConfig(eps=0.25, milp_backend="bnb"),
        "single-shot (no binary search)": EptasConfig(eps=0.25, max_search_iterations=1),
    }
    for label, config in variants.items():
        start = time.perf_counter()
        result = eptas_schedule(instance, eps=config.eps, config=config)
        elapsed = time.perf_counter() - start
        table.add_row(
            {
                "variant": label,
                "ratio": result.makespan / optimum,
                "time_s": elapsed,
                "patterns": result.diagnostics.get("num_patterns"),
                "integer_vars": result.diagnostics.get("integer_variables"),
                "priority_bags": result.diagnostics.get("num_priority_bags"),
            }
        )
    table.add_note(
        "all variants stay feasible; a larger priority cap grows the MILP, a smaller one "
        "shifts work to the swap-repair stages."
    )
    return table


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
EXPERIMENTS: dict[str, Callable[..., ExperimentTable]] = {
    "E1": experiment_e1_figure1_placement,
    "E2": experiment_e2_approximation_ratio,
    "E3": experiment_e3_scaling_with_n,
    "E4": experiment_e4_epsilon_tradeoff,
    "E5": experiment_e5_transformation_overhead,
    "E6": experiment_e6_medium_reinsertion,
    "E7": experiment_e7_milp_size,
    "E8": experiment_e8_repair_statistics,
    "E9": experiment_e9_fault_tolerance,
    "E10": experiment_e10_ablation,
}


def run_experiment(experiment_id: str, *, quick: bool = True, seed: int = 0) -> ExperimentTable:
    """Run a single experiment by identifier (``"E1"`` … ``"E10"``)."""
    try:
        driver = EXPERIMENTS[experiment_id.upper()]
    except KeyError as exc:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: {sorted(EXPERIMENTS)}"
        ) from exc
    return driver(quick=quick, seed=seed)


def run_all_experiments(*, quick: bool = True, seed: int = 0) -> list[ExperimentTable]:
    """Run every experiment and return the tables in DESIGN.md order."""
    return [driver(quick=quick, seed=seed) for driver in EXPERIMENTS.values()]
