"""Experiment drivers: one function per experiment listed in DESIGN.md.

Each driver returns an :class:`~repro.experiments.tables.ExperimentTable`.
Every driver takes a ``quick`` flag: the benchmark harness runs the quick
variant (seconds), ``python -m repro experiments`` can run the full variant
(minutes).  The experiment identifiers (E1…E10) match DESIGN.md and
EXPERIMENTS.md.

Since the introduction of :mod:`repro.orchestration`, the experiment logic
itself lives in declarative specs (:mod:`repro.orchestration.grids`): a
parameter grid, a per-cell function and an optional reduction.  The driver
functions here are thin synchronous wrappers that expand and execute the
spec in-process (:func:`repro.orchestration.registry.run_spec_inline`), so
``experiment_e1_figure1_placement()`` and a parallel, store-backed
``repro orch run e1`` produce identical tables.
"""

from __future__ import annotations

from typing import Callable

from .tables import ExperimentTable

__all__ = [
    "experiment_e1_figure1_placement",
    "experiment_e2_approximation_ratio",
    "experiment_e3_scaling_with_n",
    "experiment_e4_epsilon_tradeoff",
    "experiment_e5_transformation_overhead",
    "experiment_e6_medium_reinsertion",
    "experiment_e7_milp_size",
    "experiment_e8_repair_statistics",
    "experiment_e9_fault_tolerance",
    "experiment_e10_ablation",
    "EXPERIMENTS",
    "run_experiment",
    "run_all_experiments",
]


def _make_driver(name: str) -> Callable[..., ExperimentTable]:
    def driver(*, quick: bool = True, seed: int = 0) -> ExperimentTable:
        # Imported lazily: ``repro.orchestration.registry`` imports this
        # package's ``tables`` module, so a module-level import here would
        # close an import cycle through ``repro.experiments.__init__``.
        from ..orchestration.registry import get_spec, run_spec_inline

        return run_spec_inline(get_spec(name), quick=quick, seed=seed)

    driver.__name__ = f"experiment_{name}"
    driver.__qualname__ = driver.__name__
    driver.__doc__ = f"Run experiment {name.upper()} in-process and return its table."
    return driver


experiment_e1_figure1_placement = _make_driver("e1")
experiment_e2_approximation_ratio = _make_driver("e2")
experiment_e3_scaling_with_n = _make_driver("e3")
experiment_e4_epsilon_tradeoff = _make_driver("e4")
experiment_e5_transformation_overhead = _make_driver("e5")
experiment_e6_medium_reinsertion = _make_driver("e6")
experiment_e7_milp_size = _make_driver("e7")
experiment_e8_repair_statistics = _make_driver("e8")
experiment_e9_fault_tolerance = _make_driver("e9")
experiment_e10_ablation = _make_driver("e10")


EXPERIMENTS: dict[str, Callable[..., ExperimentTable]] = {
    "E1": experiment_e1_figure1_placement,
    "E2": experiment_e2_approximation_ratio,
    "E3": experiment_e3_scaling_with_n,
    "E4": experiment_e4_epsilon_tradeoff,
    "E5": experiment_e5_transformation_overhead,
    "E6": experiment_e6_medium_reinsertion,
    "E7": experiment_e7_milp_size,
    "E8": experiment_e8_repair_statistics,
    "E9": experiment_e9_fault_tolerance,
    "E10": experiment_e10_ablation,
}


def run_experiment(experiment_id: str, *, quick: bool = True, seed: int = 0) -> ExperimentTable:
    """Run a single experiment by identifier (``"E1"`` … ``"E10"``)."""
    try:
        driver = EXPERIMENTS[experiment_id.upper()]
    except KeyError as exc:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: {sorted(EXPERIMENTS)}"
        ) from exc
    return driver(quick=quick, seed=seed)


def run_all_experiments(*, quick: bool = True, seed: int = 0) -> list[ExperimentTable]:
    """Run every experiment and return the tables in DESIGN.md order."""
    return [driver(quick=quick, seed=seed) for driver in EXPERIMENTS.values()]
