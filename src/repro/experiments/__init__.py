"""Experiment harness: tables, drivers and the E1…E10 registry (see DESIGN.md)."""

from .tables import ExperimentTable
from .drivers import (
    EXPERIMENTS,
    experiment_e1_figure1_placement,
    experiment_e2_approximation_ratio,
    experiment_e3_scaling_with_n,
    experiment_e4_epsilon_tradeoff,
    experiment_e5_transformation_overhead,
    experiment_e6_medium_reinsertion,
    experiment_e7_milp_size,
    experiment_e8_repair_statistics,
    experiment_e9_fault_tolerance,
    experiment_e10_ablation,
    run_all_experiments,
    run_experiment,
)

__all__ = [
    "EXPERIMENTS",
    "ExperimentTable",
    "experiment_e1_figure1_placement",
    "experiment_e2_approximation_ratio",
    "experiment_e3_scaling_with_n",
    "experiment_e4_epsilon_tradeoff",
    "experiment_e5_transformation_overhead",
    "experiment_e6_medium_reinsertion",
    "experiment_e7_milp_size",
    "experiment_e8_repair_statistics",
    "experiment_e9_fault_tolerance",
    "experiment_e10_ablation",
    "run_all_experiments",
    "run_experiment",
]
