"""The store server: one owned local store, served to a worker fleet.

SQLite WAL coordinates any number of workers *on one host* but is unsafe on
network filesystems, so multi-machine fleets need exactly one process with
file access.  :class:`StoreServer` is that process: it owns a single local
:class:`~repro.orchestration.store.ExperimentStore` and dispatches framed
JSON requests (:mod:`repro.distributed.protocol`) from any number of TCP
clients onto it.  All dispatch happens under one lock — concurrent remote
claims therefore serialize through the single writer SQLite requires
anyway, and the store's ``BEGIN IMMEDIATE`` claim semantics hold unchanged.

Failure semantics
-----------------
* A request whose method raises gets a structured ``error`` reply (exception
  class name + message); the connection stays up and the store is untouched
  beyond whatever the store method itself committed.
* Mutating requests carry a client-generated ``op`` id.  The server records
  the reply of every executed op (bounded LRU); a request replaying a known
  op id returns the recorded reply *without touching the store*.  That is
  what makes client retry after a lost reply safe: a retried ``complete()``
  can never double-release dependents, and a retried ``claim_next()``
  returns the row the lost reply already claimed instead of claiming a
  second one.  The replay check and the execution share the dispatch lock,
  so a retry racing its own original request waits and then replays.
* Authentication is an optional shared token checked per request
  (``hmac.compare_digest``); a bad token gets an ``AuthError`` reply and the
  connection is dropped.  The token gates accidental cross-talk between
  fleets — it is not transport encryption; run the port inside the
  cluster's trust boundary.

Shutdown is graceful: ``shutdown()`` (or the context manager / SIGTERM in
the CLI) stops accepting, unblocks ``serve_forever``, and closes the store
after the accept loop exits.  Rows claimed by workers that never return are
reclaimed by the normal ``reclaim_stale`` path on the next drain.
"""

from __future__ import annotations

import dataclasses
import hmac
import os
import socket
import socketserver
import threading
from collections import OrderedDict
from typing import Any

from ..orchestration.store import ExperimentStore
from .protocol import (
    PROTOCOL_VERSION,
    RPC_METHODS,
    ConnectionClosed,
    FrameError,
    format_address,
    recv_frame,
    send_frame,
)

__all__ = ["StoreServer", "OP_CACHE_SIZE"]

# Replies remembered for op-id replay.  Sized for hundreds of workers each
# with a handful of retryable calls in flight; FIFO eviction means an op
# is forgotten only after thousands of newer ops — far beyond any client's
# retry window.
OP_CACHE_SIZE = 4096


class _OpCache:
    """Bounded FIFO map of executed op ids to their recorded replies."""

    def __init__(self, size: int = OP_CACHE_SIZE) -> None:
        self._size = size
        self._replies: OrderedDict[str, dict[str, Any]] = OrderedDict()

    def get(self, op_id: str) -> dict[str, Any] | None:
        return self._replies.get(op_id)

    def put(self, op_id: str, reply: dict[str, Any]) -> None:
        self._replies[op_id] = reply
        while len(self._replies) > self._size:
            self._replies.popitem(last=False)


def _encode(value: Any) -> Any:
    """JSON-shape a store result (dataclasses → dicts, tuples → lists)."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _encode(dataclasses.asdict(value))
    if isinstance(value, (list, tuple)):
        return [_encode(item) for item in value]
    if isinstance(value, dict):
        return {key: _encode(item) for key, item in value.items()}
    return value


class _Handler(socketserver.BaseRequestHandler):
    """Per-connection loop: read a frame, dispatch, reply, repeat."""

    def setup(self) -> None:
        self.server.owner._track(self.request)  # type: ignore[attr-defined]

    def finish(self) -> None:
        self.server.owner._untrack(self.request)  # type: ignore[attr-defined]

    def handle(self) -> None:
        while True:
            try:
                request = recv_frame(self.request)
            except (ConnectionClosed, FrameError, OSError):
                return  # peer gone or speaking garbage: drop the connection
            reply = self.server.owner.dispatch(request)  # type: ignore[attr-defined]
            try:
                send_frame(self.request, reply)
            except OSError:
                return
            except (FrameError, TypeError, ValueError) as exc:
                # The reply itself cannot be framed (result over the frame
                # ceiling, or not JSON-serializable): fail the one call with
                # a structured error instead of dying with no reply — the
                # client would otherwise retry the same request into the
                # same wall and misreport it as a network failure.
                try:
                    send_frame(
                        self.request,
                        _error(request.get("id"), "ReplyError", str(exc)),
                    )
                except OSError:
                    return
            if reply.get("error", {}).get("type") == "AuthError":
                return  # no second guesses on a shared-token mismatch


class _TCPServer(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True
    owner: "StoreServer"


class _TCP6Server(_TCPServer):
    address_family = socket.AF_INET6


def _server_class(host: str, port: int) -> type[_TCPServer]:
    """Pick the socket family from the bind host (``::1`` needs AF_INET6)."""
    try:
        info = socket.getaddrinfo(host or None, port, type=socket.SOCK_STREAM)
    except OSError:
        return _TCPServer  # let bind() produce the real error
    if info and info[0][0] == socket.AF_INET6:
        return _TCP6Server
    return _TCPServer


class StoreServer:
    """Serve one local experiment store to remote workers over TCP.

    ``port=0`` binds an ephemeral port (tests); the actual address is
    :attr:`address`.  ``fifo_every`` overrides the owned store's bounded
    wait interleave — it is the *server's* knob because the claim ordinal
    lives in shared scheduler state, global across every remote worker.
    """

    def __init__(
        self,
        db_path: str | os.PathLike[str],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        token: str | None = None,
        fifo_every: int | None = None,
    ) -> None:
        store_kwargs = {} if fifo_every is None else {"fifo_every": fifo_every}
        # Handler threads all dispatch under self._lock, but the connection
        # they dispatch *from* differs per request — hence cross-thread.
        self._store = ExperimentStore(db_path, check_same_thread=False, **store_kwargs)
        self._token = token
        self._lock = threading.Lock()
        self._ops = _OpCache()
        self._connections: set[Any] = set()
        self._conn_lock = threading.Lock()
        self._serve_thread: threading.Thread | None = None
        self._serving = threading.Event()
        self._closed = False
        try:
            self._tcp = _server_class(host, port)((host, port), _Handler)
        except BaseException:
            self._store.close()
            raise
        self._tcp.owner = self

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (resolved even when ``port=0`` was asked)."""
        host, port = self._tcp.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        """The ``tcp://host:port`` form clients pass to ``--connect``."""
        return format_address(*self.address)

    def serve_forever(self) -> None:
        """Block serving requests until :meth:`shutdown` is called."""
        self._serving.set()
        self._tcp.serve_forever(poll_interval=0.1)

    def start(self) -> "StoreServer":
        """Serve on a background thread (tests and embedded use)."""
        if self._serve_thread is None:
            self._serve_thread = threading.Thread(
                target=self.serve_forever, name="repro-store-server", daemon=True
            )
            self._serve_thread.start()
            # Wait for the accept loop to be entered: a shutdown() racing an
            # unstarted loop would skip the stop request and leave the
            # thread serving a closed listener.  (If the loop is entered
            # with a stop already requested, serve_forever exits at once.)
            self._serving.wait(timeout=5.0)
        return self

    def shutdown(self) -> None:
        """Stop accepting, unblock ``serve_forever``, close the store."""
        if self._closed:
            return
        self._closed = True
        # BaseServer.shutdown blocks on an event only serve_forever sets, so
        # it must be skipped when the accept loop was never entered.
        if self._serving.is_set():
            self._tcp.shutdown()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
        # Daemon handler threads are not joined by server_close; dropping
        # their sockets unblocks the recv they sit in, so connected clients
        # see a closed connection (and reconnect) rather than a half-dead
        # server that still answers.
        with self._conn_lock:
            for sock in list(self._connections):
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
        self._tcp.server_close()
        # Taking the lock drains any request already mid-dispatch before the
        # store's connection goes away beneath it.
        with self._lock:
            self._store.close()

    def __enter__(self) -> "StoreServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    def _track(self, sock: Any) -> None:
        with self._conn_lock:
            self._connections.add(sock)

    def _untrack(self, sock: Any) -> None:
        with self._conn_lock:
            self._connections.discard(sock)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def dispatch(self, request: dict[str, Any]) -> dict[str, Any]:
        """One request frame → one reply frame (never raises)."""
        request_id = request.get("id")
        method = request.get("method")
        # Compared as UTF-8 bytes: compare_digest refuses non-ASCII *str*
        # operands, and raising here would kill the handler with no reply.
        if self._token is not None and not hmac.compare_digest(
            str(request.get("token") or "").encode(), self._token.encode()
        ):
            return _error(request_id, "AuthError", "missing or invalid token")
        if not isinstance(method, str) or method not in RPC_METHODS:
            return _error(request_id, "UnknownMethod", f"unknown method {method!r}")
        params = request.get("params") or {}
        if not isinstance(params, dict):
            return _error(request_id, "BadRequest", "params must be an object")
        op_id = request.get("op")
        with self._lock:
            if self._closed:
                return _error(request_id, "ServerClosed", "server is shutting down")
            if op_id is not None:
                recorded = self._ops.get(str(op_id))
                if recorded is not None:
                    return {**recorded, "id": request_id, "replayed": True}
            try:
                result = _encode(self._invoke(method, params))
            except Exception as exc:  # structured reply; connection survives
                # Errors are deliberately not recorded for replay: a failed
                # op committed nothing, so re-executing the retry is the
                # correct (and possibly now-successful) outcome.
                return _error(request_id, type(exc).__name__, str(exc))
            if op_id is not None:
                self._ops.put(str(op_id), {"result": result})
            return {"id": request_id, "result": result}

    def _invoke(self, method: str, params: dict[str, Any]) -> Any:
        if method == "ping":
            return "pong"
        if method == "store_info":
            return {
                "path": str(self._store.path),
                "fifo_every": self._store.fifo_every,
                "protocol": PROTOCOL_VERSION,
            }
        if method == "set_fifo_every":
            self._store.fifo_every = max(0, int(params["fifo_every"]))
            return self._store.fifo_every
        if method == "duration_samples" and params.get("since") is not None:
            # JSON turned the (finished_at, id) watermark into a list.
            params = {**params, "since": tuple(params["since"])}
        return getattr(self._store, method)(**params)


def _error(request_id: Any, error_type: str, message: str) -> dict[str, Any]:
    return {"id": request_id, "error": {"type": error_type, "message": message}}
