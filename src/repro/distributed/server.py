"""The store server: one owned local store, served to a worker fleet.

SQLite WAL coordinates any number of workers *on one host* but is unsafe on
network filesystems, so multi-machine fleets need exactly one process with
file access.  :class:`StoreServer` is that process: it owns a single local
:class:`~repro.orchestration.store.ExperimentStore` and dispatches framed
JSON requests (:mod:`repro.distributed.protocol`) from any number of TCP
clients onto it.  All dispatch happens under one lock
(``serialize_dispatch``) — concurrent remote claims therefore serialize
through the single writer SQLite requires anyway, and the store's ``BEGIN
IMMEDIATE`` claim semantics hold unchanged.

The transport skeleton — threaded TCP listener, per-connection handler
loop, token auth, op-id replay, graceful shutdown — is the shared
:class:`~repro.distributed.rpc.RpcServer`; the solver fabric servers ride
the same base.  See that module for the failure semantics (structured
error replies, AuthError connection drops, replay of recorded op replies)
that make client retry after a lost reply safe: a retried ``complete()``
can never double-release dependents, and a retried ``claim_next()``
returns the row the lost reply already claimed instead of claiming a
second one.

Shutdown is graceful: ``shutdown()`` (or the context manager / SIGTERM in
the CLI) stops accepting, unblocks ``serve_forever``, and closes the store
after the accept loop exits.  Rows claimed by workers that never return are
reclaimed by the normal ``reclaim_stale`` path on the next drain.
"""

from __future__ import annotations

import os
from typing import Any

from ..analysis import racecheck
from ..observability import events
from ..orchestration.store import ExperimentStore
from .protocol import PROTOCOL_VERSION, RPC_METHODS
from .rpc import OP_CACHE_SIZE, RpcServer

__all__ = ["StoreServer", "OP_CACHE_SIZE"]


class StoreServer(RpcServer):
    """Serve one local experiment store to remote workers over TCP.

    ``port=0`` binds an ephemeral port (tests); the actual address is
    :attr:`address`.  ``fifo_every`` overrides the owned store's bounded
    wait interleave — it is the *server's* knob because the claim ordinal
    lives in shared scheduler state, global across every remote worker.
    """

    rpc_methods = RPC_METHODS
    serialize_dispatch = True
    thread_name = "repro-store-server"
    # Claim-lifecycle dispatches get server.dispatch trace spans keyed by
    # the client's op id, completing the client.call → server.dispatch →
    # worker.cell chain the dashboard renders.
    spanned_methods = frozenset({"claim_next", "complete", "fail"})

    def __init__(
        self,
        db_path: str | os.PathLike[str],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        token: str | None = None,
        fifo_every: int | None = None,
    ) -> None:
        store_kwargs = {} if fifo_every is None else {"fifo_every": fifo_every}
        # Handler threads all dispatch under the server lock, but the
        # connection they dispatch *from* differs per request — hence
        # cross-thread.
        self._store = ExperimentStore(db_path, check_same_thread=False, **store_kwargs)
        try:
            super().__init__(host=host, port=port, token=token)
        except BaseException:
            self._store.close()
            raise
        # Handler threads may touch the store only under the dispatch lock;
        # the race checker enforces exactly that sanctioned path.
        racecheck.guard_store(self._store, self._lock)

    def _on_shutdown(self) -> None:
        # Final span flush: batching may hold a sub-batch tail.
        events.flush(self._store)
        self._store.close()

    def _flush_spans(self) -> None:
        # The server's own dispatch spans (and, for in-process fleets, any
        # client/worker spans sharing this process's buffer) journal
        # straight into the owned store — batched, because a write
        # transaction per dispatch would dominate cheap requests.
        # events.maybe_flush swallows store errors — a trace write must
        # never fail the dispatch that triggered it.
        if not events.pending():
            return
        with self._lock:
            if self._closed:
                return
            events.maybe_flush(self._store)

    def _invoke(self, method: str, params: dict[str, Any]) -> Any:
        if method == "ping":
            return "pong"
        if method == "store_info":
            return {
                "path": str(self._store.path),
                "fifo_every": self._store.fifo_every,
                "protocol": PROTOCOL_VERSION,
            }
        if method == "set_fifo_every":
            self._store.fifo_every = max(0, int(params["fifo_every"]))
            return self._store.fifo_every
        if method == "duration_samples" and params.get("since") is not None:
            # JSON turned the (finished_at, id) watermark into a list.
            params = {**params, "since": tuple(params["since"])}
        if method == "fetch_events":
            # Read-your-writes for trace readers: journal the batched span
            # tail before serving the read, so a dashboard polling right
            # after a drain sees the full chains, not a flush-cycle lag.
            events.flush(self._store)
        return getattr(self._store, method)(**params)
