"""RemoteStore: the experiment store over a socket.

Implements the full :class:`~repro.distributed.protocol.StoreProtocol`
against a :class:`~repro.distributed.server.StoreServer`, so the runner,
scheduler, planner, export and cache layers work unchanged when handed one
— a worker process on another machine is just ``run_worker`` with a
``tcp://host:port`` target instead of a file path.

Reliability model
-----------------
One persistent socket, one request in flight at a time (workers are
sequential; concurrency comes from running many workers, each with its own
``RemoteStore``).  On a connection failure or timeout the socket is dropped
and the call retried on a fresh connection, with backoff:

* *Reads* are naturally idempotent — retried verbatim.
* *Mutating calls* (claims, completions, reclaims, priority writes) carry a
  client-generated op id.  If the original request actually executed and
  only the reply was lost, the server replays the recorded reply instead of
  executing again — a retried ``complete()`` never double-releases
  dependents, and a timed-out ``claim_next()`` recovers the very row the
  lost reply claimed rather than claiming (and stranding) a second one.

Only transport failures are retried.  A structured error reply from the
server (store exception, unknown method) raises
:class:`~repro.distributed.protocol.RemoteOperationError` immediately, and
an ``AuthError`` raises without any retry — a wrong token cannot become a
reconnect storm.
"""

from __future__ import annotations

import socket
import time
import uuid
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

from ..observability import events, metrics
from ..orchestration.store import ClaimedRow, StoredRow
from .protocol import (
    MUTATING_METHODS,
    PROTOCOL_VERSION,
    ConnectionClosed,
    FrameError,
    ProtocolError,
    RemoteOperationError,
    encode_frame,
    parse_address,
    recv_frame,
    send_encoded,
)
from .rpc import knock, raise_reply_error

__all__ = ["RemoteStore", "StoreConnectionError"]


class StoreConnectionError(ProtocolError):
    """The server could not be reached (after the configured retries)."""


class RemoteStore:
    """A :class:`StoreProtocol` implementation speaking to a store server.

    ``target`` is ``"host:port"`` or ``"tcp://host:port"``.  ``fifo_every``
    (when given) is pushed to the server — the interleave counter is global
    scheduler state, so this adjusts every worker's bounded-wait knob, last
    writer wins.  ``timeout`` bounds each request round-trip; ``retries``
    transport-level retry attempts are made before
    :class:`StoreConnectionError` (reads and op-id-guarded mutations are
    both safe to retry, see the module docstring).
    """

    def __init__(
        self,
        target: str,
        *,
        token: str | None = None,
        fifo_every: int | None = None,
        timeout: float = 60.0,
        connect_timeout: float = 10.0,
        retries: int = 4,
        retry_delay: float = 0.2,
    ) -> None:
        self.host, self.port = parse_address(target)
        self._token = token
        self._timeout = timeout
        self._connect_timeout = connect_timeout
        self._retries = max(0, int(retries))
        self._retry_delay = retry_delay
        self._sock: socket.socket | None = None
        self._request_id = 0
        self._closed = False
        self._last_op: str | None = None
        info = self._call("store_info", {})
        self._check_protocol(info)
        if fifo_every is not None:
            self.fifo_every = int(
                self._call("set_fifo_every", {"fifo_every": int(fifo_every)})
            )
        else:
            self.fifo_every = int(info["fifo_every"])

    @property
    def last_op(self) -> str | None:
        """Op id of the most recent *successful* mutating call.

        The runner stamps each claimed cell's ``worker.cell`` trace span
        with this, correlating the cell's execution with the
        ``claim_next`` chain that handed it out.
        """
        return self._last_op

    def _check_protocol(self, info: Any) -> None:
        """Fail at connect time on a server speaking another protocol version.

        Without this an incompatible pair would surface as confusing
        per-method errors mid-drain instead of one clean mismatch up front.
        """
        version = info.get("protocol") if isinstance(info, Mapping) else None
        if version != PROTOCOL_VERSION:
            self.close()
            raise StoreConnectionError(
                f"store server at {self.host}:{self.port} speaks protocol "
                f"{version!r}; this client speaks {PROTOCOL_VERSION}"
            )

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _connect(self) -> socket.socket:
        # Keep knocking until the deadline (rpc.knock): a server mid-restart
        # comes up within moments, and waiting here is what lets every
        # worker simply outlive it.
        try:
            sock = knock(
                self.host,
                self.port,
                timeout=self._timeout,
                connect_timeout=self._connect_timeout,
                retry_delay=self._retry_delay,
            )
        except OSError as exc:
            raise StoreConnectionError(
                f"cannot connect to store server at {self.host}:{self.port}: {exc}"
            ) from exc
        metrics.counter("remote_store.reconnects")
        self._sock = sock
        return sock

    def _disconnect(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _call(self, method: str, params: dict[str, Any]) -> Any:
        if self._closed:
            raise StoreConnectionError("RemoteStore is closed")
        self._request_id += 1
        payload: dict[str, Any] = {
            "id": self._request_id,
            "method": method,
            "params": params,
        }
        if self._token is not None:
            payload["token"] = self._token
        op: str | None = None
        if method in MUTATING_METHODS:
            op = uuid.uuid4().hex
            payload["op"] = op
        # Serialised before the retry loop: an unframeable *request* (over
        # the frame ceiling, non-JSON value) is a local payload bug — it
        # raises FrameError straight to the caller instead of being retried
        # and misreported as an unreachable server.
        frame = encode_frame(payload)
        metrics.counter("remote_store.calls")
        metrics.counter("remote_store.bytes_out", len(frame))
        started = time.perf_counter()
        last_exc: Exception | None = None
        for attempt in range(self._retries + 1):
            try:
                sock = self._sock or self._connect()
                send_encoded(sock, frame)
                reply = recv_frame(sock)
                if reply.get("id") != payload["id"]:
                    # A half-read earlier frame desynchronised the stream;
                    # the connection is unusable, but the request is safe to
                    # replay (op id) or re-issue (read).
                    raise FrameError(
                        f"reply id {reply.get('id')!r} does not match request "
                        f"{payload['id']!r}"
                    )
            except (OSError, ConnectionClosed, FrameError) as exc:
                self._disconnect()
                last_exc = exc
                if attempt < self._retries:
                    metrics.counter("remote_store.retries")
                    time.sleep(self._retry_delay * (attempt + 1))
                    continue
                raise StoreConnectionError(
                    f"store server at {self.host}:{self.port} unreachable "
                    f"after {self._retries + 1} attempts: {exc}"
                ) from exc
            error = reply.get("error")
            if error is not None:
                if error.get("type") == "ServerClosed":
                    # A server mid-shutdown is a transport condition, not an
                    # application error: drop the connection and retry — a
                    # replacement server on the same address picks us up.
                    self._disconnect()
                    last_exc = RemoteOperationError(
                        "ServerClosed", str(error.get("message", ""))
                    )
                    if attempt < self._retries:
                        metrics.counter("remote_store.retries")
                        time.sleep(self._retry_delay * (attempt + 1))
                        continue
                    raise StoreConnectionError(
                        f"store server at {self.host}:{self.port} is shutting down"
                    ) from last_exc
                raise_reply_error(error)
            if op is not None:
                self._last_op = op
            if method in events.SPANNED_METHODS:
                events.emit(
                    "client.call",
                    op=op,
                    actor=f"client:{self.host}:{self.port}",
                    duration=time.perf_counter() - started,
                    detail={"method": method, "replayed": bool(reply.get("replayed"))},
                )
            return reply.get("result")
        raise StoreConnectionError(str(last_exc))  # pragma: no cover - unreachable

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        self._closed = True
        self._disconnect()

    def __enter__(self) -> "RemoteStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def ping(self) -> bool:
        return self._call("ping", {}) == "pong"

    def store_info(self) -> dict[str, Any]:
        return self._call("store_info", {})

    # ------------------------------------------------------------------
    # Grid population and claiming
    # ------------------------------------------------------------------
    def add_rows(self, experiment: str, grid: Iterable[Mapping[str, Any]]) -> int:
        return int(
            self._call(
                "add_rows",
                {"experiment": experiment, "grid": [dict(params) for params in grid]},
            )
        )

    def claim_next(
        self, worker: str, experiments: Sequence[str] | None = None
    ) -> ClaimedRow | None:
        result = self._call(
            "claim_next", {"worker": worker, "experiments": _names(experiments)}
        )
        return ClaimedRow(**result) if result is not None else None

    def complete(
        self,
        row_id: int,
        result: Mapping[str, Any],
        *,
        duration: float,
        worker: str | None = None,
    ) -> bool:
        return bool(
            self._call(
                "complete",
                {
                    "row_id": row_id,
                    "result": dict(result),
                    "duration": duration,
                    "worker": worker,
                },
            )
        )

    def fail(
        self, row_id: int, error: str, *, duration: float, worker: str | None = None
    ) -> bool:
        return bool(
            self._call(
                "fail",
                {"row_id": row_id, "error": error, "duration": duration, "worker": worker},
            )
        )

    def resubmit(self, row_id: int) -> bool:
        return bool(self._call("resubmit", {"row_id": row_id}))

    def reclaim_stale(
        self, *, older_than: float = 0.0, experiments: Sequence[str] | None = None
    ) -> int:
        return int(
            self._call(
                "reclaim_stale",
                {"older_than": older_than, "experiments": _names(experiments)},
            )
        )

    def reset(
        self,
        experiments: Sequence[str] | None = None,
        *,
        statuses: Sequence[str] = ("running", "error"),
    ) -> int:
        return int(
            self._call(
                "reset", {"experiments": _names(experiments), "statuses": list(statuses)}
            )
        )

    def delete_rows(
        self,
        experiments: Sequence[str] | None = None,
        *,
        statuses: Sequence[str] | None = None,
    ) -> int:
        return int(
            self._call(
                "delete_rows",
                {
                    "experiments": _names(experiments),
                    "statuses": list(statuses) if statuses is not None else None,
                },
            )
        )

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def set_schedule(
        self,
        entries: Iterable[tuple[str, str, float, float | None]],
        *,
        if_replan_round: int | None = None,
    ) -> int | None:
        result = self._call(
            "set_schedule",
            {
                "entries": [list(entry) for entry in entries],
                "if_replan_round": if_replan_round,
            },
        )
        return int(result) if result is not None else None

    def set_dependencies(
        self, experiment: str, param_hash: str, depends_on: Sequence[str]
    ) -> bool:
        return bool(
            self._call(
                "set_dependencies",
                {
                    "experiment": experiment,
                    "param_hash": param_hash,
                    "depends_on": list(depends_on),
                },
            )
        )

    def sync_dependencies(self, experiments: Sequence[str] | None = None) -> int:
        return int(self._call("sync_dependencies", {"experiments": _names(experiments)}))

    def blocked_count(self, experiments: Sequence[str] | None = None) -> int:
        return int(self._call("blocked_count", {"experiments": _names(experiments)}))

    def blocking_dependencies(
        self, experiments: Sequence[str] | None = None
    ) -> list[dict[str, Any]]:
        return self._call("blocking_dependencies", {"experiments": _names(experiments)})

    def fail_blocked_on_error(self, experiments: Sequence[str] | None = None) -> int:
        return int(
            self._call("fail_blocked_on_error", {"experiments": _names(experiments)})
        )

    # ------------------------------------------------------------------
    # Online re-planning
    # ------------------------------------------------------------------
    def completion_count(self) -> int:
        return int(self._call("completion_count", {}))

    def replan_epoch(self) -> int:
        return int(self._call("replan_epoch", {}))

    def try_begin_replan(self, every: int) -> int | None:
        result = self._call("try_begin_replan", {"every": every})
        return int(result) if result is not None else None

    def publish_replan_epoch(self, round_no: int) -> None:
        self._call("publish_replan_epoch", {"round_no": round_no})

    def duration_history(
        self, experiments: Sequence[str] | None = None
    ) -> list[tuple[str, dict[str, Any], float]]:
        return [
            (experiment, params, duration)
            for experiment, params, duration, _, _ in self.duration_samples(experiments)
        ]

    def duration_samples(
        self,
        experiments: Sequence[str] | None = None,
        *,
        since: tuple[float, int] | None = None,
    ) -> list[tuple[str, dict[str, Any], float, float, int]]:
        rows = self._call(
            "duration_samples",
            {"experiments": _names(experiments), "since": list(since) if since else None},
        )
        # Tuples (not JSON's lists): CostModel.refit compares watermarks.
        return [tuple(row) for row in rows]

    # ------------------------------------------------------------------
    # Cross-store cost priors
    # ------------------------------------------------------------------
    def save_cost_priors(self, priors: Mapping[str, Mapping[str, Any]]) -> int:
        return int(
            self._call(
                "save_cost_priors",
                {"priors": {name: dict(stats) for name, stats in priors.items()}},
            )
        )

    # ------------------------------------------------------------------
    # Service telemetry tail
    # ------------------------------------------------------------------
    def service_telemetry_tail(self) -> dict[str, int]:
        return {
            str(key): int(value)
            for key, value in self._call("service_telemetry_tail", {}).items()
        }

    def set_service_telemetry_tail(self, counters: Mapping[str, int]) -> None:
        self._call(
            "set_service_telemetry_tail",
            {"counters": {str(key): int(value) for key, value in counters.items()}},
        )

    def load_cost_priors(self) -> dict[str, dict[str, Any]]:
        return self._call("load_cost_priors", {})

    # ------------------------------------------------------------------
    # Trace spans
    # ------------------------------------------------------------------
    def record_events(
        self, events: Sequence[Mapping[str, Any]], *, retain: int | None = None
    ) -> int:
        return int(
            self._call(
                "record_events",
                {"events": [dict(event) for event in events], "retain": retain},
            )
        )

    def fetch_events(
        self,
        *,
        op: str | None = None,
        kinds: Sequence[str] | None = None,
        limit: int = 500,
    ) -> list[dict[str, Any]]:
        return self._call(
            "fetch_events",
            {"op": op, "kinds": list(kinds) if kinds is not None else None, "limit": limit},
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def status_counts(self) -> dict[str, dict[str, int]]:
        return self._call("status_counts", {})

    def pending_count(self, experiments: Sequence[str] | None = None) -> int:
        return int(self._call("pending_count", {"experiments": _names(experiments)}))

    def fetch_rows(
        self, experiment: str, *, status: str | None = None
    ) -> list[StoredRow]:
        rows = self._call("fetch_rows", {"experiment": experiment, "status": status})
        return [
            StoredRow(**{**row, "depends_on": tuple(row.get("depends_on") or ())})
            for row in rows
        ]

    def experiments(self) -> list[str]:
        return list(self._call("experiments", {}))

    # ------------------------------------------------------------------
    # Result cache
    # ------------------------------------------------------------------
    def cache_contains(self, key: str) -> bool:
        return bool(self._call("cache_contains", {"key": key}))

    def cache_get(self, key: str) -> dict[str, Any] | None:
        return self._call("cache_get", {"key": key})

    def cache_put(self, key: str, solver: str, payload: Mapping[str, Any]) -> None:
        self._call("cache_put", {"key": key, "solver": solver, "payload": dict(payload)})

    def cache_stats(self) -> dict[str, int]:
        return self._call("cache_stats", {})

    def clear_cache(self) -> int:
        return int(self._call("clear_cache", {}))


def _names(experiments: Sequence[str] | None) -> list[str] | None:
    return list(experiments) if experiments is not None else None


if TYPE_CHECKING:
    # Static conformance gate: mypy rejects this module if either store
    # drifts from StoreProtocol (missing method, mismatched signature).
    # Runtime never executes it — the protocol stays a structural contract
    # with zero import cost, but CI still catches a skew before a worker
    # does at 2am.
    from ..orchestration.store import ExperimentStore
    from .protocol import StoreProtocol

    def _assert_store_protocol(
        local: ExperimentStore, remote: RemoteStore
    ) -> tuple[StoreProtocol, StoreProtocol]:
        return local, remote
