"""Shared RPC machinery for every framed-JSON TCP service in the repo.

The store server (PR 5) and the solver fabric servers speak the same wire
dialect — length-prefixed JSON frames, per-request token auth, structured
error replies, op-id replay for safe client retries — so the transport
skeleton lives here once and :class:`~repro.distributed.server.StoreServer`
and :class:`repro.solver.fabric.SolverFabricServer` subclass it.

:class:`RpcServer` owns the threaded TCP listener, the per-connection
handler loop, graceful shutdown (stop accepting, unblock the accept loop,
drop live handler sockets so blocked clients reconnect instead of hanging),
and the request → reply dispatch pipeline: token check, method allowlist,
op-id replay, structured errors.  Subclasses provide :meth:`_invoke` and
choose a dispatch policy:

* ``serialize_dispatch = True`` (the store): *every* request executes under
  one lock — the single writer SQLite requires anyway, and what makes the
  op-replay check atomic with execution.
* ``serialize_dispatch = False`` (the solver fabric): requests execute
  concurrently (a solve blocks its handler thread for seconds); only op
  bookkeeping takes the lock.  An op id that is *in flight* — a client
  resent a solve whose reply was lost while the original is still running —
  parks the retry until the original finishes and then replays its recorded
  reply, so one op never executes twice on the same server.

The client-side helpers (:func:`knock`, :func:`raise_reply_error`) are the
pieces :class:`~repro.distributed.client.RemoteStore` and the fabric client
share: patient initial connects (a server mid-restart comes up within
moments) and uniform error-reply raising (``AuthError`` gets its own class
so callers can refuse to retry it).
"""

from __future__ import annotations

import dataclasses
import hmac
import socket
import socketserver
import threading
import time
from collections import OrderedDict
from typing import Any, Mapping, NoReturn

from ..analysis import racecheck
from ..observability import events, metrics
from .protocol import (
    AuthError,
    ConnectionClosed,
    FrameError,
    RemoteOperationError,
    format_address,
    recv_frame,
    send_frame,
)

__all__ = [
    "OP_CACHE_SIZE",
    "RpcServer",
    "knock",
    "raise_reply_error",
]

# Replies remembered for op-id replay.  Sized for hundreds of workers each
# with a handful of retryable calls in flight; FIFO eviction means an op
# is forgotten only after thousands of newer ops — far beyond any client's
# retry window.
OP_CACHE_SIZE = 4096


class _OpCache:
    """Bounded FIFO map of executed op ids to their recorded replies."""

    def __init__(self, size: int = OP_CACHE_SIZE) -> None:
        self._size = size
        self._replies: OrderedDict[str, dict[str, Any]] = OrderedDict()

    def get(self, op_id: str) -> dict[str, Any] | None:
        return self._replies.get(op_id)

    def put(self, op_id: str, reply: dict[str, Any]) -> None:
        self._replies[op_id] = reply
        while len(self._replies) > self._size:
            self._replies.popitem(last=False)


def encode_result(value: Any) -> Any:
    """JSON-shape a dispatch result (dataclasses → dicts, tuples → lists)."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return encode_result(dataclasses.asdict(value))
    if isinstance(value, (list, tuple)):
        return [encode_result(item) for item in value]
    if isinstance(value, dict):
        return {key: encode_result(item) for key, item in value.items()}
    return value


def error_reply(
    request_id: Any,
    error_type: str,
    message: str,
    data: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    reply: dict[str, Any] = {
        "id": request_id,
        "error": {"type": error_type, "message": message},
    }
    if data:
        reply["error"]["data"] = dict(data)
    return reply


class _Handler(socketserver.BaseRequestHandler):
    """Per-connection loop: read a frame, dispatch, reply, repeat."""

    def setup(self) -> None:
        self.server.owner._track(self.request)  # type: ignore[attr-defined]

    def finish(self) -> None:
        self.server.owner._untrack(self.request)  # type: ignore[attr-defined]

    def handle(self) -> None:
        while True:
            try:
                request = recv_frame(self.request)
            except (ConnectionClosed, FrameError, OSError):
                return  # peer gone or speaking garbage: drop the connection
            metrics.counter("rpc.frames_in")
            reply = self.server.owner.dispatch(request)  # type: ignore[attr-defined]
            try:
                send_frame(self.request, reply)
                metrics.counter("rpc.frames_out")
            except OSError:
                return
            except (FrameError, TypeError, ValueError) as exc:
                # The reply itself cannot be framed (result over the frame
                # ceiling, or not JSON-serializable): fail the one call with
                # a structured error instead of dying with no reply — the
                # client would otherwise retry the same request into the
                # same wall and misreport it as a network failure.
                try:
                    send_frame(
                        self.request,
                        error_reply(request.get("id"), "ReplyError", str(exc)),
                    )
                except OSError:
                    return
            if reply.get("error", {}).get("type") == "AuthError":
                return  # no second guesses on a shared-token mismatch


class _TCPServer(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True
    owner: "RpcServer"


class _TCP6Server(_TCPServer):
    address_family = socket.AF_INET6


def _server_class(host: str, port: int) -> type[_TCPServer]:
    """Pick the socket family from the bind host (``::1`` needs AF_INET6)."""
    try:
        info = socket.getaddrinfo(host or None, port, type=socket.SOCK_STREAM)
    except OSError:
        return _TCPServer  # let bind() produce the real error
    if info and info[0][0] == socket.AF_INET6:
        return _TCP6Server
    return _TCPServer


class RpcServer:
    """A threaded TCP server speaking the framed request/reply protocol.

    Subclasses set :attr:`rpc_methods` (the allowlist), implement
    :meth:`_invoke`, release owned resources in :meth:`_on_shutdown`, and
    pick :attr:`serialize_dispatch` (see module docstring).  The subclass
    must fully initialise its own state *before* calling ``__init__`` here:
    binding the port is the last construction step, so a request can arrive
    as soon as it returns.
    """

    rpc_methods: frozenset[str] = frozenset()
    serialize_dispatch: bool = True
    thread_name: str = "repro-rpc-server"
    # Methods whose dispatches emit a ``server.dispatch`` trace span keyed
    # by the request's op id (see repro.observability.events).  Empty by
    # default: subclasses opt their claim-lifecycle methods in.
    spanned_methods: frozenset[str] = frozenset()

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        token: str | None = None,
    ) -> None:
        self._token = token
        # Lock names are per-class so the racecheck ordering graph keeps the
        # store server's dispatch lock distinct from the fabric's.
        self._lock = racecheck.tracked_lock(f"rpc.dispatch.{type(self).__name__}")
        self._ops = _OpCache()
        # Op ids currently executing on the concurrent path: a resent op
        # waits on its original's event instead of executing a second time.
        self._inflight_ops: dict[str, threading.Event] = {}
        self._connections: set[Any] = set()
        self._conn_lock = racecheck.tracked_lock(f"rpc.conns.{type(self).__name__}")
        self._serve_thread: threading.Thread | None = None
        self._serving = threading.Event()
        self._closed = False
        self._tcp = _server_class(host, port)((host, port), _Handler)
        self._tcp.owner = self

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (resolved even when ``port=0`` was asked)."""
        host, port = self._tcp.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        """The ``tcp://host:port`` form clients pass to ``--connect``."""
        return format_address(*self.address)

    def serve_forever(self) -> None:
        """Block serving requests until :meth:`shutdown` is called."""
        self._serving.set()
        self._tcp.serve_forever(poll_interval=0.1)

    def start(self) -> "RpcServer":
        """Serve on a background thread (tests and embedded use)."""
        if self._serve_thread is None:
            self._serve_thread = threading.Thread(
                target=self.serve_forever, name=self.thread_name, daemon=True
            )
            self._serve_thread.start()
            # Wait for the accept loop to be entered: a shutdown() racing an
            # unstarted loop would skip the stop request and leave the
            # thread serving a closed listener.  (If the loop is entered
            # with a stop already requested, serve_forever exits at once.)
            self._serving.wait(timeout=5.0)
        return self

    def shutdown(self) -> None:
        """Stop accepting, unblock ``serve_forever``, release resources."""
        if self._closed:
            return
        self._closed = True
        # BaseServer.shutdown blocks on an event only serve_forever sets, so
        # it must be skipped when the accept loop was never entered.
        if self._serving.is_set():
            self._tcp.shutdown()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
        # Daemon handler threads are not joined by server_close; dropping
        # their sockets unblocks the recv they sit in, so connected clients
        # see a closed connection (and reconnect) rather than a half-dead
        # server that still answers.
        with self._conn_lock:
            for sock in list(self._connections):
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
        self._tcp.server_close()
        with self._lock:
            waiters = list(self._inflight_ops.values())
            self._inflight_ops.clear()
        for event in waiters:
            event.set()
        # Taking the lock drains any serialized request already mid-dispatch
        # before the owned resources go away beneath it.
        with self._lock:
            self._on_shutdown()

    def _on_shutdown(self) -> None:
        """Release subclass-owned resources (store, solver pool, ...)."""

    def __enter__(self) -> "RpcServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    def _track(self, sock: Any) -> None:
        with self._conn_lock:
            self._connections.add(sock)

    def _untrack(self, sock: Any) -> None:
        with self._conn_lock:
            self._connections.discard(sock)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def dispatch(self, request: dict[str, Any]) -> dict[str, Any]:
        """One request frame → one reply frame (never raises)."""
        request_id = request.get("id")
        method = request.get("method")
        metrics.counter("rpc.requests")
        # Compared as UTF-8 bytes: compare_digest refuses non-ASCII *str*
        # operands, and raising here would kill the handler with no reply.
        if self._token is not None and not hmac.compare_digest(
            str(request.get("token") or "").encode(), self._token.encode()
        ):
            return error_reply(request_id, "AuthError", "missing or invalid token")
        if not isinstance(method, str) or method not in self.rpc_methods:
            return error_reply(request_id, "UnknownMethod", f"unknown method {method!r}")
        params = request.get("params") or {}
        if not isinstance(params, dict):
            return error_reply(request_id, "BadRequest", "params must be an object")
        op_id = request.get("op")
        if self.serialize_dispatch:
            started = time.perf_counter()
            with self._lock:
                if self._closed:
                    return error_reply(
                        request_id, "ServerClosed", "server is shutting down"
                    )
                if op_id is not None:
                    recorded = self._ops.get(str(op_id))
                    if recorded is not None:
                        metrics.counter("rpc.op_replays")
                        return {**recorded, "id": request_id, "replayed": True}
                reply = self._execute(request_id, method, params, op_id)
            # Span emission and flushing happen after the dispatch lock is
            # released: the flush re-enters the store through _flush_spans,
            # which takes the lock itself.
            self._post_dispatch(method, op_id, time.perf_counter() - started)
            return reply
        return self._dispatch_concurrent(request_id, method, params, op_id)

    def _dispatch_concurrent(
        self, request_id: Any, method: str, params: dict[str, Any], op_id: Any
    ) -> dict[str, Any]:
        """Execute outside the lock; dedup concurrent resends of one op."""
        key = str(op_id) if op_id is not None else None
        while True:
            with self._lock:
                if self._closed:
                    return error_reply(
                        request_id, "ServerClosed", "server is shutting down"
                    )
                if key is not None:
                    recorded = self._ops.get(key)
                    if recorded is not None:
                        metrics.counter("rpc.op_replays")
                        return {**recorded, "id": request_id, "replayed": True}
                    running = self._inflight_ops.get(key)
                    if running is None:
                        self._inflight_ops[key] = threading.Event()
                    # else: fall through to wait outside the lock
                else:
                    running = None
            if running is None:
                break
            # The original request for this op is still executing on another
            # handler thread: wait for it, then loop to replay its recorded
            # reply.  (If the original *failed*, nothing was recorded — the
            # loop re-registers this retry as the new runner, which is the
            # correct outcome: a failed op committed nothing.)
            running.wait()
        started = time.perf_counter()
        try:
            try:
                result = encode_result(self._invoke(method, params))
            except Exception as exc:  # structured reply; connection survives
                # Errors are deliberately not recorded for replay: a failed
                # op committed nothing, so re-executing the retry is the
                # correct (and possibly now-successful) outcome.
                return error_reply(
                    request_id, type(exc).__name__, str(exc), data=self._error_data(exc)
                )
            if key is not None:
                with self._lock:
                    self._ops.put(key, {"result": result})
            self._post_dispatch(method, op_id, time.perf_counter() - started)
            return {"id": request_id, "result": result}
        finally:
            if key is not None:
                with self._lock:
                    event = self._inflight_ops.pop(key, None)
                if event is not None:
                    event.set()

    def _execute(
        self, request_id: Any, method: str, params: dict[str, Any], op_id: Any
    ) -> dict[str, Any]:
        """Serialized-path execution; caller holds the lock."""
        try:
            result = encode_result(self._invoke(method, params))
        except Exception as exc:  # structured reply; connection survives
            return error_reply(
                request_id, type(exc).__name__, str(exc), data=self._error_data(exc)
            )
        if op_id is not None:
            self._ops.put(str(op_id), {"result": result})
        return {"id": request_id, "result": result}

    def _invoke(self, method: str, params: dict[str, Any]) -> Any:
        raise NotImplementedError

    def _post_dispatch(self, method: str, op_id: Any, duration: float) -> None:
        """Trace hook run after a successful dispatch, outside the lock."""
        if method in self.spanned_methods:
            events.emit(
                "server.dispatch",
                op=str(op_id) if op_id is not None else None,
                actor=type(self).__name__,
                duration=duration,
                detail={"method": method},
            )
        self._flush_spans()

    def _flush_spans(self) -> None:
        """Journal buffered spans; subclasses that own a store override."""

    def _error_data(self, exc: Exception) -> dict[str, Any] | None:
        """Structured payload to attach to this exception's error reply."""
        return None


# ----------------------------------------------------------------------
# Client-side helpers
# ----------------------------------------------------------------------
def knock(
    host: str,
    port: int,
    *,
    timeout: float,
    connect_timeout: float,
    retry_delay: float = 0.2,
) -> socket.socket:
    """Connect to ``host:port``, retrying until ``connect_timeout`` passes.

    A server mid-restart (or a CI job that just forked a server process)
    comes up within moments, and waiting here is what lets every client
    simply outlive it.  The returned socket has ``timeout`` installed as
    its per-operation deadline and TCP_NODELAY set (request/reply traffic).
    Raises the last ``OSError`` once the knocking deadline passes.
    """
    deadline = time.monotonic() + connect_timeout
    delay = retry_delay
    while True:
        try:
            # Cap each attempt at the remaining knocking deadline too: a
            # black-holed address (firewall DROP) would otherwise sit in
            # one connect for the full request timeout.
            sock = socket.create_connection(
                (host, port),
                timeout=min(timeout, max(0.1, deadline - time.monotonic())),
            )
        except OSError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(min(delay, max(0.0, deadline - time.monotonic())))
            delay = min(delay * 2, 2.0)
        else:
            sock.settimeout(timeout)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            return sock


def raise_reply_error(error: Mapping[str, Any]) -> NoReturn:
    """Raise the exception for a structured ``error`` reply object.

    ``AuthError`` gets its own class (clients must not retry it); everything
    else raises :class:`RemoteOperationError` carrying the server-side type
    name, message, and optional structured data.
    """
    error_type = str(error.get("type", "Error"))
    message = str(error.get("message", ""))
    if error_type == "AuthError":
        raise AuthError(message)
    raise RemoteOperationError(error_type, message, data=error.get("data"))
