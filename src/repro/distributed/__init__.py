"""Multi-machine experiment fleets: a store server and remote workers.

SQLite WAL coordinates workers on one host but is unsafe on network
filesystems, so the orchestration engine's claim/complete/re-plan semantics
stop at the machine boundary.  This package moves that boundary to a TCP
port:

* :mod:`~repro.distributed.protocol` — length-prefixed JSON frames, request
  ids, op-id replay for safe retries, and :class:`StoreProtocol`: the
  extracted public surface of
  :class:`~repro.orchestration.store.ExperimentStore` that the runner,
  scheduler, planner and export paths consume.
* :mod:`~repro.distributed.server` — :class:`StoreServer`: a threaded TCP
  server owning one local store; every request dispatches under one lock,
  so concurrent remote claims serialize through the single writer SQLite
  requires anyway (``repro orch serve DB``).
* :mod:`~repro.distributed.client` — :class:`RemoteStore`: the same
  protocol over a persistent socket with reconnect + retry, claim-safe on
  timeout thanks to op-id replay (``repro orch worker --connect`` /
  ``repro orch status|export --connect``).

A fleet is: one ``repro orch serve`` beside the SQLite file, any number of
``repro orch worker --connect host:port`` processes on any machines — each
worker runs the full cost-model / re-planning / bounded-wait claim loop of
:func:`repro.orchestration.runner.run_worker`, just against a socket.
"""

import os

from .client import RemoteStore, StoreConnectionError
from .protocol import (
    DEFAULT_PORT,
    AuthError,
    ConnectionClosed,
    FrameError,
    ProtocolError,
    RemoteOperationError,
    StoreProtocol,
    format_address,
    is_remote_target,
    parse_address,
)
from .server import StoreServer

__all__ = [
    "DEFAULT_PORT",
    "AuthError",
    "ConnectionClosed",
    "FrameError",
    "ProtocolError",
    "RemoteOperationError",
    "RemoteStore",
    "StoreConnectionError",
    "StoreProtocol",
    "StoreServer",
    "format_address",
    "is_remote_target",
    "open_store",
    "parse_address",
]


def open_store(
    target: "str | os.PathLike[str]",
    *,
    fifo_every: int | None = None,
    token: str | None = None,
) -> StoreProtocol:
    """Open a store by target: a local path or a ``tcp://host:port`` address.

    The uniform entry point the runner and CLI use — everything downstream
    only sees a :class:`StoreProtocol`.
    """
    if is_remote_target(target):
        return RemoteStore(target, token=token, fifo_every=fifo_every)
    from ..orchestration.store import ExperimentStore

    kwargs = {} if fifo_every is None else {"fifo_every": fifo_every}
    return ExperimentStore(target, **kwargs)
