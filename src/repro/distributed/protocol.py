"""Wire protocol shared by the store server and the remote client.

Frames
------
Every message is one *frame*: a 4-byte big-endian unsigned length prefix
followed by that many bytes of UTF-8 JSON.  Length-prefixing (rather than
newline delimiting) keeps the framing independent of the payload — result
rows may contain arbitrary text — and lets the receiver reject oversized
frames (:data:`MAX_FRAME_BYTES`) before allocating anything.

Requests and replies
--------------------
A request frame is ``{"id": N, "method": name, "params": {...}}`` plus two
optional fields: ``"token"`` (shared-secret auth, checked per request so
reconnects need no handshake state) and ``"op"`` (a client-generated
operation id attached to *mutating* methods — the server remembers the
reply of every executed op, so a retry after a lost response replays the
recorded reply instead of executing twice; see
:class:`repro.distributed.server.StoreServer`).

A reply frame is ``{"id": N, "result": ...}`` on success or
``{"id": N, "error": {"type": ..., "message": ...}}`` on failure; replayed
replies additionally carry ``"replayed": true``.  ``id`` always echoes the
request, so a client can detect a desynchronised connection and drop it.

:class:`StoreProtocol` is the extracted public surface of
:class:`~repro.orchestration.store.ExperimentStore` — the contract the
runner, scheduler, planner and export paths actually consume.  Both the
local store and :class:`~repro.distributed.client.RemoteStore` satisfy it,
which is what lets every orchestration layer run unchanged against either
backend.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Iterable, Mapping, Protocol, Sequence, runtime_checkable

from ..orchestration.store import ClaimedRow, StoredRow

__all__ = [
    "DEFAULT_PORT",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "AddressError",
    "AuthError",
    "ConnectionClosed",
    "FrameError",
    "ProtocolError",
    "RemoteOperationError",
    "StoreProtocol",
    "encode_frame",
    "format_address",
    "is_remote_target",
    "parse_address",
    "recv_frame",
    "send_encoded",
    "send_frame",
]

PROTOCOL_VERSION = 1

# Default TCP port of `repro orch serve`.
DEFAULT_PORT = 7479

# Hard ceiling on one frame's JSON payload.  Store traffic is small (claim
# rows, result summaries, priority batches); anything near this size is a bug
# or an attack, and rejecting by the prefix alone keeps a malformed peer
# from ballooning server memory.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")


class ProtocolError(Exception):
    """Base class for wire-level failures."""


class FrameError(ProtocolError):
    """A frame violated the length-prefixed JSON format."""


class ConnectionClosed(ProtocolError):
    """The peer closed the connection mid-frame (or before one)."""


class AddressError(ProtocolError, ValueError):
    """A store address string could not be parsed.

    Also a ``ValueError`` so plain-library callers can catch it naturally;
    the ``ProtocolError`` base is what lets the CLI render it as a
    one-line error instead of a traceback.
    """


class RemoteOperationError(ProtocolError):
    """A structured error reply from the server.

    ``type`` is the server-side exception class name (``"KeyError"``,
    ``"AuthError"``, ...), ``message`` its rendering — enough for callers to
    branch on without the server shipping picklable exception objects.
    """

    def __init__(
        self, error_type: str, message: str, data: Mapping[str, Any] | None = None
    ) -> None:
        super().__init__(f"{error_type}: {message}")
        self.type = error_type
        self.message = message
        # Optional structured payload a server attached to the error reply
        # (e.g. the measured wall time of a solve killed by its deadline).
        self.data: dict[str, Any] = dict(data) if data else {}


class AuthError(RemoteOperationError):
    """The server rejected the request's shared token.

    A :class:`RemoteOperationError` whose ``type`` is always ``AuthError``,
    raised as its own class so callers can catch a credential problem
    without string-matching — and so the clients can refuse to retry it (a
    wrong token must never become a reconnect storm).
    """

    def __init__(self, message: str = "missing or invalid token") -> None:
        super().__init__("AuthError", message)


def encode_frame(payload: Mapping[str, Any]) -> bytes:
    """Serialise one message to its length-prefixed wire form.

    Split from :func:`send_frame` so a sender can surface serialisation
    problems (oversized payload, non-JSON values) *before* touching the
    socket — a local payload bug must not be retried as a transport
    failure.
    """
    blob = json.dumps(payload, separators=(",", ":")).encode()
    if len(blob) > MAX_FRAME_BYTES:
        raise FrameError(f"frame of {len(blob)} bytes exceeds {MAX_FRAME_BYTES}")
    return _HEADER.pack(len(blob)) + blob


def send_frame(sock: socket.socket, payload: Mapping[str, Any]) -> None:
    """Serialise one message and write it as a length-prefixed frame."""
    sock.sendall(encode_frame(payload))


def send_encoded(sock: socket.socket, frame: bytes) -> None:
    """Write an already-:func:`encode_frame`-ed message to the socket.

    The complete-write counterpart of :func:`send_frame` for callers that
    encode early (to fail fast on payload bugs, or to build the frame once
    and send it on whichever connection survives a retry loop).  All wire
    writes go through this module so framing — and the repro-lint rule
    banning raw ``socket.send*`` elsewhere — stays in one place.
    """
    sock.sendall(frame)


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    buffer = bytearray()
    while len(buffer) < count:
        chunk = sock.recv(count - len(buffer))
        if not chunk:
            raise ConnectionClosed("connection closed mid-frame")
        buffer.extend(chunk)
    return bytes(buffer)


def recv_frame(sock: socket.socket) -> dict[str, Any]:
    """Read one length-prefixed JSON frame; raises :class:`ConnectionClosed`."""
    (length,) = _HEADER.unpack(_recv_exact(sock, _HEADER.size))
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"peer announced a {length}-byte frame (max {MAX_FRAME_BYTES})")
    blob = _recv_exact(sock, length)
    try:
        payload = json.loads(blob.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise FrameError(f"frame must be a JSON object, got {type(payload).__name__}")
    return payload


# ----------------------------------------------------------------------
# Target addressing
# ----------------------------------------------------------------------
def is_remote_target(target: Any) -> bool:
    """Whether a store target names a server (``tcp://host:port``) or a file."""
    return isinstance(target, str) and target.startswith("tcp://")


def parse_address(target: str) -> tuple[str, int]:
    """``"host:port"`` / ``"tcp://host:port"`` → ``(host, port)``.

    The port is optional and defaults to :data:`DEFAULT_PORT`; IPv6 literal
    hosts must be bracketed (``tcp://[::1]:7479``).
    """
    text = target[len("tcp://"):] if target.startswith("tcp://") else target
    if text.startswith("["):  # bracketed IPv6 literal
        host, _, rest = text[1:].partition("]")
        port_text = rest[1:] if rest.startswith(":") else ""
    else:
        host, _, port_text = text.partition(":")
    if not host:
        raise AddressError(f"invalid store address {target!r}; expected HOST[:PORT]")
    if not port_text:
        return host, DEFAULT_PORT
    try:
        port = int(port_text)
    except ValueError as exc:
        raise AddressError(f"invalid port in store address {target!r}") from exc
    if not 0 < port < 65536:
        raise AddressError(f"port out of range in store address {target!r}")
    return host, port


def format_address(host: str, port: int) -> str:
    """The canonical ``tcp://`` form of a server address."""
    return f"tcp://[{host}]:{port}" if ":" in host else f"tcp://{host}:{port}"


# ----------------------------------------------------------------------
# The store surface
# ----------------------------------------------------------------------
@runtime_checkable
class StoreProtocol(Protocol):
    """Public :class:`~repro.orchestration.store.ExperimentStore` surface.

    Everything the runner, scheduler, planner, CLI and export paths call —
    extracted so they run unchanged against the local SQLite store or a
    :class:`~repro.distributed.client.RemoteStore` speaking this module's
    wire protocol.  ``isinstance`` checks verify member *presence* only
    (``runtime_checkable``); semantics are pinned by the parity tests in
    ``tests/test_distributed.py``.
    """

    fifo_every: int

    # Lifecycle
    def close(self) -> None: ...
    def __enter__(self) -> "StoreProtocol": ...
    def __exit__(self, *exc_info: object) -> None: ...

    # Grid population and claiming
    def add_rows(self, experiment: str, grid: Iterable[Mapping[str, Any]]) -> int: ...
    def claim_next(
        self, worker: str, experiments: Sequence[str] | None = None
    ) -> ClaimedRow | None: ...
    def complete(
        self,
        row_id: int,
        result: Mapping[str, Any],
        *,
        duration: float,
        worker: str | None = None,
    ) -> bool: ...
    def fail(
        self, row_id: int, error: str, *, duration: float, worker: str | None = None
    ) -> bool: ...
    def reclaim_stale(
        self, *, older_than: float = 0.0, experiments: Sequence[str] | None = None
    ) -> int: ...
    def resubmit(self, row_id: int) -> bool: ...
    def reset(
        self,
        experiments: Sequence[str] | None = None,
        *,
        statuses: Sequence[str] = ("running", "error"),
    ) -> int: ...
    def delete_rows(
        self,
        experiments: Sequence[str] | None = None,
        *,
        statuses: Sequence[str] | None = None,
    ) -> int: ...

    # Scheduling
    def set_schedule(
        self,
        entries: Iterable[tuple[str, str, float, float | None]],
        *,
        if_replan_round: int | None = None,
    ) -> int | None: ...
    def set_dependencies(
        self, experiment: str, param_hash: str, depends_on: Sequence[str]
    ) -> bool: ...
    def sync_dependencies(self, experiments: Sequence[str] | None = None) -> int: ...
    def blocked_count(self, experiments: Sequence[str] | None = None) -> int: ...
    def blocking_dependencies(
        self, experiments: Sequence[str] | None = None
    ) -> list[dict[str, Any]]: ...
    def fail_blocked_on_error(self, experiments: Sequence[str] | None = None) -> int: ...

    # Online re-planning
    def completion_count(self) -> int: ...
    def replan_epoch(self) -> int: ...
    def try_begin_replan(self, every: int) -> int | None: ...
    def publish_replan_epoch(self, round_no: int) -> None: ...
    def duration_history(
        self, experiments: Sequence[str] | None = None
    ) -> list[tuple[str, dict[str, Any], float]]: ...
    def duration_samples(
        self,
        experiments: Sequence[str] | None = None,
        *,
        since: tuple[float, int] | None = None,
    ) -> list[tuple[str, dict[str, Any], float, float, int]]: ...

    # Cross-store cost priors
    def save_cost_priors(self, priors: Mapping[str, Mapping[str, Any]]) -> int: ...
    def load_cost_priors(self) -> dict[str, dict[str, Any]]: ...

    # Service telemetry tail (scheduling-service counters not yet folded
    # into completed journal rows; journaled so restarts don't lose them)
    def service_telemetry_tail(self) -> dict[str, int]: ...
    def set_service_telemetry_tail(self, counters: Mapping[str, int]) -> None: ...

    # Trace spans (bounded-retention journal written by
    # repro.observability.events.flush, read by the dashboard)
    def record_events(
        self, events: Sequence[Mapping[str, Any]], *, retain: int | None = None
    ) -> int: ...
    def fetch_events(
        self,
        *,
        op: str | None = None,
        kinds: Sequence[str] | None = None,
        limit: int = 500,
    ) -> list[dict[str, Any]]: ...

    # Introspection
    def status_counts(self) -> dict[str, dict[str, int]]: ...
    def pending_count(self, experiments: Sequence[str] | None = None) -> int: ...
    def fetch_rows(
        self, experiment: str, *, status: str | None = None
    ) -> list[StoredRow]: ...
    def experiments(self) -> list[str]: ...

    # Result cache
    def cache_contains(self, key: str) -> bool: ...
    def cache_get(self, key: str) -> dict[str, Any] | None: ...
    def cache_put(self, key: str, solver: str, payload: Mapping[str, Any]) -> None: ...
    def cache_stats(self) -> dict[str, int]: ...
    def clear_cache(self) -> int: ...


# Methods a client may invoke over the wire, i.e. StoreProtocol minus the
# local-only lifecycle plus the server-side extras (store_info reports the
# served path / fifo knob / protocol version; set_fifo_every adjusts the
# *global* claim interleave — it lives in shared scheduler state, so the
# last writer wins for every worker; ping is the liveness probe).
RPC_METHODS = frozenset(
    {
        "add_rows",
        "claim_next",
        "complete",
        "fail",
        "reclaim_stale",
        "reset",
        "resubmit",
        "delete_rows",
        "set_schedule",
        "set_dependencies",
        "sync_dependencies",
        "blocked_count",
        "blocking_dependencies",
        "fail_blocked_on_error",
        "completion_count",
        "replan_epoch",
        "try_begin_replan",
        "publish_replan_epoch",
        "duration_samples",
        "save_cost_priors",
        "load_cost_priors",
        "service_telemetry_tail",
        "set_service_telemetry_tail",
        "record_events",
        "fetch_events",
        "status_counts",
        "pending_count",
        "fetch_rows",
        "experiments",
        "cache_contains",
        "cache_get",
        "cache_put",
        "cache_stats",
        "clear_cache",
        "store_info",
        "set_fifo_every",
        "ping",
    }
)

# Methods that change store state: the client attaches a generated op id so
# a retry after a lost reply replays instead of re-executing.  cache_get
# bumps a hit counter but re-bumping on retry is harmless, so it stays a
# plain read (the dedup window is better spent on claims and completions).
MUTATING_METHODS = frozenset(
    {
        "add_rows",
        "claim_next",
        "complete",
        "fail",
        "reclaim_stale",
        "reset",
        "resubmit",
        "delete_rows",
        "set_schedule",
        "set_dependencies",
        "sync_dependencies",
        "fail_blocked_on_error",
        "try_begin_replan",
        "publish_replan_epoch",
        "save_cost_priors",
        "set_service_telemetry_tail",
        "record_events",
        "cache_put",
        "clear_cache",
        "set_fifo_every",
    }
)
