"""repro — reproduction of "An EPTAS for Machine Scheduling with Bag-Constraints".

Public API highlights
---------------------
* :class:`repro.core.Instance`, :class:`repro.core.Job`,
  :class:`repro.core.Schedule` — the data model.
* :func:`repro.baselines.list_scheduling.greedy_schedule`,
  :func:`repro.baselines.lpt.lpt_schedule`, … — baseline solvers.
* :func:`repro.eptas.eptas_schedule` — the paper's EPTAS.
* :func:`repro.exact.exact_schedule` — exact reference solvers.
* :mod:`repro.generators` — synthetic instance families.
* :mod:`repro.experiments` — the benchmark/experiment harness.
"""

from __future__ import annotations

from .core import (
    Instance,
    InvalidInstanceError,
    InvalidScheduleError,
    Job,
    ReproError,
    Schedule,
    SolverResult,
)

__version__ = "1.0.0"

__all__ = [
    "Instance",
    "InvalidInstanceError",
    "InvalidScheduleError",
    "Job",
    "ReproError",
    "Schedule",
    "SolverResult",
    "__version__",
]
