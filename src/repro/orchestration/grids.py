"""Builtin experiment specs: E1…E10 (DESIGN.md) re-expressed as grids.

Each spec decomposes the corresponding driver loop into independent,
JSON-parameterised cells so the worker pool can execute them in parallel and
the store can persist/resume them.  Cells whose outputs are pure summaries
(makespans, ratios, counters) funnel their solver calls through
:func:`repro.orchestration.cache.cached_solve`; cells that *measure wall
time* (E3, E4, E10 timings) or need full schedules (E5, E6, E9) call the
solvers directly — caching a timing study would falsify it.

A ``smoke`` spec (tiny LPT cells) exists for CI and for exercising the
store/runner machinery in tests without paying for a real experiment.

Scheduling metadata: specs carry ``cost_hint`` callables (relative expected
cell cost, rescaled into seconds by the duration-history cost model) and —
for the experiments that start by solving an exact MILP (E2, E4, E10) —
``prerequisites`` declarations that let the planner hoist exact optima
shared by several cells into dedicated ``prereq`` rows (see
:mod:`repro.orchestration.planner`).  Timing-insensitive cells additionally
opt into pool-aware speculative EPTAS batching: when the runner installs a
subprocess solver pool (``repro orch run --solver-servers N``), their
``EptasConfig`` picks up ``speculative_guesses = N`` so the binary-search
MILPs overlap on the pool.  Timed cells (E3, E4, E10) keep
``speculative_guesses = 1`` — batching would falsify their measurements.
"""

from __future__ import annotations

import time
from typing import Any, Callable

import numpy as np

from ..baselines import (
    coloring_schedule,
    das_wiese_schedule,
    first_fit_schedule,
    greedy_schedule,
    local_search_schedule,
    lpt_schedule,
)
from ..baselines.das_wiese import DasWieseConfig
from ..bounds import combined_lower_bound
from ..core.instance import Instance
from ..core.result import SolverResult
from ..core.schedule import Schedule
from ..eptas import (
    ConstantsMode,
    EptasConfig,
    classify_bags,
    classify_jobs,
    eptas_schedule,
    forward_transform_schedule,
    normalise_eps,
    reinsert_medium_jobs,
    revert_to_original,
    scale_and_round,
    solve_for_guess,
    theory_constants_report,
    transform_instance,
)
from ..exact import ExactMilpConfig, exact_milp_schedule
from ..generators import (
    bag_heavy_instance,
    clustered_sizes_instance,
    figure1_adversarial_instance,
    replica_workload_instance,
    two_size_instance,
    uniform_random_instance,
)
from ..simulation import ClusterSimulator
from ..solver import get_solver_service
from .cache import cached_solve
from .planner import PREREQ_EXPERIMENT, PrereqCall, prereq_cost_hint
from .registry import CellPair, ExperimentSpec, register

__all__ = ["BUILTIN_SPECS"]


def _exact_optimum(instance: Instance) -> float:
    """Exact optimum through the result cache (the most expensive sub-call)."""
    config = ExactMilpConfig()
    payload = cached_solve(
        instance,
        "exact-milp",
        lambda: exact_milp_schedule(instance, config=config),
        backend=config.backend_spec,
    )
    return float(payload["makespan"])


def _exact_prereq(instance: Instance) -> PrereqCall:
    """The planner-visible description of one :func:`_exact_optimum` call.

    Solver name, config and backend spec must mirror ``_exact_optimum``
    exactly — the hoisted row and the dependent cell meet at the cache key.
    """
    config = ExactMilpConfig()
    return PrereqCall(
        instance=instance,
        solver="exact-milp",
        compute=lambda: exact_milp_schedule(instance, config=config),
        backend=config.backend_spec,
        cost_hint=float(instance.num_jobs * instance.num_machines),
    )


def _pool_guesses() -> int:
    """Speculative-guess width for timing-insensitive EPTAS cells.

    Follows the solver pool the runner installed for this worker (1 without
    a pool, i.e. plain sequential binary search).  Results are identical
    either way — batching only reorders which guesses are evaluated
    concurrently — so cached payloads stay valid across pool sizes.
    """
    return max(1, get_solver_service().concurrency)


def _group_means(
    cells: list[CellPair],
    group_key: str,
    mean_fields: dict[str, str],
    *,
    max_fields: dict[str, str] | None = None,
    cast_int_max: bool = False,
) -> list[dict[str, Any]]:
    """Group cell results by ``group_key`` (insertion order) and average.

    ``mean_fields``/``max_fields`` map output column -> cell result field.
    """
    order: list[Any] = []
    grouped: dict[Any, list[dict[str, Any]]] = {}
    for params, result in cells:
        key = params[group_key]
        if key not in grouped:
            order.append(key)
            grouped[key] = []
        grouped[key].append(result)
    rows = []
    for key in order:
        results = grouped[key]
        row: dict[str, Any] = {group_key: key}
        for column, fieldname in mean_fields.items():
            row[column] = float(np.mean([r[fieldname] for r in results]))
        for column, fieldname in (max_fields or {}).items():
            value = max(r[fieldname] for r in results)
            row[column] = int(value) if cast_int_max else value
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# E1 — Figure 1: large-job placement matters
# ----------------------------------------------------------------------
def grid_e1(*, quick: bool = True, seed: int = 0) -> list[dict[str, Any]]:
    machine_counts = [4, 6] if quick else [4, 6, 8, 12]
    return [{"machines": machines, "seed": seed} for machines in machine_counts]


def cell_e1(*, machines: int, seed: int) -> dict[str, Any]:
    generated = figure1_adversarial_instance(num_machines=machines, seed=seed)
    instance = generated.instance
    naive = cached_solve(instance, "first-fit", lambda: first_fit_schedule(instance))
    greedy = cached_solve(instance, "greedy-list", lambda: greedy_schedule(instance))
    lpt = cached_solve(instance, "lpt", lambda: lpt_schedule(instance))
    eptas_config = EptasConfig(eps=0.25, speculative_guesses=_pool_guesses())
    eptas = cached_solve(
        instance,
        "eptas",
        lambda: eptas_schedule(instance, eps=0.25, config=eptas_config),
        config={"eps": 0.25},
        backend=eptas_config.backend_spec,
    )
    if generated.known_optimum is not None:
        optimum = generated.known_optimum
    else:
        optimum = _exact_optimum(instance)
    return {
        "machines": machines,
        "optimum": optimum,
        "first_fit": naive["makespan"],
        "greedy_list": greedy["makespan"],
        "lpt": lpt["makespan"],
        "eptas(0.25)": eptas["makespan"],
    }


# ----------------------------------------------------------------------
# E2 — Theorem 1: approximation ratios across solvers and families
# ----------------------------------------------------------------------
_E2_EPS_VALUES = (0.5, 0.25)


def _e2_solvers() -> dict[str, tuple[Callable[[Instance], SolverResult], Any]]:
    """E2's solver roster: name -> (callable, backend spec or None).

    MILP-backed entries carry the backend spec of the config they actually
    solve with, so their cache keys stay coupled to the real backend (a
    backend or option change can never serve a stale cached ratio).
    """
    das_config = DasWieseConfig(eps=0.25)
    solvers: dict[str, tuple[Callable[[Instance], SolverResult], Any]] = {
        "greedy_list": (greedy_schedule, None),
        "lpt": (lpt_schedule, None),
        "lpt+local_search": (local_search_schedule, None),
        "coloring": (coloring_schedule, None),
        "das_wiese(0.25)": (
            lambda inst: das_wiese_schedule(inst, eps=0.25, config=das_config),
            das_config.backend_spec,
        ),
    }
    for eps in _E2_EPS_VALUES:
        eptas_config = EptasConfig(eps=eps, speculative_guesses=_pool_guesses())
        solvers[f"eptas({eps:g})"] = (
            lambda inst, eps=eps, cfg=eptas_config: eptas_schedule(inst, eps=eps, config=cfg),
            eptas_config.backend_spec,
        )
    return solvers


def _e2_instance(
    family: str, s: int, num_jobs: int, num_machines: int, num_bags: int
) -> Instance:
    if family == "uniform":
        return uniform_random_instance(
            num_jobs=num_jobs, num_machines=num_machines, num_bags=num_bags, seed=s
        ).instance
    if family == "figure1":
        return figure1_adversarial_instance(num_machines=num_machines, seed=s).instance
    if family == "replicas":
        return replica_workload_instance(
            num_services=num_bags, num_machines=num_machines, seed=s
        ).instance
    if family == "bag_heavy":
        return bag_heavy_instance(
            num_machines=num_machines, num_full_bags=3, extra_jobs=6, seed=s
        ).instance
    raise KeyError(f"unknown E2 family {family!r}")


def grid_e2(*, quick: bool = True, seed: int = 0) -> list[dict[str, Any]]:
    num_seeds = 2 if quick else 5
    size = (
        dict(num_jobs=14, num_machines=4, num_bags=6)
        if quick
        else dict(num_jobs=24, num_machines=5, num_bags=8)
    )
    return [
        {"family": family, "seed": seed + offset, **size}
        for family in ("uniform", "figure1", "replicas", "bag_heavy")
        for offset in range(num_seeds)
    ]


def prereqs_e2(
    *, family: str, seed: int, num_jobs: int, num_machines: int, num_bags: int
) -> list[PrereqCall]:
    instance = _e2_instance(family, seed, num_jobs, num_machines, num_bags)
    return [_exact_prereq(instance)]


def cell_e2(
    *, family: str, seed: int, num_jobs: int, num_machines: int, num_bags: int
) -> dict[str, Any]:
    instance = _e2_instance(family, seed, num_jobs, num_machines, num_bags)
    optimum = _exact_optimum(instance)
    ratios: dict[str, float] = {}
    for name, (solver, backend_spec) in _e2_solvers().items():
        payload = cached_solve(
            instance,
            name,
            lambda solver=solver: solver(instance),
            backend=backend_spec,
        )
        ratios[name] = payload["makespan"] / optimum
    return {"family": family, **ratios}


def reduce_e2(cells: list[CellPair]) -> list[dict[str, Any]]:
    solver_names = list(_e2_solvers())
    return _group_means(cells, "family", {name: name for name in solver_names})


# ----------------------------------------------------------------------
# E3 — running time scaling with n at fixed eps (a timing study: no cache)
# ----------------------------------------------------------------------
def grid_e3(*, quick: bool = True, seed: int = 0) -> list[dict[str, Any]]:
    sizes = [16, 32, 64, 128] if quick else [16, 32, 64, 128, 256, 512]
    exact_cap = 32 if quick else 48
    return [
        {"num_jobs": n, "seed": seed, "with_exact": n <= exact_cap} for n in sizes
    ]


def cell_e3(*, num_jobs: int, seed: int, with_exact: bool) -> dict[str, Any]:
    # Weak scaling: the machine count grows with n so that the per-machine
    # load (and hence the large/small structure seen by the EPTAS) stays
    # comparable across the sweep.
    machines = max(4, num_jobs // 8)
    instance = clustered_sizes_instance(
        num_jobs=num_jobs,
        num_machines=machines,
        num_bags=max(6, num_jobs // 3),
        size_values=(1.0, 0.6, 0.3, 0.1),
        seed=seed,
    ).instance
    row: dict[str, Any] = {"n": num_jobs, "m": machines}
    start = time.perf_counter()
    lpt = lpt_schedule(instance)
    row["lpt_time"] = time.perf_counter() - start

    start = time.perf_counter()
    eptas = eptas_schedule(instance, eps=0.5)
    row["eptas_time"] = time.perf_counter() - start

    start = time.perf_counter()
    das = das_wiese_schedule(instance, eps=0.5)
    row["das_wiese_time"] = time.perf_counter() - start

    if with_exact:
        start = time.perf_counter()
        exact = exact_milp_schedule(instance)
        row["exact_time"] = time.perf_counter() - start
        optimum = exact.makespan
    else:
        row["exact_time"] = None
        optimum = combined_lower_bound(instance)
    row["eptas_ratio"] = eptas.makespan / optimum
    row["lpt_ratio"] = lpt.makespan / optimum
    row["das_wiese_ratio"] = das.makespan / optimum
    return row


# ----------------------------------------------------------------------
# E4 — eps trade-off (timed EPTAS runs; only the optimum is cached)
# ----------------------------------------------------------------------
def grid_e4(*, quick: bool = True, seed: int = 0) -> list[dict[str, Any]]:
    eps_values = [1.0, 0.5, 0.25] if quick else [1.0, 0.5, 1 / 3, 0.25, 0.2]
    return [
        {"eps": eps, "num_jobs": 20 if quick else 32, "seed": seed}
        for eps in eps_values
    ]


def _e4_instance(num_jobs: int, seed: int) -> Instance:
    """The instance every E4 eps value shares (one exact optimum per seed)."""
    return uniform_random_instance(
        num_jobs=num_jobs, num_machines=4, num_bags=7, seed=seed
    ).instance


def prereqs_e4(*, eps: float, num_jobs: int, seed: int) -> list[PrereqCall]:
    return [_exact_prereq(_e4_instance(num_jobs, seed))]


def cell_e4(*, eps: float, num_jobs: int, seed: int) -> dict[str, Any]:
    instance = _e4_instance(num_jobs, seed)
    optimum = _exact_optimum(instance)
    start = time.perf_counter()
    result = eptas_schedule(instance, eps=eps)
    elapsed = time.perf_counter() - start
    return {
        "eps": normalise_eps(eps),
        "ratio": result.makespan / optimum,
        "guarantee": 1 + 2 * eps + eps * eps,
        "time_s": elapsed,
        "patterns": result.diagnostics.get("num_patterns"),
        "integer_vars": result.diagnostics.get("integer_variables"),
        "constraints": result.diagnostics.get("constraints"),
    }


# ----------------------------------------------------------------------
# E5 — Lemma 2: transformation overhead (needs schedules: no cache)
# ----------------------------------------------------------------------
def grid_e5(*, quick: bool = True, seed: int = 0) -> list[dict[str, Any]]:
    num_cases = 3 if quick else 8
    return [{"case_seed": seed + offset} for offset in range(num_cases)]


def cell_e5(*, case_seed: int) -> dict[str, Any]:
    eps = 0.25
    # Many bags relative to the priority cap and a wide size spread, so a
    # substantial fraction of bags becomes non-priority and is actually
    # transformed (large jobs split off, fillers added).
    instance = clustered_sizes_instance(
        num_jobs=40,
        num_machines=5,
        num_bags=18,
        size_values=(0.9, 0.6, 0.05, 0.03, 0.02),
        weights=(0.25, 0.2, 0.2, 0.2, 0.15),
        seed=case_seed,
    ).instance
    # A feasible schedule S of the original instance (LPT).
    schedule = lpt_schedule(instance).schedule
    c_value = schedule.makespan()
    rounded = scale_and_round(instance, eps, c_value)
    working = rounded.instance
    job_classes = classify_jobs(working, eps)
    bag_classes = classify_bags(
        working, job_classes, mode=ConstantsMode.PRACTICAL, practical_priority_cap=1
    )
    record = transform_instance(working, job_classes, bag_classes)
    scaled_schedule = Schedule(working, schedule.assignment)
    transformed_schedule = forward_transform_schedule(record, scaled_schedule)
    inflation = transformed_schedule.makespan() / max(scaled_schedule.makespan(), 1e-12)
    return {
        "seed": case_seed,
        "original_makespan": scaled_schedule.makespan(),
        "transformed_makespan": transformed_schedule.makespan(),
        "inflation": inflation,
        "lemma2_bound": 1 + eps,
        "within_bound": inflation <= 1 + eps + 1e-9,
        "filler_jobs": record.num_filler_jobs,
        "non_priority_bags_split": len(record.companion_bag),
    }


# ----------------------------------------------------------------------
# E6 — Lemmas 3 & 4: medium re-insertion and revert
# ----------------------------------------------------------------------
def grid_e6(*, quick: bool = True, seed: int = 0) -> list[dict[str, Any]]:
    num_cases = 3 if quick else 8
    return [{"case_seed": seed + offset} for offset in range(num_cases)]


def cell_e6(*, case_seed: int) -> dict[str, Any]:
    eps = 0.25
    # Hand-crafted shape in already-normalised units (the guessed optimum is
    # fixed to 1, so the Lemma-1 window for eps = 1/4 and k = 1 is
    # [1/16, 1/4)): many bags mixing one large job, a few small jobs, and
    # occasionally one *medium* job of size 0.1.  With a priority cap of 1
    # most bags are non-priority, so their medium jobs are removed by the
    # transformation and Lemma 3 genuinely has work to do.
    rng = np.random.default_rng(case_seed)
    sizes: list[float] = []
    bags: list[int] = []
    num_bags = 14
    for bag in range(num_bags):
        sizes.append(float(rng.choice([0.55, 0.35])))
        bags.append(bag)
        for _ in range(2):
            sizes.append(float(rng.uniform(0.01, 0.04)))
            bags.append(bag)
        if bag % 4 == 0:
            sizes.append(0.1)  # medium window [1/16, 1/4) for eps = 1/4
            bags.append(bag)
    instance = Instance.from_sizes(
        sizes, bags, num_machines=6, name=f"e6-{case_seed}"
    )
    guess = 1.0
    rounded = scale_and_round(instance, eps, guess)
    working = rounded.instance
    working_job_classes = classify_jobs(working, eps)
    bag_classes = classify_bags(
        working,
        working_job_classes,
        mode=ConstantsMode.PRACTICAL,
        practical_priority_cap=1,
    )
    record = transform_instance(working, working_job_classes, bag_classes)
    base_schedule = lpt_schedule(record.transformed).schedule
    before = base_schedule.makespan()
    augmented = reinsert_medium_jobs(record, base_schedule)
    after = augmented.makespan()
    reverted = revert_to_original(record, augmented)
    reverted.validate()
    return {
        "seed": case_seed,
        "medium_jobs_reinserted": record.num_removed_medium,
        "makespan_before": before,
        "makespan_after_lemma3": after,
        "lemma3_increase": after - before,
        "lemma3_bound": 2 * eps,
        "makespan_after_revert": reverted.makespan(),
        "revert_conflict_free": reverted.is_conflict_free(),
        "revert_within_augmented": reverted.makespan() <= after + 1e-9,
    }


# ----------------------------------------------------------------------
# E7 — Lemma 6: MILP size as a function of eps
# ----------------------------------------------------------------------
def grid_e7(*, quick: bool = True, seed: int = 0) -> list[dict[str, Any]]:
    eps_values = [1.0, 0.5, 0.25] if quick else [1.0, 0.5, 1 / 3, 0.25, 0.2]
    return [
        {"eps": eps, "num_jobs": 18 if quick else 30, "seed": seed}
        for eps in eps_values
    ]


def cell_e7(*, eps: float, num_jobs: int, seed: int) -> dict[str, Any]:
    instance = clustered_sizes_instance(
        num_jobs=num_jobs,
        num_machines=4,
        num_bags=6,
        size_values=(1.0, 0.55, 0.3),
        seed=seed,
    ).instance
    guess = combined_lower_bound(instance)
    theory = theory_constants_report(eps)
    config = EptasConfig(eps=eps, max_patterns=200_000).normalised()
    _, report = solve_for_guess(instance, guess, config)
    worst = theory["k=worst"]
    return {
        "eps": normalise_eps(eps),
        "theory_q": worst["q"],
        "theory_b_prime": worst["b_prime"],
        "theory_log10_patterns": worst["log10_pattern_bound"],
        "measured_patterns": report.num_patterns,
        "measured_integer_vars": report.integer_variables,
        "measured_continuous_vars": report.continuous_variables,
        "measured_constraints": report.constraints,
        "milp_feasible": report.feasible,
    }


# ----------------------------------------------------------------------
# E8 — Lemmas 7 & 11: repair statistics
# ----------------------------------------------------------------------
_E8_FAMILIES = ("uniform", "bag_heavy", "two_size", "many_bags_clustered")


def _e8_instance(family: str, s: int) -> Instance:
    if family == "uniform":
        return uniform_random_instance(
            num_jobs=24, num_machines=4, num_bags=8, seed=s
        ).instance
    if family == "bag_heavy":
        return bag_heavy_instance(
            num_machines=4, num_full_bags=3, extra_jobs=8, seed=s
        ).instance
    if family == "two_size":
        return two_size_instance(num_machines=6, seed=s).instance
    if family == "many_bags_clustered":
        # Many bags sharing few large sizes with a priority cap of 1 puts
        # most large jobs into wildcard slots, which is where Lemma-7 swaps
        # can become necessary.
        return clustered_sizes_instance(
            num_jobs=36,
            num_machines=6,
            num_bags=18,
            size_values=(0.7, 0.45, 0.05),
            seed=s,
        ).instance
    raise KeyError(f"unknown E8 family {family!r}")


def grid_e8(*, quick: bool = True, seed: int = 0) -> list[dict[str, Any]]:
    num_seeds = 2 if quick else 5
    return [
        {"family": family, "seed": seed + offset}
        for family in _E8_FAMILIES
        for offset in range(num_seeds)
    ]


def cell_e8(*, family: str, seed: int) -> dict[str, Any]:
    instance = _e8_instance(family, seed)
    config = EptasConfig(
        eps=0.25, practical_priority_cap=1, speculative_guesses=_pool_guesses()
    )
    payload = cached_solve(
        instance,
        "eptas",
        lambda: eptas_schedule(instance, eps=0.25, config=config),
        config={"eps": 0.25, "practical_priority_cap": 1},
        backend=config.backend_spec,
        extra=lambda result: {"residual_conflicts": result.schedule.num_conflicts()},
    )
    diagnostics = payload["diagnostics"]
    fallback = 0
    for attempt in diagnostics.get("attempts") or []:
        fallback += attempt.get("large_fallback_moves") or 0
        fallback += attempt.get("resolved_by_fallback") or 0
    return {
        "family": family,
        "lemma7_swaps": diagnostics.get("large_swaps") or 0,
        "lemma11_conflicts": diagnostics.get("repair_conflicts") or 0,
        "fallback_moves": fallback,
        "residual_conflicts": payload["residual_conflicts"],
    }


def reduce_e8(cells: list[CellPair]) -> list[dict[str, Any]]:
    return _group_means(
        cells,
        "family",
        {
            "mean_lemma7_swaps": "lemma7_swaps",
            "mean_lemma11_conflicts": "lemma11_conflicts",
            "mean_fallback_moves": "fallback_moves",
        },
        max_fields={"residual_conflicts": "residual_conflicts"},
        cast_int_max=True,
    )


# ----------------------------------------------------------------------
# E9 — fault tolerance of bag-constrained schedules (needs schedules)
# ----------------------------------------------------------------------
def grid_e9(*, quick: bool = True, seed: int = 0) -> list[dict[str, Any]]:
    num_seeds = 3 if quick else 10
    return [
        {
            "num_failures": num_failures,
            "case_seed": seed + offset,
            "failures_seed": seed * 1000 + offset,
        }
        for num_failures in (1, 2)
        for offset in range(num_seeds)
    ]


def cell_e9(*, num_failures: int, case_seed: int, failures_seed: int) -> dict[str, Any]:
    generated = replica_workload_instance(
        num_services=10, num_machines=6, replicas_range=(2, 3), seed=case_seed
    )
    instance = generated.instance
    bag_schedule = lpt_schedule(instance).schedule
    # The bag-oblivious schedule ignores replica separation entirely:
    # first-fit on singleton bags happily co-locates the replicas of one
    # service on a single machine.
    no_bag_instance = Instance(
        [job.with_bag(job.id) for job in instance.jobs],
        instance.num_machines,
        name=instance.name + "#nobags",
    )
    no_bag_schedule_raw = first_fit_schedule(
        no_bag_instance, capacity=bag_schedule.makespan()
    ).schedule
    no_bag_schedule = Schedule(instance, no_bag_schedule_raw.assignment, allow_partial=True)

    report_bag = ClusterSimulator(instance, bag_schedule).run_with_random_failures(
        num_failures=num_failures, seed=failures_seed
    )
    simulator_nobag = ClusterSimulator.__new__(ClusterSimulator)
    simulator_nobag.instance = instance
    simulator_nobag.schedule = no_bag_schedule
    report_nobag = simulator_nobag.run_with_random_failures(
        num_failures=num_failures, seed=failures_seed
    )
    return {
        "num_failures": num_failures,
        "survivability_with_bags": report_bag.survivability(),
        "survivability_without_bags": report_nobag.survivability(),
        "makespan_with_bags": bag_schedule.makespan(),
        "makespan_without_bags": no_bag_schedule.makespan(),
    }


def reduce_e9(cells: list[CellPair]) -> list[dict[str, Any]]:
    rows = _group_means(
        cells,
        "num_failures",
        {
            "survivability_with_bags": "survivability_with_bags",
            "survivability_without_bags": "survivability_without_bags",
            "makespan_with_bags": "makespan_with_bags",
            "makespan_without_bags": "makespan_without_bags",
        },
    )
    # Match the historical driver column name.
    return [{"machine_failures": row.pop("num_failures"), **row} for row in rows]


# ----------------------------------------------------------------------
# E10 — ablations of the EPTAS design choices (timed: only optimum cached)
# ----------------------------------------------------------------------
_E10_VARIANTS: dict[str, dict[str, Any]] = {
    "default (cap=3, scipy)": {},
    "priority cap = 1": {"practical_priority_cap": 1},
    "priority cap = 12": {"practical_priority_cap": 12},
    "own branch-and-bound MILP": {"milp_backend": "bnb"},
    "single-shot (no binary search)": {"max_search_iterations": 1},
}


def grid_e10(*, quick: bool = True, seed: int = 0) -> list[dict[str, Any]]:
    return [
        {
            "variant": variant,
            "overrides": overrides,
            "num_jobs": 24 if quick else 36,
            "seed": seed,
        }
        for variant, overrides in _E10_VARIANTS.items()
    ]


def _e10_instance(num_jobs: int, seed: int) -> Instance:
    # Few distinct sizes but many bags: this is the regime where the priority
    # cap genuinely changes the set of priority bags (and hence the MILP).
    # Every E10 variant ablates the same instance, so they share one optimum.
    return clustered_sizes_instance(
        num_jobs=num_jobs,
        num_machines=4,
        num_bags=12,
        size_values=(0.8, 0.5, 0.2),
        seed=seed,
    ).instance


def prereqs_e10(
    *, variant: str, overrides: dict[str, Any], num_jobs: int, seed: int
) -> list[PrereqCall]:
    return [_exact_prereq(_e10_instance(num_jobs, seed))]


def cell_e10(
    *, variant: str, overrides: dict[str, Any], num_jobs: int, seed: int
) -> dict[str, Any]:
    instance = _e10_instance(num_jobs, seed)
    optimum = _exact_optimum(instance)
    config = EptasConfig(eps=0.25, **overrides)
    start = time.perf_counter()
    result = eptas_schedule(instance, eps=config.eps, config=config)
    elapsed = time.perf_counter() - start
    return {
        "variant": variant,
        "ratio": result.makespan / optimum,
        "time_s": elapsed,
        "patterns": result.diagnostics.get("num_patterns"),
        "integer_vars": result.diagnostics.get("integer_variables"),
        "priority_bags": result.diagnostics.get("num_priority_bags"),
    }


# ----------------------------------------------------------------------
# smoke — tiny LPT cells exercising store/runner/cache end-to-end
# ----------------------------------------------------------------------
def grid_smoke(*, quick: bool = True, seed: int = 0) -> list[dict[str, Any]]:
    num_cells = 4 if quick else 16
    return [{"index": index, "seed": seed} for index in range(num_cells)]


def cell_smoke(*, index: int, seed: int) -> dict[str, Any]:
    instance = uniform_random_instance(
        num_jobs=10, num_machines=3, num_bags=4, seed=seed * 100 + index
    ).instance
    payload = cached_solve(instance, "lpt", lambda: lpt_schedule(instance))
    return {
        "index": index,
        "makespan": payload["makespan"],
        "cache_hit": payload["cache_hit"],
    }


# ----------------------------------------------------------------------
# prereq — hoisted shared sub-solves (rows inserted by the planner)
# ----------------------------------------------------------------------
def grid_prereq(*, quick: bool = True, seed: int = 0) -> list[dict[str, Any]]:
    # Prerequisite rows are planner-derived, never grid-expanded: the grid
    # is empty so `repro orch run prereq` populates nothing on its own.
    return []


def cell_prereq(*, source: str, cell: dict[str, Any], index: int, solver: str) -> dict[str, Any]:
    """Execute one hoisted sub-solve through the shared result cache.

    The row's params name the *representative* dependent cell; re-deriving
    the :class:`~repro.orchestration.planner.PrereqCall` from the source
    spec guarantees the cache key matches what every dependent will ask for.
    """
    from . import registry

    spec = registry.get_spec(source)
    if spec.prerequisites is None:
        raise KeyError(f"experiment {source!r} declares no prerequisites")
    calls = spec.prerequisites(**cell)
    call = calls[index]
    if call.solver != solver:
        raise KeyError(
            f"prerequisite {index} of {source!r} is {call.solver!r}, row says {solver!r}"
        )
    payload = cached_solve(
        call.instance, call.solver, call.compute, config=call.config, backend=call.backend
    )
    return {
        "source": source,
        "solver": call.solver,
        "makespan": payload["makespan"],
        "cache_hit": payload["cache_hit"],
    }


# ----------------------------------------------------------------------
# Registration
# ----------------------------------------------------------------------
BUILTIN_SPECS: tuple[ExperimentSpec, ...] = (
    ExperimentSpec(
        name="e1",
        experiment_id="E1",
        title="Figure 1 — large-job placement matters (makespans, optimum = 1)",
        make_grid=grid_e1,
        run_cell=cell_e1,
        cost_hint=lambda p: float(p["machines"]) ** 2,
        notes=(
            "first-fit packs large jobs to height OPT and is then forced to stack "
            "the full bag of small jobs — the phenomenon of the paper's Figure 1; "
            "the EPTAS places large jobs so small jobs still fit.",
        ),
    ),
    ExperimentSpec(
        name="e2",
        experiment_id="E2",
        title="Theorem 1 — measured approximation ratios (vs exact optimum)",
        make_grid=grid_e2,
        run_cell=cell_e2,
        reduce_rows=reduce_e2,
        # The exact optimum (MILP over all n jobs) dominates an E2 cell.
        cost_hint=lambda p: float(p["num_jobs"] * p["num_machines"]),
        prerequisites=prereqs_e2,
        notes=(
            "expected shape: eptas <= 1 + O(eps) and never worse than the "
            "2-approximations; greedy/list scheduling degrades on adversarial families.",
        ),
    ),
    ExperimentSpec(
        name="e3",
        experiment_id="E3",
        title="Running time vs number of jobs (fixed eps)",
        make_grid=grid_e3,
        run_cell=cell_e3,
        timing_sensitive=True,
        # Cells with the exact MILP blow up superlinearly in n; the rest
        # stay near-linear — precisely the spread priority claiming fixes.
        cost_hint=lambda p: float(p["num_jobs"]) ** (2.0 if p["with_exact"] else 1.3),
        notes=(
            "expected shape: the exact MILP blows up first; EPTAS and Das-Wiese "
            "grow polynomially in n, with the EPTAS paying a constant (eps-only) "
            "MILP cost per binary-search step.",
        ),
    ),
    ExperimentSpec(
        name="e4",
        experiment_id="E4",
        title="Accuracy-versus-cost trade-off in eps",
        make_grid=grid_e4,
        run_cell=cell_e4,
        timing_sensitive=True,
        # Smaller eps -> more patterns -> a bigger configuration MILP.
        cost_hint=lambda p: float(p["num_jobs"]) / max(float(p["eps"]), 1e-9),
        prerequisites=prereqs_e4,
        notes=(
            "ratio stays below the (1 + 2eps + eps^2) budget; cost rises as eps shrinks.",
        ),
    ),
    ExperimentSpec(
        name="e5",
        experiment_id="E5",
        title="Lemma 2 — instance transformation overhead",
        make_grid=grid_e5,
        run_cell=cell_e5,
        notes=(
            "Lemma 2: the transformed instance admits a schedule of makespan <= (1+eps)*C.",
        ),
    ),
    ExperimentSpec(
        name="e6",
        experiment_id="E6",
        title="Lemmas 3-4 — medium-job re-insertion and filler revert",
        make_grid=grid_e6,
        run_cell=cell_e6,
        notes=(
            "Lemma 3 bounds the increase by 2*eps (in units of the guessed optimum); "
            "Lemma 4 never increases the makespan and removes every conflict.",
        ),
    ),
    ExperimentSpec(
        name="e7",
        experiment_id="E7",
        title="Lemma 6 — size of the configuration MILP",
        make_grid=grid_e7,
        run_cell=cell_e7,
        cost_hint=lambda p: float(p["num_jobs"]) / max(float(p["eps"]), 1e-9),
        notes=(
            "the theory columns reproduce the 2^{O(...)} growth of Lemma 6 (log10 of the "
            "pattern bound); the measured columns use the practical constants on a real instance.",
        ),
    ),
    ExperimentSpec(
        name="e8",
        experiment_id="E8",
        title="Lemmas 7 & 11 — conflict-repair statistics",
        make_grid=grid_e8,
        run_cell=cell_e8,
        reduce_rows=reduce_e8,
        notes=("residual_conflicts must be 0: every returned schedule is feasible.",),
    ),
    ExperimentSpec(
        name="e9",
        experiment_id="E9",
        title="Motivation — replica survivability under machine failures",
        make_grid=grid_e9,
        run_cell=cell_e9,
        reduce_rows=reduce_e9,
        notes=(
            "bag-constrained schedules keep (almost) every service alive after failures at a "
            "small makespan premium — the paper's introductory motivation.",
        ),
    ),
    ExperimentSpec(
        name="e10",
        experiment_id="E10",
        title="Ablation of EPTAS design choices",
        make_grid=grid_e10,
        run_cell=cell_e10,
        timing_sensitive=True,
        # The bnb backend and a large priority cap both inflate the MILP.
        cost_hint=lambda p: float(p["num_jobs"])
        * {"own branch-and-bound MILP": 4.0, "priority cap = 12": 3.0}.get(
            p["variant"], 1.0
        ),
        prerequisites=prereqs_e10,
        notes=(
            "all variants stay feasible; a larger priority cap grows the MILP, a smaller one "
            "shifts work to the swap-repair stages.",
        ),
    ),
    ExperimentSpec(
        name="smoke",
        experiment_id="SMOKE",
        title="Orchestration smoke — tiny LPT cells through store/runner/cache",
        make_grid=grid_smoke,
        run_cell=cell_smoke,
        cost_hint=lambda p: 1.0,
    ),
    ExperimentSpec(
        name=PREREQ_EXPERIMENT,
        experiment_id="PREREQ",
        title="Hoisted shared prerequisites (planner-inserted rows)",
        make_grid=grid_prereq,
        run_cell=cell_prereq,
        cost_hint=prereq_cost_hint,
    ),
)

for _spec in BUILTIN_SPECS:
    register(_spec)
