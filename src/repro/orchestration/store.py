"""SQLite-backed experiment registry: the persistence layer of orchestration.

A *store* is a single SQLite file (WAL mode) holding four tables:

``runs``
    One row per grid cell of an experiment: canonical-JSON parameters, a
    content hash, a ``pending/running/done/error`` status, timing columns and
    the JSON result payload.  Rows are idempotently inserted (re-expanding a
    grid never duplicates work) and atomically claimed (``BEGIN IMMEDIATE``
    plus a status-guarded UPDATE), so any number of worker processes on one
    host never double-run a cell.  Sharing the file *across machines* (NFS &
    co.) is NOT safe: WAL mode relies on shared memory, which network
    filesystems don't provide — multi-machine operation goes through
    :mod:`repro.distributed` instead: ``repro orch serve`` owns the file and
    serves this class's public surface
    (:class:`~repro.distributed.protocol.StoreProtocol`) to remote workers
    over TCP.

    Scheduling columns (added by PR 3/4, migrated in-place on open):

    * ``priority`` / ``cost_estimate`` — assigned by
      :mod:`repro.orchestration.scheduling`; claiming is highest-priority
      first (longest-expected-first shrinks the makespan of the run itself)
      with a bounded-wait guarantee: every ``fifo_every``-th claim takes the
      *oldest* pending row instead, so cheap cells are never starved by a
      stream of expensive ones.  The claim ordinal lives in the shared
      ``scheduler_state`` table, so the interleave is global across workers.
    * ``depends_on`` / ``deps_pending`` — prerequisite edges installed by
      :mod:`repro.orchestration.planner`.  ``depends_on`` is a JSON array of
      the ``param_hash`` values this row is gated on; ``deps_pending`` is the
      denormalised count of those not yet ``done``.  Rows with
      ``deps_pending > 0`` are never handed to a worker; a guarded
      :meth:`ExperimentStore.complete` decrements its dependents, and
      :meth:`ExperimentStore.reclaim_stale` / :meth:`ExperimentStore.reset`
      recompute the counters from ground truth so a reclaimed prerequisite
      re-blocks its dependents instead of leaking a half-satisfied edge.
    * ``epoch`` — the re-plan epoch (see below) the row was claimed under,
      stamped by :meth:`ExperimentStore.claim_next`; the export rolls up
      estimate-vs-actual accuracy per epoch to show the cost model
      converging across re-plans.

``scheduler_state`` additionally carries the *online re-planning* protocol
(PR 4): a ``completions`` counter bumped by every landed
:meth:`ExperimentStore.complete`, the ``replan_watermark`` (the completions
count the last re-plan fired at), the ``replan_round`` counter
(:meth:`ExperimentStore.try_begin_replan` advances it atomically, so
exactly one worker wins each round) and the published ``replan_epoch``
(:meth:`ExperimentStore.publish_replan_epoch`, moved only after the
winner's priorities landed, so claim stamping attributes rows to the epoch
whose estimates actually ordered them).

``cost_priors``
    Per-experiment fitted cost statistics (sample count, mean duration,
    seconds-per-hint-unit scale) imported from another store via
    ``repro orch priors import``.  The cost model folds them in as priors,
    so a fresh store schedules well before its first duration lands.

``cache``
    Content-addressed solver results keyed by
    ``sha256(instance digest, solver name, config)`` — see
    :mod:`repro.orchestration.cache`.

``events``
    Trace spans journaled by :mod:`repro.observability.events`: one row
    per hop of an op-id-correlated chain (client call, server dispatch,
    worker cell execution), with bounded retention
    (:data:`EVENTS_RETAIN`) so the table can never outgrow the runs it
    describes.  Written through :meth:`ExperimentStore.record_events`
    (an ordinary mutating store method, so remote workers' spans ride
    their existing ``RemoteStore`` connection) and read back by the
    dashboard via :meth:`ExperimentStore.fetch_events`.

The store is deliberately connection-per-instance: every worker process
constructs its own :class:`ExperimentStore` against the shared path.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from ..observability import metrics

__all__ = [
    "ExperimentStore",
    "ClaimedRow",
    "StoredRow",
    "canonical_params",
    "params_hash",
    "STATUSES",
    "EVENTS_RETAIN",
]

STATUSES = ("pending", "running", "done", "error")

# Bounded retention for the trace-span journal: record_events trims the
# events table to the newest this-many rows, so long fleet drains keep a
# rolling window of recent chains instead of an unbounded log.
EVENTS_RETAIN = 4000

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    id            INTEGER PRIMARY KEY AUTOINCREMENT,
    experiment    TEXT NOT NULL,
    params        TEXT NOT NULL,
    param_hash    TEXT NOT NULL,
    status        TEXT NOT NULL DEFAULT 'pending',
    result        TEXT,
    error         TEXT,
    worker        TEXT,
    attempts      INTEGER NOT NULL DEFAULT 0,
    created_at    REAL NOT NULL,
    claimed_at    REAL,
    finished_at   REAL,
    duration      REAL,
    priority      REAL NOT NULL DEFAULT 0,
    cost_estimate REAL,
    depends_on    TEXT,
    deps_pending  INTEGER NOT NULL DEFAULT 0,
    UNIQUE (experiment, param_hash)
);
CREATE TABLE IF NOT EXISTS cache (
    key        TEXT PRIMARY KEY,
    solver     TEXT NOT NULL,
    payload    TEXT NOT NULL,
    created_at REAL NOT NULL,
    hits       INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS scheduler_state (
    key   TEXT PRIMARY KEY,
    value INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS cost_priors (
    experiment    TEXT PRIMARY KEY,
    samples       INTEGER NOT NULL,
    mean_duration REAL,
    hint_scale    REAL,
    updated_at    REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS events (
    seq      INTEGER PRIMARY KEY AUTOINCREMENT,
    op       TEXT,
    kind     TEXT NOT NULL,
    actor    TEXT,
    ts       REAL NOT NULL,
    duration REAL,
    detail   TEXT
);
"""

# Scheduling columns arrived after the first released schema; stores created
# by older code are migrated in place (ALTER TABLE is cheap and idempotent).
_RUNS_MIGRATIONS = {
    "priority": "ALTER TABLE runs ADD COLUMN priority REAL NOT NULL DEFAULT 0",
    "cost_estimate": "ALTER TABLE runs ADD COLUMN cost_estimate REAL",
    "depends_on": "ALTER TABLE runs ADD COLUMN depends_on TEXT",
    "deps_pending": "ALTER TABLE runs ADD COLUMN deps_pending INTEGER NOT NULL DEFAULT 0",
    "epoch": "ALTER TABLE runs ADD COLUMN epoch INTEGER NOT NULL DEFAULT 0",
}

# Created after the column migration: they reference migrated columns.
_INDEXES = """
CREATE INDEX IF NOT EXISTS idx_runs_status ON runs (experiment, status);
CREATE INDEX IF NOT EXISTS idx_runs_claim ON runs (status, deps_pending, priority);
CREATE INDEX IF NOT EXISTS idx_events_op ON events (op);
"""


def _to_jsonable(value: Any) -> Any:
    """Coerce numpy scalars / containers into plain JSON-compatible types."""
    if isinstance(value, Mapping):
        return {str(key): _to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_to_jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    # numpy scalars expose .item(); anything else falls back to str().
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return item()
        except (TypeError, ValueError):
            pass
    return str(value)


def canonical_params(params: Mapping[str, Any]) -> str:
    """Canonical JSON encoding of a parameter dict (sorted keys, no spaces)."""
    return json.dumps(_to_jsonable(params), sort_keys=True, separators=(",", ":"))


def params_hash(experiment: str, params: Mapping[str, Any]) -> str:
    """Stable content hash identifying one grid cell of one experiment."""
    blob = f"{experiment}\x00{canonical_params(params)}".encode()
    return hashlib.sha256(blob).hexdigest()


@dataclass(frozen=True, slots=True)
class ClaimedRow:
    """A row handed to a worker: execute, then ``complete`` or ``fail`` it."""

    id: int
    experiment: str
    params: dict[str, Any]


@dataclass(frozen=True, slots=True)
class StoredRow:
    """Full row view used by status/export paths."""

    id: int
    experiment: str
    params: dict[str, Any]
    status: str
    result: dict[str, Any] | None
    error: str | None
    worker: str | None
    attempts: int
    duration: float | None
    priority: float = 0.0
    cost_estimate: float | None = None
    depends_on: tuple[str, ...] = ()
    deps_pending: int = 0
    epoch: int = 0


class ExperimentStore:
    """Persistent registry of experiment grid rows plus the result cache."""

    def __init__(
        self,
        path: str | os.PathLike[str],
        *,
        timeout: float = 30.0,
        fifo_every: int = 4,
        check_same_thread: bool = True,
    ) -> None:
        self.path = Path(path)
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        # Bounded-wait knob: every fifo_every-th successful claim takes the
        # oldest pending row instead of the highest-priority one (0 disables
        # the interleave, giving pure priority order).
        self.fifo_every = max(0, int(fifo_every))
        # isolation_level=None -> autocommit; transactions are explicit
        # (BEGIN IMMEDIATE) exactly where atomicity matters.
        # check_same_thread=False is for owners that serialize access
        # themselves (the distributed store server dispatches handler
        # threads under one lock); the connection itself is never safe for
        # genuinely concurrent cross-thread use.
        self._conn = sqlite3.connect(
            self.path,
            timeout=timeout,
            isolation_level=None,
            check_same_thread=check_same_thread,
        )
        self._conn.row_factory = sqlite3.Row
        # Under REPRO_RACECHECK the connection is proxied so cross-thread
        # use outside an owner's registered guard lock fails the test run
        # (a no-op plain passthrough otherwise).
        from ..analysis import racecheck

        self._conn = racecheck.wrap_store_connection(
            self._conn, self, shared=not check_same_thread
        )
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.executescript(_SCHEMA)
        existing = {row["name"] for row in self._conn.execute("PRAGMA table_info(runs)")}
        for column, statement in _RUNS_MIGRATIONS.items():
            if column not in existing:
                self._conn.execute(statement)
        self._conn.executescript(_INDEXES)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ExperimentStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Grid population
    # ------------------------------------------------------------------
    def add_rows(self, experiment: str, grid: Iterable[Mapping[str, Any]]) -> int:
        """Idempotently insert grid cells; returns the number actually added."""
        now = time.time()
        added = 0
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            for params in grid:
                cursor = self._conn.execute(
                    "INSERT OR IGNORE INTO runs "
                    "(experiment, params, param_hash, status, created_at) "
                    "VALUES (?, ?, ?, 'pending', ?)",
                    (experiment, canonical_params(params), params_hash(experiment, params), now),
                )
                added += cursor.rowcount
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        return added

    # ------------------------------------------------------------------
    # Claiming and completion
    # ------------------------------------------------------------------
    def claim_next(
        self, worker: str, experiments: Sequence[str] | None = None
    ) -> ClaimedRow | None:
        """Atomically claim the best pending row (optionally filtered).

        Rows are claimed highest ``priority`` first (ties broken by insertion
        order, so an unplanned store degrades to FIFO), skipping rows still
        blocked on prerequisites (``deps_pending > 0``).  Every
        ``fifo_every``-th successful claim — counted globally across workers
        via the ``scheduler_state`` table — takes the *oldest* claimable row
        instead, which bounds the wait of any cell at
        ``position * fifo_every`` claims regardless of its priority.

        ``BEGIN IMMEDIATE`` takes the SQLite write lock before the SELECT, so
        two workers can never observe (and claim) the same pending row.
        """
        query = (
            "SELECT id, experiment, params FROM runs "
            "WHERE status = 'pending' AND deps_pending = 0"
        )
        args: list[Any] = []
        if experiments:
            placeholders = ",".join("?" for _ in experiments)
            query += f" AND experiment IN ({placeholders})"
            args.extend(experiments)
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            ordinal = self._next_claim_ordinal()
            fifo_turn = self.fifo_every > 0 and ordinal % self.fifo_every == 0
            query += " ORDER BY id LIMIT 1" if fifo_turn else " ORDER BY priority DESC, id LIMIT 1"
            row = self._conn.execute(query, args).fetchone()
            if row is None:
                self._conn.execute("COMMIT")
                return None
            self._conn.execute(
                "UPDATE runs SET status = 'running', worker = ?, claimed_at = ?, "
                "attempts = attempts + 1, error = NULL, epoch = ? WHERE id = ?",
                (worker, time.time(), self._state_value("replan_epoch"), row["id"]),
            )
            # The ordinal only advances on a successful claim, so the FIFO
            # interleave pattern is a deterministic function of the claim
            # sequence, not of how often idle workers poll.
            self._set_state("claims", ordinal)
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        metrics.counter("store.claims")
        return ClaimedRow(id=row["id"], experiment=row["experiment"], params=json.loads(row["params"]))

    def _next_claim_ordinal(self) -> int:
        return self._state_value("claims") + 1

    def _state_value(self, key: str) -> int:
        row = self._conn.execute(
            "SELECT value FROM scheduler_state WHERE key = ?", (key,)
        ).fetchone()
        return int(row["value"]) if row is not None else 0

    def _set_state(self, key: str, value: int) -> None:
        self._conn.execute(
            "INSERT INTO scheduler_state (key, value) VALUES (?, ?) "
            "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
            (key, value),
        )

    def complete(
        self,
        row_id: int,
        result: Mapping[str, Any],
        *,
        duration: float,
        worker: str | None = None,
    ) -> bool:
        """Mark a claimed row done and persist its JSON result payload.

        The update is guarded on ``status='running'`` (and on ``worker`` when
        given): if the row was reclaimed as stale and handed to a new owner
        while this worker was still computing, the late writeback is dropped
        instead of clobbering the new owner's state.  Returns whether the
        write landed.

        When the write lands, pending rows listing this row's ``param_hash``
        in ``depends_on`` have their ``deps_pending`` counter decremented —
        in the same transaction, and *only* when the guard landed, so a late
        writeback from a reclaimed worker can never half-satisfy an edge.
        """
        query = (
            "UPDATE runs SET status = 'done', result = ?, finished_at = ?, duration = ? "
            "WHERE id = ? AND status = 'running'"
        )
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            # finished_at is stamped *under the write lock*, so it is
            # ordered with commit order — a refit watermark can then never
            # skip a row that committed after a consumed one but carried an
            # earlier clock reading taken outside the lock (equal readings
            # are handled by duration_samples' row-id tiebreak).
            args: list[Any] = [
                json.dumps(_to_jsonable(result)), time.time(), duration, row_id
            ]
            if worker is not None:
                query += " AND worker = ?"
                args.append(worker)
            landed = self._conn.execute(query, args).rowcount == 1
            if landed:
                self._release_dependents(row_id)
                # The completions counter drives the re-plan cadence; bumped
                # only when the guarded write lands, so a late writeback from
                # a reclaimed worker can never trigger a phantom re-plan.
                self._set_state("completions", self._state_value("completions") + 1)
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        if landed:
            metrics.counter("store.completes")
        return landed

    def _release_dependents(self, row_id: int) -> None:
        """Decrement ``deps_pending`` of pending rows gated on ``row_id``.

        ``depends_on`` holds fixed-length hex hashes inside a JSON array, so
        a plain substring match (``instr``) cannot produce false positives.
        """
        row = self._conn.execute(
            "SELECT param_hash FROM runs WHERE id = ?", (row_id,)
        ).fetchone()
        if row is None:
            return
        self._conn.execute(
            "UPDATE runs SET deps_pending = MAX(deps_pending - 1, 0) "
            "WHERE status = 'pending' AND depends_on IS NOT NULL "
            "AND instr(depends_on, ?) > 0",
            (row["param_hash"],),
        )

    def fail(
        self, row_id: int, error: str, *, duration: float, worker: str | None = None
    ) -> bool:
        """Mark a claimed row errored, keeping the traceback for post-mortems.

        Guarded like :meth:`complete`; returns whether the write landed.
        """
        query = (
            "UPDATE runs SET status = 'error', error = ?, finished_at = ?, duration = ? "
            "WHERE id = ? AND status = 'running'"
        )
        args: list[Any] = [error, time.time(), duration, row_id]
        if worker is not None:
            query += " AND worker = ?"
            args.append(worker)
        return self._conn.execute(query, args).rowcount == 1

    def resubmit(self, row_id: int) -> bool:
        """Re-open one errored row for another attempt (``error`` → ``pending``).

        The scheduling service's ``--retry-errors`` path: a fresh submission
        that lands on an errored journal row may re-open it instead of
        treating the failure as terminal.  Only ``error`` rows are touched —
        resubmitting a done/pending/running row is a no-op returning
        ``False``, so a racing duplicate submit cannot restart work that is
        fine.  Like :meth:`reset`, re-opening a prerequisite re-blocks its
        still-pending dependents.
        """
        cursor = self._conn.execute(
            "UPDATE runs SET status = 'pending', result = NULL, error = NULL, "
            "worker = NULL, claimed_at = NULL, finished_at = NULL, duration = NULL "
            "WHERE id = ? AND status = 'error'",
            (row_id,),
        )
        if cursor.rowcount:
            self.sync_dependencies()
        return cursor.rowcount == 1

    def reclaim_stale(
        self, *, older_than: float = 0.0, experiments: Sequence[str] | None = None
    ) -> int:
        """Re-open ``running`` rows claimed more than ``older_than`` s ago.

        A worker that was SIGKILLed leaves its row ``running`` forever; the
        next runner invocation calls this before spawning workers so the row
        is re-executed.  Completed rows are untouched — resume never re-runs
        finished work.  ``experiments`` restricts the reclaim so a runner
        never steals in-progress rows of experiments it was not asked to run
        (another invocation may legitimately be working on those).

        Reclaiming also clears the scheduling bookkeeping: ``deps_pending``
        counters of every pending row with dependencies are recomputed from
        ground truth (dependents of reclaimed rows may live in *other*
        experiments, so the recompute is deliberately unscoped).  A worker
        that died mid-transaction — or whose late writeback decremented an
        edge it no longer owned — can therefore never leave a prerequisite's
        dependents half-unblocked: a reclaimed prerequisite re-blocks them.
        """
        query = (
            "UPDATE runs SET status = 'pending', worker = NULL, claimed_at = NULL "
            "WHERE status = 'running' AND claimed_at <= ?"
        )
        args: list[Any] = [time.time() - older_than]
        if experiments:
            query += f" AND experiment IN ({','.join('?' for _ in experiments)})"
            args.extend(experiments)
        cursor = self._conn.execute(query, args)
        if cursor.rowcount:
            self.sync_dependencies()
            metrics.counter("store.reclaims", cursor.rowcount)
        return cursor.rowcount

    def reset(
        self,
        experiments: Sequence[str] | None = None,
        *,
        statuses: Sequence[str] = ("running", "error"),
    ) -> int:
        """Move rows of the given statuses back to ``pending`` (results cleared).

        Dependency counters are recomputed afterwards: resetting a completed
        prerequisite re-blocks its still-pending dependents.
        """
        query = (
            "UPDATE runs SET status = 'pending', result = NULL, error = NULL, "
            "worker = NULL, claimed_at = NULL, finished_at = NULL, duration = NULL "
            f"WHERE status IN ({','.join('?' for _ in statuses)})"
        )
        args: list[Any] = list(statuses)
        if experiments:
            query += f" AND experiment IN ({','.join('?' for _ in experiments)})"
            args.extend(experiments)
        cursor = self._conn.execute(query, args)
        if cursor.rowcount:
            self.sync_dependencies()
        return cursor.rowcount

    def delete_rows(
        self,
        experiments: Sequence[str] | None = None,
        *,
        statuses: Sequence[str] | None = None,
    ) -> int:
        """Drop grid rows entirely (e.g. before re-expanding a changed grid).

        ``statuses=None`` deletes rows of every status; pass an explicit list
        to e.g. drop only ``error`` rows while keeping ``done`` results.
        """
        clauses: list[str] = []
        args: list[Any] = []
        if experiments:
            clauses.append(f"experiment IN ({','.join('?' for _ in experiments)})")
            args.extend(experiments)
        if statuses:
            clauses.append(f"status IN ({','.join('?' for _ in statuses)})")
            args.extend(statuses)
        query = "DELETE FROM runs"
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        cursor = self._conn.execute(query, args)
        if cursor.rowcount:
            self.sync_dependencies()
        return cursor.rowcount

    # ------------------------------------------------------------------
    # Scheduling: priorities and prerequisite edges
    # ------------------------------------------------------------------
    def set_schedule(
        self,
        entries: Iterable[tuple[str, str, float, float | None]],
        *,
        if_replan_round: int | None = None,
    ) -> int | None:
        """Bulk-assign ``(priority, cost_estimate)`` to pending rows.

        ``entries`` are ``(experiment, param_hash, priority, cost_estimate)``
        tuples.  Rows already claimed or finished keep their values (their
        scheduling decision has been spent); returns how many rows changed.

        ``if_replan_round`` guards the write against a superseded re-plan:
        when given, nothing is written unless ``scheduler_state``'s
        ``replan_round`` still equals it, and ``None`` is returned instead —
        the winner of round ``N`` that stalled past round ``N+1``'s win can
        therefore never overwrite the newer round's priorities with its
        staler estimates (the check and the writes share one transaction,
        and rounds advance under the same lock).  A guarded write that
        lands also *publishes* the round as the current ``replan_epoch`` in
        the same transaction, so a claim observes either (old priorities,
        old epoch) or (new priorities, new epoch) — never a mix.
        """
        changed = 0
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            if if_replan_round is not None:
                if self._state_value("replan_round") != if_replan_round:
                    self._conn.execute("COMMIT")
                    return None
                self._publish_epoch(if_replan_round)
            for experiment, param_hash, priority, cost_estimate in entries:
                cursor = self._conn.execute(
                    "UPDATE runs SET priority = ?, cost_estimate = ? "
                    "WHERE experiment = ? AND param_hash = ? AND status = 'pending'",
                    (float(priority), cost_estimate, experiment, param_hash),
                )
                changed += cursor.rowcount
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        return changed

    def set_dependencies(
        self, experiment: str, param_hash: str, depends_on: Sequence[str]
    ) -> bool:
        """Gate one pending row on the rows named by ``depends_on`` hashes.

        ``param_hash`` values are globally unique (they hash the experiment
        name too), so edges may point across experiments.  ``deps_pending``
        is initialised from current dependency statuses — dependencies that
        are already ``done`` never block.  Rows that are not ``pending`` are
        left untouched (their result stands); returns whether the edge set
        was applied.
        """
        deps = sorted(set(depends_on))
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            pending = self._count_unfinished(deps)
            cursor = self._conn.execute(
                "UPDATE runs SET depends_on = ?, deps_pending = ? "
                "WHERE experiment = ? AND param_hash = ? AND status = 'pending'",
                (json.dumps(deps), pending, experiment, param_hash),
            )
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        return cursor.rowcount == 1

    def _count_unfinished(self, deps: Sequence[str]) -> int:
        """How many of ``deps`` are not ``done`` (missing rows count as unfinished)."""
        if not deps:
            return 0
        placeholders = ",".join("?" for _ in deps)
        done = self._conn.execute(
            f"SELECT COUNT(*) FROM runs WHERE param_hash IN ({placeholders}) "
            "AND status = 'done'",
            list(deps),
        ).fetchone()[0]
        return len(deps) - int(done)

    def sync_dependencies(self, experiments: Sequence[str] | None = None) -> int:
        """Recompute ``deps_pending`` of pending rows from dependency statuses.

        The counters are denormalised for cheap claiming; this is the ground
        truth repair used by :meth:`reclaim_stale` / :meth:`reset` and the
        runner's blocked-row housekeeping.  Returns how many rows changed.
        """
        query = (
            "SELECT id, depends_on, deps_pending FROM runs "
            "WHERE status = 'pending' AND depends_on IS NOT NULL"
        )
        args: list[Any] = []
        if experiments:
            query += f" AND experiment IN ({','.join('?' for _ in experiments)})"
            args.extend(experiments)
        changed = 0
        for row in self._conn.execute(query, args).fetchall():
            deps = json.loads(row["depends_on"])
            pending = self._count_unfinished(deps)
            if pending != row["deps_pending"]:
                self._conn.execute(
                    "UPDATE runs SET deps_pending = ? WHERE id = ?",
                    (pending, row["id"]),
                )
                changed += 1
        return changed

    def blocked_count(self, experiments: Sequence[str] | None = None) -> int:
        """Pending rows currently gated on unfinished prerequisites."""
        query = "SELECT COUNT(*) FROM runs WHERE status = 'pending' AND deps_pending > 0"
        args: list[Any] = []
        if experiments:
            query += f" AND experiment IN ({','.join('?' for _ in experiments)})"
            args.extend(experiments)
        return int(self._conn.execute(query, args).fetchone()[0])

    def blocking_dependencies(
        self, experiments: Sequence[str] | None = None
    ) -> list[dict[str, Any]]:
        """The unfinished prerequisites gating pending rows (deduplicated).

        Each entry is ``{"param_hash", "experiment", "status",
        "deps_pending"}`` (the dependency row's *own* blocked counter, so
        callers can tell a claimable pending dependency from one that is
        itself gated); ``experiment``/``status`` are ``None`` when the
        dependency row does not exist (e.g. a deleted prerequisite) — such
        rows can never unblock on their own.
        """
        query = (
            "SELECT depends_on FROM runs "
            "WHERE status = 'pending' AND deps_pending > 0 AND depends_on IS NOT NULL"
        )
        args: list[Any] = []
        if experiments:
            query += f" AND experiment IN ({','.join('?' for _ in experiments)})"
            args.extend(experiments)
        hashes: list[str] = []
        seen: set[str] = set()
        for row in self._conn.execute(query, args):
            for dep in json.loads(row["depends_on"]):
                if dep not in seen:
                    seen.add(dep)
                    hashes.append(dep)
        out: list[dict[str, Any]] = []
        for dep in hashes:
            dep_row = self._conn.execute(
                "SELECT experiment, status, deps_pending FROM runs WHERE param_hash = ?",
                (dep,),
            ).fetchone()
            if dep_row is not None and dep_row["status"] == "done":
                continue  # satisfied; a sync_dependencies pass will release it
            out.append(
                {
                    "param_hash": dep,
                    "experiment": dep_row["experiment"] if dep_row else None,
                    "status": dep_row["status"] if dep_row else None,
                    "deps_pending": int(dep_row["deps_pending"]) if dep_row else None,
                }
            )
        return out

    def fail_blocked_on_error(self, experiments: Sequence[str] | None = None) -> int:
        """Cascade prerequisite failures: block-waiting on a dead edge is worse.

        Pending rows any of whose dependencies errored are marked ``error``
        themselves (the message names the failed prerequisite), iterating so
        chains of dependents collapse in one call.  Returns how many rows
        were failed.
        """
        total = 0
        while True:
            error_hashes = [
                row["param_hash"]
                for row in self._conn.execute(
                    "SELECT param_hash FROM runs WHERE status = 'error'"
                )
            ]
            if not error_hashes:
                return total
            query = (
                "SELECT id, depends_on FROM runs "
                "WHERE status = 'pending' AND depends_on IS NOT NULL"
            )
            args: list[Any] = []
            if experiments:
                query += f" AND experiment IN ({','.join('?' for _ in experiments)})"
                args.extend(experiments)
            failed_here = 0
            error_set = set(error_hashes)
            for row in self._conn.execute(query, args).fetchall():
                broken = sorted(error_set.intersection(json.loads(row["depends_on"])))
                if broken:
                    self._conn.execute(
                        "UPDATE runs SET status = 'error', error = ?, finished_at = ? "
                        "WHERE id = ? AND status = 'pending'",
                        (
                            f"prerequisite failed: {', '.join(broken)}",
                            time.time(),
                            row["id"],
                        ),
                    )
                    failed_here += 1
            total += failed_here
            if not failed_here:
                return total

    # ------------------------------------------------------------------
    # Online re-planning: epoch protocol and completion watermark
    # ------------------------------------------------------------------
    def completion_count(self) -> int:
        """Landed :meth:`complete` calls over the store's lifetime."""
        return self._state_value("completions")

    def replan_epoch(self) -> int:
        """The current *published* re-plan epoch (0 until one completes).

        Published means the winning worker has finished writing the
        refitted priorities (:meth:`publish_replan_epoch`): rows claimed
        under epoch ``N`` were therefore ordered by epoch ``N``'s
        estimates, which keeps the export's per-epoch accuracy trend
        honestly attributed.
        """
        return self._state_value("replan_epoch")

    def try_begin_replan(self, every: int) -> int | None:
        """Atomically start a re-plan round; returns the round number if won.

        Fires when at least ``every`` completions have landed since the last
        round (the ``replan_watermark``).  Round advance and watermark move
        happen in one ``BEGIN IMMEDIATE`` transaction, so of any number of
        workers racing the same round *exactly one* gets a non-``None``
        round — the winner refits the cost model and rewrites priorities
        through a round-guarded :meth:`set_schedule`, which publishes the
        epoch in the same transaction; everyone else keeps claiming.  The
        epoch visible to claim stamping therefore advances exactly when the
        new priorities land, so every row is attributed to the epoch whose
        estimates actually ordered it.  ``every <= 0`` disables
        re-planning.
        """
        if every <= 0:
            return None
        # Unlocked pre-check: most completions are not a round boundary, and
        # taking the store-wide write lock just to discover that serializes
        # against every concurrent claim.  A stale read here only delays the
        # round to the next completion; the locked re-check below is what
        # guarantees the single winner.
        if self._state_value("completions") - self._state_value("replan_watermark") < every:
            return None
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            completions = self._state_value("completions")
            if completions - self._state_value("replan_watermark") < every:
                self._conn.execute("COMMIT")
                return None
            round_no = self._state_value("replan_round") + 1
            self._set_state("replan_round", round_no)
            self._set_state("replan_watermark", completions)
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        return round_no

    def publish_replan_epoch(self, round_no: int) -> None:
        """Make ``round_no`` the epoch new claims are stamped with.

        The low-level primitive: a round-guarded :meth:`set_schedule` does
        this automatically in the same transaction as its priority write,
        which is what the runner relies on; call it directly only when
        applying a round's priorities through some other path.  Monotonic
        (``MAX``): if the winner of round ``N`` stalls past round ``N+1``'s
        publish, its late publish cannot move the epoch backwards — and a
        winner that dies before publishing merely leaves the epoch to the
        next round, never wedged.
        """
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            self._publish_epoch(round_no)
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        metrics.gauge("store.replan_epoch", self._state_value("replan_epoch"))

    def _publish_epoch(self, round_no: int) -> None:
        """Monotonic epoch advance; must run inside an open transaction."""
        self._set_state(
            "replan_epoch", max(self._state_value("replan_epoch"), int(round_no))
        )

    def duration_history(
        self, experiments: Sequence[str] | None = None
    ) -> list[tuple[str, dict[str, Any], float]]:
        """``(experiment, params, duration)`` of every completed row."""
        return [
            (experiment, params, duration)
            for experiment, params, duration, _, _ in self.duration_samples(experiments)
        ]

    def duration_samples(
        self,
        experiments: Sequence[str] | None = None,
        *,
        since: tuple[float, int] | None = None,
    ) -> list[tuple[str, dict[str, Any], float, float, int]]:
        """``(experiment, params, duration, finished_at, id)``, oldest first.

        ``since`` is a ``(finished_at, id)`` watermark: only rows strictly
        after it (timestamp first, row id as the tiebreak) are returned —
        the incremental feed of the online refit.  ``finished_at`` is
        stamped under the store's write lock so it is ordered with commits,
        but not strictly increasing (coarse clocks can repeat a reading);
        the id tiebreak is what makes "consume each sample exactly once"
        hold even across equal timestamps.
        """
        query = (
            "SELECT id, experiment, params, duration, finished_at FROM runs "
            "WHERE status = 'done' AND duration IS NOT NULL"
        )
        args: list[Any] = []
        if experiments:
            query += f" AND experiment IN ({','.join('?' for _ in experiments)})"
            args.extend(experiments)
        if since is not None:
            timestamp, row_id = since
            query += " AND (finished_at > ? OR (finished_at = ? AND id > ?))"
            args.extend([timestamp, timestamp, row_id])
        query += " ORDER BY finished_at, id"
        return [
            (
                row["experiment"],
                json.loads(row["params"]),
                float(row["duration"]),
                float(row["finished_at"]) if row["finished_at"] is not None else 0.0,
                int(row["id"]),
            )
            for row in self._conn.execute(query, args)
        ]

    # ------------------------------------------------------------------
    # Cross-store cost priors
    # ------------------------------------------------------------------
    def save_cost_priors(self, priors: Mapping[str, Mapping[str, Any]]) -> int:
        """Upsert per-experiment cost statistics (the priors table).

        ``priors`` maps experiment name to a dict with ``samples`` (int),
        ``mean_duration`` and ``hint_scale`` (floats or ``None``) — the JSON
        shape :func:`repro.orchestration.scheduling.save_priors` writes.
        Returns how many experiments were stored.
        """
        now = time.time()
        stored = 0
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            for experiment, stats in priors.items():
                samples = int(stats.get("samples", 0))
                if samples <= 0:
                    continue
                mean_duration = stats.get("mean_duration")
                hint_scale = stats.get("hint_scale")
                self._conn.execute(
                    "INSERT OR REPLACE INTO cost_priors "
                    "(experiment, samples, mean_duration, hint_scale, updated_at) "
                    "VALUES (?, ?, ?, ?, ?)",
                    (
                        str(experiment),
                        samples,
                        float(mean_duration) if mean_duration is not None else None,
                        float(hint_scale) if hint_scale is not None else None,
                        now,
                    ),
                )
                stored += 1
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        return stored

    def load_cost_priors(self) -> dict[str, dict[str, Any]]:
        """The stored priors, in the same shape :meth:`save_cost_priors` takes."""
        return {
            row["experiment"]: {
                "samples": int(row["samples"]),
                "mean_duration": row["mean_duration"],
                "hint_scale": row["hint_scale"],
            }
            for row in self._conn.execute(
                "SELECT experiment, samples, mean_duration, hint_scale FROM cost_priors"
            )
        }

    # ------------------------------------------------------------------
    # Service telemetry tail
    # ------------------------------------------------------------------
    # The scheduling service folds its counters into completed journal rows
    # (the "_service_telemetry" per-row delta convention); the *tail* is the
    # remainder that has not yet ridden a row — rejected submissions and
    # cache hits on an otherwise idle service.  Journaling it here is what
    # lets `orch status`/`orch export service` reconstruct lifetime totals
    # across a restart.  One integer scheduler_state row per counter keeps
    # the value column's INTEGER type honest.

    _SERVICE_TAIL_PREFIX = "service_telemetry_tail:"

    def service_telemetry_tail(self) -> dict[str, int]:
        """Unflushed service counter deltas, as journaled by the service."""
        return {
            row["key"][len(self._SERVICE_TAIL_PREFIX):]: int(row["value"])
            for row in self._conn.execute(
                "SELECT key, value FROM scheduler_state WHERE key LIKE ?",
                (self._SERVICE_TAIL_PREFIX + "%",),
            )
            if int(row["value"])
        }

    def set_service_telemetry_tail(self, counters: Mapping[str, int]) -> None:
        """Overwrite the journaled tail with the service's current snapshot."""
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            self._conn.execute(
                "DELETE FROM scheduler_state WHERE key LIKE ?",
                (self._SERVICE_TAIL_PREFIX + "%",),
            )
            for key, value in counters.items():
                if int(value):
                    self._conn.execute(
                        "INSERT INTO scheduler_state (key, value) VALUES (?, ?)",
                        (self._SERVICE_TAIL_PREFIX + str(key), int(value)),
                    )
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise

    # ------------------------------------------------------------------
    # Trace spans (used by repro.observability.events)
    # ------------------------------------------------------------------
    def record_events(
        self,
        events: Sequence[Mapping[str, Any]],
        *,
        retain: int | None = None,
    ) -> int:
        """Journal trace spans, trimming the table to bounded retention.

        Each event is a span dict (``kind`` required; ``op``/``actor``/
        ``ts``/``duration``/``detail`` optional — see
        :func:`repro.observability.events.emit`).  Insert and trim happen
        in one transaction, so the table holds at most the newest
        ``retain`` (default :data:`EVENTS_RETAIN`) rows no matter how many
        processes flush into it.  Returns the number of spans inserted.
        """
        rows = [
            (
                str(event["op"]) if event.get("op") is not None else None,
                str(event.get("kind") or "event"),
                str(event["actor"]) if event.get("actor") is not None else None,
                float(event.get("ts") or time.time()),
                float(event["duration"]) if event.get("duration") is not None else None,
                json.dumps(_to_jsonable(event.get("detail") or {})),
            )
            for event in events
        ]
        if not rows:
            return 0
        keep = EVENTS_RETAIN if retain is None else max(0, int(retain))
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            self._conn.executemany(
                "INSERT INTO events (op, kind, actor, ts, duration, detail) "
                "VALUES (?, ?, ?, ?, ?, ?)",
                rows,
            )
            self._conn.execute(
                "DELETE FROM events WHERE seq <= "
                "(SELECT COALESCE(MAX(seq), 0) FROM events) - ?",
                (keep,),
            )
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        return len(rows)

    def fetch_events(
        self,
        *,
        op: str | None = None,
        kinds: Sequence[str] | None = None,
        limit: int = 500,
    ) -> list[dict[str, Any]]:
        """The newest journaled spans, oldest-first, optionally filtered.

        ``op`` restricts to one correlation chain; ``kinds`` to a set of
        span kinds.  ``limit`` bounds the window (applied to the newest
        rows *before* re-sorting ascending, so the result is always the
        most recent slice).
        """
        query = "SELECT seq, op, kind, actor, ts, duration, detail FROM events"
        clauses: list[str] = []
        args: list[Any] = []
        if op is not None:
            clauses.append("op = ?")
            args.append(str(op))
        if kinds:
            clauses.append(f"kind IN ({','.join('?' for _ in kinds)})")
            args.extend(str(kind) for kind in kinds)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY seq DESC LIMIT ?"
        args.append(max(0, int(limit)))
        out = []
        for row in self._conn.execute(query, args):
            out.append(
                {
                    "seq": int(row["seq"]),
                    "op": row["op"],
                    "kind": row["kind"],
                    "actor": row["actor"],
                    "ts": float(row["ts"]),
                    "duration": row["duration"],
                    "detail": json.loads(row["detail"]) if row["detail"] else {},
                }
            )
        out.reverse()
        return out

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def status_counts(self) -> dict[str, dict[str, int]]:
        """``{experiment: {status: count}}`` over the whole store."""
        counts: dict[str, dict[str, int]] = {}
        for row in self._conn.execute(
            "SELECT experiment, status, COUNT(*) AS n FROM runs GROUP BY experiment, status"
        ):
            counts.setdefault(row["experiment"], {})[row["status"]] = row["n"]
        return counts

    def pending_count(self, experiments: Sequence[str] | None = None) -> int:
        query = "SELECT COUNT(*) FROM runs WHERE status = 'pending'"
        args: list[Any] = []
        if experiments:
            query += f" AND experiment IN ({','.join('?' for _ in experiments)})"
            args.extend(experiments)
        return int(self._conn.execute(query, args).fetchone()[0])

    def fetch_rows(
        self, experiment: str, *, status: str | None = None
    ) -> list[StoredRow]:
        """All rows of one experiment in grid (insertion) order."""
        query = "SELECT * FROM runs WHERE experiment = ?"
        args: list[Any] = [experiment]
        if status is not None:
            query += " AND status = ?"
            args.append(status)
        query += " ORDER BY id"
        out = []
        for row in self._conn.execute(query, args):
            out.append(
                StoredRow(
                    id=row["id"],
                    experiment=row["experiment"],
                    params=json.loads(row["params"]),
                    status=row["status"],
                    result=json.loads(row["result"]) if row["result"] else None,
                    error=row["error"],
                    worker=row["worker"],
                    attempts=row["attempts"],
                    duration=row["duration"],
                    priority=float(row["priority"]),
                    cost_estimate=row["cost_estimate"],
                    depends_on=tuple(json.loads(row["depends_on"]))
                    if row["depends_on"]
                    else (),
                    deps_pending=int(row["deps_pending"]),
                    epoch=int(row["epoch"]),
                )
            )
        return out

    def experiments(self) -> list[str]:
        return [
            row["experiment"]
            for row in self._conn.execute(
                "SELECT DISTINCT experiment FROM runs ORDER BY experiment"
            )
        ]

    # ------------------------------------------------------------------
    # Result cache (used by repro.orchestration.cache)
    # ------------------------------------------------------------------
    def cache_contains(self, key: str) -> bool:
        """Whether a cache entry exists, without bumping its hit counter.

        Used by the planner to skip hoisting prerequisites whose results are
        already cached (their dependents will hit the cache anyway).
        """
        row = self._conn.execute("SELECT 1 FROM cache WHERE key = ?", (key,)).fetchone()
        return row is not None

    def cache_get(self, key: str) -> dict[str, Any] | None:
        row = self._conn.execute("SELECT payload FROM cache WHERE key = ?", (key,)).fetchone()
        if row is None:
            return None
        self._conn.execute("UPDATE cache SET hits = hits + 1 WHERE key = ?", (key,))
        return json.loads(row["payload"])

    def cache_put(self, key: str, solver: str, payload: Mapping[str, Any]) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO cache (key, solver, payload, created_at, hits) "
            "VALUES (?, ?, ?, ?, COALESCE((SELECT hits FROM cache WHERE key = ?), 0))",
            (key, solver, json.dumps(_to_jsonable(payload)), time.time(), key),
        )

    def cache_stats(self) -> dict[str, int]:
        row = self._conn.execute(
            "SELECT COUNT(*) AS entries, COALESCE(SUM(hits), 0) AS hits FROM cache"
        ).fetchone()
        return {"entries": row["entries"], "hits": row["hits"]}

    def clear_cache(self) -> int:
        return self._conn.execute("DELETE FROM cache").rowcount
