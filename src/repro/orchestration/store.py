"""SQLite-backed experiment registry: the persistence layer of orchestration.

A *store* is a single SQLite file (WAL mode) holding two tables:

``runs``
    One row per grid cell of an experiment: canonical-JSON parameters, a
    content hash, a ``pending/running/done/error`` status, timing columns and
    the JSON result payload.  Rows are idempotently inserted (re-expanding a
    grid never duplicates work) and atomically claimed (``BEGIN IMMEDIATE``
    plus a status-guarded UPDATE), so any number of worker processes on one
    host never double-run a cell.  Sharing the file *across machines* (NFS &
    co.) is NOT safe: WAL mode relies on shared memory, which network
    filesystems don't provide — multi-machine operation needs a server-backed
    store (see the ROADMAP).

``cache``
    Content-addressed solver results keyed by
    ``sha256(instance digest, solver name, config)`` — see
    :mod:`repro.orchestration.cache`.

The store is deliberately connection-per-instance: every worker process
constructs its own :class:`ExperimentStore` against the shared path.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

__all__ = [
    "ExperimentStore",
    "ClaimedRow",
    "StoredRow",
    "canonical_params",
    "params_hash",
    "STATUSES",
]

STATUSES = ("pending", "running", "done", "error")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    id          INTEGER PRIMARY KEY AUTOINCREMENT,
    experiment  TEXT NOT NULL,
    params      TEXT NOT NULL,
    param_hash  TEXT NOT NULL,
    status      TEXT NOT NULL DEFAULT 'pending',
    result      TEXT,
    error       TEXT,
    worker      TEXT,
    attempts    INTEGER NOT NULL DEFAULT 0,
    created_at  REAL NOT NULL,
    claimed_at  REAL,
    finished_at REAL,
    duration    REAL,
    UNIQUE (experiment, param_hash)
);
CREATE INDEX IF NOT EXISTS idx_runs_status ON runs (experiment, status);
CREATE TABLE IF NOT EXISTS cache (
    key        TEXT PRIMARY KEY,
    solver     TEXT NOT NULL,
    payload    TEXT NOT NULL,
    created_at REAL NOT NULL,
    hits       INTEGER NOT NULL DEFAULT 0
);
"""


def _to_jsonable(value: Any) -> Any:
    """Coerce numpy scalars / containers into plain JSON-compatible types."""
    if isinstance(value, Mapping):
        return {str(key): _to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_to_jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    # numpy scalars expose .item(); anything else falls back to str().
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return item()
        except (TypeError, ValueError):
            pass
    return str(value)


def canonical_params(params: Mapping[str, Any]) -> str:
    """Canonical JSON encoding of a parameter dict (sorted keys, no spaces)."""
    return json.dumps(_to_jsonable(params), sort_keys=True, separators=(",", ":"))


def params_hash(experiment: str, params: Mapping[str, Any]) -> str:
    """Stable content hash identifying one grid cell of one experiment."""
    blob = f"{experiment}\x00{canonical_params(params)}".encode()
    return hashlib.sha256(blob).hexdigest()


@dataclass(frozen=True, slots=True)
class ClaimedRow:
    """A row handed to a worker: execute, then ``complete`` or ``fail`` it."""

    id: int
    experiment: str
    params: dict[str, Any]


@dataclass(frozen=True, slots=True)
class StoredRow:
    """Full row view used by status/export paths."""

    id: int
    experiment: str
    params: dict[str, Any]
    status: str
    result: dict[str, Any] | None
    error: str | None
    worker: str | None
    attempts: int
    duration: float | None


class ExperimentStore:
    """Persistent registry of experiment grid rows plus the result cache."""

    def __init__(self, path: str | os.PathLike[str], *, timeout: float = 30.0) -> None:
        self.path = Path(path)
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        # isolation_level=None -> autocommit; transactions are explicit
        # (BEGIN IMMEDIATE) exactly where atomicity matters.
        self._conn = sqlite3.connect(self.path, timeout=timeout, isolation_level=None)
        self._conn.row_factory = sqlite3.Row
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.executescript(_SCHEMA)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ExperimentStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Grid population
    # ------------------------------------------------------------------
    def add_rows(self, experiment: str, grid: Iterable[Mapping[str, Any]]) -> int:
        """Idempotently insert grid cells; returns the number actually added."""
        now = time.time()
        added = 0
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            for params in grid:
                cursor = self._conn.execute(
                    "INSERT OR IGNORE INTO runs "
                    "(experiment, params, param_hash, status, created_at) "
                    "VALUES (?, ?, ?, 'pending', ?)",
                    (experiment, canonical_params(params), params_hash(experiment, params), now),
                )
                added += cursor.rowcount
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        return added

    # ------------------------------------------------------------------
    # Claiming and completion
    # ------------------------------------------------------------------
    def claim_next(
        self, worker: str, experiments: Sequence[str] | None = None
    ) -> ClaimedRow | None:
        """Atomically claim the oldest pending row (optionally filtered).

        ``BEGIN IMMEDIATE`` takes the SQLite write lock before the SELECT, so
        two workers can never observe (and claim) the same pending row.
        """
        query = "SELECT id, experiment, params FROM runs WHERE status = 'pending'"
        args: list[Any] = []
        if experiments:
            placeholders = ",".join("?" for _ in experiments)
            query += f" AND experiment IN ({placeholders})"
            args.extend(experiments)
        query += " ORDER BY id LIMIT 1"
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            row = self._conn.execute(query, args).fetchone()
            if row is None:
                self._conn.execute("COMMIT")
                return None
            self._conn.execute(
                "UPDATE runs SET status = 'running', worker = ?, claimed_at = ?, "
                "attempts = attempts + 1, error = NULL WHERE id = ?",
                (worker, time.time(), row["id"]),
            )
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        return ClaimedRow(id=row["id"], experiment=row["experiment"], params=json.loads(row["params"]))

    def complete(
        self,
        row_id: int,
        result: Mapping[str, Any],
        *,
        duration: float,
        worker: str | None = None,
    ) -> bool:
        """Mark a claimed row done and persist its JSON result payload.

        The update is guarded on ``status='running'`` (and on ``worker`` when
        given): if the row was reclaimed as stale and handed to a new owner
        while this worker was still computing, the late writeback is dropped
        instead of clobbering the new owner's state.  Returns whether the
        write landed.
        """
        query = (
            "UPDATE runs SET status = 'done', result = ?, finished_at = ?, duration = ? "
            "WHERE id = ? AND status = 'running'"
        )
        args: list[Any] = [json.dumps(_to_jsonable(result)), time.time(), duration, row_id]
        if worker is not None:
            query += " AND worker = ?"
            args.append(worker)
        return self._conn.execute(query, args).rowcount == 1

    def fail(
        self, row_id: int, error: str, *, duration: float, worker: str | None = None
    ) -> bool:
        """Mark a claimed row errored, keeping the traceback for post-mortems.

        Guarded like :meth:`complete`; returns whether the write landed.
        """
        query = (
            "UPDATE runs SET status = 'error', error = ?, finished_at = ?, duration = ? "
            "WHERE id = ? AND status = 'running'"
        )
        args: list[Any] = [error, time.time(), duration, row_id]
        if worker is not None:
            query += " AND worker = ?"
            args.append(worker)
        return self._conn.execute(query, args).rowcount == 1

    def reclaim_stale(
        self, *, older_than: float = 0.0, experiments: Sequence[str] | None = None
    ) -> int:
        """Re-open ``running`` rows claimed more than ``older_than`` s ago.

        A worker that was SIGKILLed leaves its row ``running`` forever; the
        next runner invocation calls this before spawning workers so the row
        is re-executed.  Completed rows are untouched — resume never re-runs
        finished work.  ``experiments`` restricts the reclaim so a runner
        never steals in-progress rows of experiments it was not asked to run
        (another invocation may legitimately be working on those).
        """
        query = (
            "UPDATE runs SET status = 'pending', worker = NULL, claimed_at = NULL "
            "WHERE status = 'running' AND claimed_at <= ?"
        )
        args: list[Any] = [time.time() - older_than]
        if experiments:
            query += f" AND experiment IN ({','.join('?' for _ in experiments)})"
            args.extend(experiments)
        cursor = self._conn.execute(query, args)
        return cursor.rowcount

    def reset(
        self,
        experiments: Sequence[str] | None = None,
        *,
        statuses: Sequence[str] = ("running", "error"),
    ) -> int:
        """Move rows of the given statuses back to ``pending`` (results cleared)."""
        query = (
            "UPDATE runs SET status = 'pending', result = NULL, error = NULL, "
            "worker = NULL, claimed_at = NULL, finished_at = NULL, duration = NULL "
            f"WHERE status IN ({','.join('?' for _ in statuses)})"
        )
        args: list[Any] = list(statuses)
        if experiments:
            query += f" AND experiment IN ({','.join('?' for _ in experiments)})"
            args.extend(experiments)
        cursor = self._conn.execute(query, args)
        return cursor.rowcount

    def delete_rows(
        self,
        experiments: Sequence[str] | None = None,
        *,
        statuses: Sequence[str] | None = None,
    ) -> int:
        """Drop grid rows entirely (e.g. before re-expanding a changed grid).

        ``statuses=None`` deletes rows of every status; pass an explicit list
        to e.g. drop only ``error`` rows while keeping ``done`` results.
        """
        clauses: list[str] = []
        args: list[Any] = []
        if experiments:
            clauses.append(f"experiment IN ({','.join('?' for _ in experiments)})")
            args.extend(experiments)
        if statuses:
            clauses.append(f"status IN ({','.join('?' for _ in statuses)})")
            args.extend(statuses)
        query = "DELETE FROM runs"
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        cursor = self._conn.execute(query, args)
        return cursor.rowcount

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def status_counts(self) -> dict[str, dict[str, int]]:
        """``{experiment: {status: count}}`` over the whole store."""
        counts: dict[str, dict[str, int]] = {}
        for row in self._conn.execute(
            "SELECT experiment, status, COUNT(*) AS n FROM runs GROUP BY experiment, status"
        ):
            counts.setdefault(row["experiment"], {})[row["status"]] = row["n"]
        return counts

    def pending_count(self, experiments: Sequence[str] | None = None) -> int:
        query = "SELECT COUNT(*) FROM runs WHERE status = 'pending'"
        args: list[Any] = []
        if experiments:
            query += f" AND experiment IN ({','.join('?' for _ in experiments)})"
            args.extend(experiments)
        return int(self._conn.execute(query, args).fetchone()[0])

    def fetch_rows(
        self, experiment: str, *, status: str | None = None
    ) -> list[StoredRow]:
        """All rows of one experiment in grid (insertion) order."""
        query = "SELECT * FROM runs WHERE experiment = ?"
        args: list[Any] = [experiment]
        if status is not None:
            query += " AND status = ?"
            args.append(status)
        query += " ORDER BY id"
        out = []
        for row in self._conn.execute(query, args):
            out.append(
                StoredRow(
                    id=row["id"],
                    experiment=row["experiment"],
                    params=json.loads(row["params"]),
                    status=row["status"],
                    result=json.loads(row["result"]) if row["result"] else None,
                    error=row["error"],
                    worker=row["worker"],
                    attempts=row["attempts"],
                    duration=row["duration"],
                )
            )
        return out

    def experiments(self) -> list[str]:
        return [
            row["experiment"]
            for row in self._conn.execute(
                "SELECT DISTINCT experiment FROM runs ORDER BY experiment"
            )
        ]

    # ------------------------------------------------------------------
    # Result cache (used by repro.orchestration.cache)
    # ------------------------------------------------------------------
    def cache_get(self, key: str) -> dict[str, Any] | None:
        row = self._conn.execute("SELECT payload FROM cache WHERE key = ?", (key,)).fetchone()
        if row is None:
            return None
        self._conn.execute("UPDATE cache SET hits = hits + 1 WHERE key = ?", (key,))
        return json.loads(row["payload"])

    def cache_put(self, key: str, solver: str, payload: Mapping[str, Any]) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO cache (key, solver, payload, created_at, hits) "
            "VALUES (?, ?, ?, ?, COALESCE((SELECT hits FROM cache WHERE key = ?), 0))",
            (key, solver, json.dumps(_to_jsonable(payload)), time.time(), key),
        )

    def cache_stats(self) -> dict[str, int]:
        row = self._conn.execute(
            "SELECT COUNT(*) AS entries, COALESCE(SUM(hits), 0) AS hits FROM cache"
        ).fetchone()
        return {"entries": row["entries"], "hits": row["hits"]}

    def clear_cache(self) -> int:
        return self._conn.execute("DELETE FROM cache").rowcount
