"""Persistent, parallel, resumable experiment orchestration.

Turns the in-memory experiment drivers into a database-backed engine:

* :mod:`~repro.orchestration.store` — SQLite (WAL) registry of grid rows
  with ``pending/running/done/error`` statuses and atomic claiming.
* :mod:`~repro.orchestration.registry` / :mod:`~repro.orchestration.grids` —
  declarative specs re-expressing E1…E10 as parameter grids.
* :mod:`~repro.orchestration.runner` — a ``ProcessPoolExecutor`` worker pool
  with crash-safe resume (stale ``running`` rows are reclaimed).
* :mod:`~repro.orchestration.cache` — content-hash solver-result caching.
* :mod:`~repro.orchestration.scheduling` — cost model fitted from stored
  durations; claiming becomes longest-expected-first with a bounded-wait
  FIFO interleave.  The model refits online (EWMA) as durations stream in
  mid-drain, and fitted per-experiment scales ship across stores as JSON
  priors (``repro orch priors export|import``).
* :mod:`~repro.orchestration.planner` — dependency-aware grid planning:
  exact-MILP sub-results shared by several cells (E2/E4/E10) are hoisted
  into ``prereq`` rows that gate their dependents via ``depends_on`` edges
  and feed them through the result cache.
* :mod:`~repro.orchestration.export` — completed rows back out as
  :class:`~repro.experiments.tables.ExperimentTable`, CSV or LaTeX.

Every layer consumes the store through its extracted public surface
(:class:`repro.distributed.StoreProtocol`), so the whole engine also runs
against a :class:`repro.distributed.RemoteStore` — ``repro orch serve`` on
the store host, ``repro orch worker --connect`` on any number of other
machines (see :mod:`repro.distributed`).

Typical workflow (also exposed as ``repro orch ...``)::

    from repro.orchestration import ExperimentStore, run_pool, export

    report = run_pool("orchestration.db", ["e1"], workers=4)
    with ExperimentStore("orchestration.db") as store:
        print(export.export_experiment(store, "e1", "markdown"))
"""

from . import export, registry
from .cache import (
    activate_cache,
    active_cache,
    cache_key,
    cached_payload,
    cached_solve,
    deactivate_cache,
    instance_digest,
    set_memo_limit,
    summarise_result,
)
from .planner import (
    PREREQ_EXPERIMENT,
    PlanReport,
    PrereqCall,
    apply_gate_boosts,
    plan,
    replan,
)
from .registry import ExperimentSpec, get_spec, run_spec_inline, spec_names
from .runner import RunReport, populate, run_pool, run_worker, run_workers
from .scheduling import (
    CostModel,
    claim_order,
    load_priors,
    plan_priorities,
    save_priors,
    simulate_makespan,
)
from .store import ExperimentStore, canonical_params, params_hash

__all__ = [
    "CostModel",
    "ExperimentSpec",
    "ExperimentStore",
    "PREREQ_EXPERIMENT",
    "PlanReport",
    "PrereqCall",
    "RunReport",
    "activate_cache",
    "active_cache",
    "apply_gate_boosts",
    "cache_key",
    "cached_payload",
    "cached_solve",
    "canonical_params",
    "claim_order",
    "deactivate_cache",
    "export",
    "get_spec",
    "instance_digest",
    "load_priors",
    "params_hash",
    "plan",
    "plan_priorities",
    "populate",
    "registry",
    "replan",
    "run_pool",
    "run_spec_inline",
    "run_worker",
    "run_workers",
    "save_priors",
    "set_memo_limit",
    "simulate_makespan",
    "spec_names",
    "summarise_result",
]
