"""Declarative experiment registry: specs, grid expansion, inline execution.

An :class:`ExperimentSpec` decomposes one experiment into

* ``make_grid(quick, seed)`` — the parameter grid: a list of self-contained,
  JSON-able cell parameter dicts (what gets persisted into the store),
* ``run_cell(**params)`` — executes one cell and returns a JSON-able result
  dict (what workers run; must be a picklable top-level function),
* ``reduce_rows(cells)`` — optional aggregation of ``(params, result)`` pairs
  into final table rows (e.g. averaging ratios over seeds per family).

The same spec drives three execution paths: the in-process driver functions
in :mod:`repro.experiments.drivers` (via :func:`run_spec_inline`), the
parallel worker pool in :mod:`repro.orchestration.runner`, and table export
from a store in :mod:`repro.orchestration.export`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from ..experiments.tables import ExperimentTable

__all__ = [
    "ExperimentSpec",
    "register",
    "get_spec",
    "spec_names",
    "all_specs",
    "expand_grid",
    "execute_cell",
    "assemble_table",
    "run_spec_inline",
]

CellPair = tuple[dict[str, Any], dict[str, Any]]


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment expressed as grid + cell + reduce."""

    name: str  # registry key, lowercase ("e1" … "e10", "smoke")
    experiment_id: str  # table identifier ("E1" …)
    title: str
    make_grid: Callable[..., list[dict[str, Any]]]  # (quick, seed) -> grid
    run_cell: Callable[..., dict[str, Any]]  # (**params) -> result
    reduce_rows: Callable[[list[CellPair]], list[dict[str, Any]]] | None = None
    notes: tuple[str, ...] = field(default_factory=tuple)
    # True when cells measure wall-clock time themselves (E3/E4/E10): running
    # them beside concurrent workers inflates the measured columns, so the
    # CLI warns and clean timings should use a single worker.
    timing_sensitive: bool = False
    # Relative expected cost of one cell: (params) -> float.  Fed to the
    # scheduling cost model as the shape prior — stored duration history
    # rescales it into seconds; without history the raw value orders claims.
    cost_hint: Callable[[dict[str, Any]], float] | None = None
    # Expensive shared sub-solves of one cell: (**params) -> list[PrereqCall]
    # (see repro.orchestration.planner).  The planner hoists sub-solves that
    # several cells share into dedicated prerequisite rows, gates the cells
    # on them via depends_on edges, and lets the content-hash cache hand the
    # result to every dependent.
    prerequisites: Callable[..., list[Any]] | None = None


_REGISTRY: dict[str, ExperimentSpec] = {}
_builtins_loaded = False


def register(spec: ExperimentSpec) -> ExperimentSpec:
    _REGISTRY[spec.name] = spec
    return spec


def _ensure_loaded() -> None:
    # The builtin specs live in grids.py; importing it registers them.  Done
    # lazily so store/cache can be used without pulling in every solver.
    # Guarded by a flag, not by the registry being empty: an ad-hoc spec
    # registered first (tests, library use) must not mask the builtins.
    global _builtins_loaded
    if not _builtins_loaded:
        _builtins_loaded = True
        from . import grids  # noqa: F401


def get_spec(name: str) -> ExperimentSpec:
    """Look up a spec case-insensitively (``"E1"`` and ``"e1"`` both work)."""
    _ensure_loaded()
    try:
        return _REGISTRY[name.lower()]
    except KeyError as exc:
        raise KeyError(
            f"unknown experiment {name!r}; available: {sorted(_REGISTRY)}"
        ) from exc


def spec_names() -> list[str]:
    _ensure_loaded()
    return sorted(_REGISTRY)


def all_specs() -> list[ExperimentSpec]:
    _ensure_loaded()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def expand_grid(
    spec: ExperimentSpec, *, quick: bool = True, seed: int = 0
) -> list[dict[str, Any]]:
    """Materialise the parameter grid of one spec."""
    return spec.make_grid(quick=quick, seed=seed)


def execute_cell(experiment: str, params: Mapping[str, Any]) -> dict[str, Any]:
    """Run one cell by experiment name — the worker-side entry point."""
    spec = get_spec(experiment)
    return spec.run_cell(**params)


def assemble_table(spec: ExperimentSpec, cells: Sequence[CellPair]) -> ExperimentTable:
    """Turn executed ``(params, result)`` pairs into the experiment's table."""
    table = ExperimentTable(spec.experiment_id, spec.title)
    if spec.reduce_rows is not None:
        rows = spec.reduce_rows(list(cells))
    else:
        # Underscore-prefixed keys are runner-attached metadata (e.g. the
        # per-cell solver telemetry), not experiment columns.
        rows = [
            {key: value for key, value in result.items() if not key.startswith("_")}
            for _, result in cells
        ]
    table.add_rows(rows)
    for note in spec.notes:
        table.add_note(note)
    return table


def run_spec_inline(
    spec: ExperimentSpec, *, quick: bool = True, seed: int = 0
) -> ExperimentTable:
    """Expand and execute a spec synchronously in this process.

    This is the path the classic ``experiment_eN`` driver functions take: no
    store, no workers — but the same cells, so results are identical to an
    orchestrated run (the in-process memo cache still avoids recomputing
    shared sub-results such as exact optima across cells).
    """
    cells: list[CellPair] = []
    for params in expand_grid(spec, quick=quick, seed=seed):
        cells.append((dict(params), spec.run_cell(**params)))
    return assemble_table(spec, cells)
