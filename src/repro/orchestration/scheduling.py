"""Cost-aware scheduling: turning FIFO claiming into a makespan minimiser.

The paper's experiment grids mix cells whose durations differ by orders of
magnitude (an exact MILP on 32 jobs versus an LPT run on 10).  With FIFO
claiming an expensive cell picked up late dangles off the end of the run and
dominates the wall time; claiming *longest-expected-first* is exactly the LPT
rule the paper studies, applied to the experiment run itself, and carries the
same Graham guarantee (makespan at most ``4/3 - 1/(3w)`` times optimal for
``w`` workers when the estimates are right).

Three pieces live here:

* :class:`CostModel` — per-experiment cost estimates fitted from the
  ``duration`` history persisted in the store, with the grid-declared
  ``cost_hint`` of the :class:`~repro.orchestration.registry.ExperimentSpec`
  as the shape prior (history rescales the hint; without history the raw
  hint is used; without either, a constant).  Estimates are written to the
  ``priority`` / ``cost_estimate`` columns, which
  :meth:`~repro.orchestration.store.ExperimentStore.claim_next` consumes.
* *Online refit and cross-store priors* (PR 4) —
  :meth:`CostModel.observe` / :meth:`CostModel.refit` fold freshly landed
  durations into the fitted statistics as an EWMA (recent completions
  dominate stale history), so the runner can re-rank still-pending rows
  mid-drain; :func:`save_priors` / :func:`load_priors` round-trip the
  fitted per-experiment scales through JSON, and
  :meth:`~repro.orchestration.store.ExperimentStore.save_cost_priors`
  persists them in a store, so a fresh store schedules well before its
  first duration lands (``repro orch priors export|import``).
* :func:`claim_order` / :func:`simulate_makespan` — a faithful in-memory
  model of the claim loop (priority order, FIFO interleave every
  ``fifo_every``-th claim, workers grabbing the next row as they free up),
  used by the planner's projections and by the scheduler test battery.

Starvation: pure longest-first claiming can starve a cheap cell behind an
arbitrarily long stream of expensive ones.  The store therefore takes the
*oldest* claimable row on every ``fifo_every``-th claim, which bounds any
cell's wait at ``position * fifo_every`` claims — the deterministic
bounded-wait property the tests pin down.
"""

from __future__ import annotations

import heapq
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from .store import params_hash

if TYPE_CHECKING:  # the extracted store surface; local and remote stores both satisfy it
    from ..distributed.protocol import StoreProtocol

__all__ = [
    "DEFAULT_COST",
    "EWMA_ALPHA",
    "PRIORS_VERSION",
    "CostModel",
    "ExperimentCosts",
    "claim_order",
    "load_priors",
    "plan_priorities",
    "priority_entries",
    "save_priors",
    "simulate_makespan",
]

# Cost assigned when neither duration history nor a grid hint exists.  Its
# absolute value is irrelevant (priorities only order rows); all-equal
# estimates degrade claiming to FIFO, the pre-scheduling behaviour.
DEFAULT_COST = 1.0

# Default weight of the newest duration sample in the online refit.  High
# enough that a badly calibrated prior is overruled within a few
# completions, low enough that one noisy cell does not thrash priorities.
EWMA_ALPHA = 0.3

# Schema version of the priors JSON written by save_priors.
PRIORS_VERSION = 1


@dataclass(frozen=True, slots=True)
class ExperimentCosts:
    """Fitted per-experiment statistics backing one :class:`CostModel`."""

    samples: int
    mean_duration: float | None  # mean observed cell duration (seconds)
    hint_scale: float | None  # seconds per hint unit, when hints cover history


class CostModel:
    """Expected cell durations from stored history plus grid cost hints."""

    def __init__(self, per_experiment: Mapping[str, ExperimentCosts] | None = None) -> None:
        self.per_experiment = dict(per_experiment or {})

    @classmethod
    def fit(
        cls,
        store: "StoreProtocol",
        experiments: Sequence[str] | None = None,
        *,
        use_priors: bool = True,
    ) -> "CostModel":
        """Fit from the ``duration`` column of completed rows.

        For every experiment with history the mean duration is recorded;
        when the spec declares a ``cost_hint`` the mean *per hint unit* is
        recorded too, so within-experiment variation (an E3 cell at n=128
        versus n=16) is captured instead of averaged away.  The hint scale
        is fitted from the rows that *have* a positive hint — a retired-spec
        row or a hint callable that throws on one cell must not flatten the
        whole experiment's estimates to the mean.

        ``use_priors=True`` folds the store's imported cross-store priors
        (``repro orch priors import``) in: experiments without history
        inherit the prior outright, experiments with both get a
        sample-count-weighted blend.
        """
        grouped: dict[str, list[tuple[dict[str, Any], float]]] = {}
        for experiment, params, duration in store.duration_history(experiments):
            grouped.setdefault(experiment, []).append((params, duration))
        fitted: dict[str, ExperimentCosts] = {}
        for experiment, samples in grouped.items():
            durations = [duration for _, duration in samples]
            mean_duration = sum(durations) / len(durations)
            hint_scale = None
            hinted = [
                (hint, duration)
                for (params, duration) in samples
                if (hint := _spec_hint(experiment, params)) is not None and hint > 0
            ]
            if hinted:
                mean_hint = sum(hint for hint, _ in hinted) / len(hinted)
                mean_hinted_duration = sum(duration for _, duration in hinted) / len(hinted)
                if mean_hint > 0:
                    hint_scale = mean_hinted_duration / mean_hint
            fitted[experiment] = ExperimentCosts(
                samples=len(samples),
                mean_duration=mean_duration,
                hint_scale=hint_scale,
            )
        model = cls(fitted)
        if use_priors:
            model.merge_priors(store.load_cost_priors())
        return model

    def merge_priors(self, priors: Mapping[str, Mapping[str, Any]]) -> None:
        """Fold imported per-experiment statistics into the fitted ones.

        An experiment present only in ``priors`` inherits them outright;
        one present in both gets a sample-count-weighted blend, so a prior
        carrying 50 samples outweighs 2 local completions but fades as
        local history accumulates.
        """
        for experiment, stats in priors.items():
            prior = ExperimentCosts(
                samples=int(stats.get("samples", 0)),
                mean_duration=stats.get("mean_duration"),
                hint_scale=stats.get("hint_scale"),
            )
            if prior.samples <= 0:
                continue
            local = self.per_experiment.get(experiment)
            if local is None or local.samples <= 0:
                self.per_experiment[experiment] = prior
                continue
            total = local.samples + prior.samples
            self.per_experiment[experiment] = ExperimentCosts(
                samples=total,
                mean_duration=_blend(
                    local.mean_duration, local.samples, prior.mean_duration, prior.samples
                ),
                hint_scale=_blend(
                    local.hint_scale, local.samples, prior.hint_scale, prior.samples
                ),
            )

    def observe(
        self,
        experiment: str,
        params: Mapping[str, Any],
        duration: float,
        *,
        alpha: float = EWMA_ALPHA,
    ) -> None:
        """Fold one freshly landed duration into the fitted statistics (EWMA).

        The exponential weighting makes recent completions dominate both
        stale history and imported priors, which is what lets a drain whose
        ``cost_hint`` calibration is off by orders of magnitude converge
        within the first few completions.
        """
        costs = self.per_experiment.get(experiment)
        hint = _spec_hint(experiment, params)
        scale_sample = duration / hint if hint is not None and hint > 0 else None
        if costs is None or costs.samples <= 0:
            self.per_experiment[experiment] = ExperimentCosts(
                samples=1, mean_duration=duration, hint_scale=scale_sample
            )
            return
        mean_duration = (
            duration
            if costs.mean_duration is None
            else (1.0 - alpha) * costs.mean_duration + alpha * duration
        )
        if scale_sample is None:
            hint_scale = costs.hint_scale
        elif costs.hint_scale is None:
            hint_scale = scale_sample
        else:
            hint_scale = (1.0 - alpha) * costs.hint_scale + alpha * scale_sample
        self.per_experiment[experiment] = ExperimentCosts(
            samples=costs.samples + 1,
            mean_duration=mean_duration,
            hint_scale=hint_scale,
        )

    def refit(
        self,
        store: "StoreProtocol",
        experiments: Sequence[str] | None = None,
        *,
        since: tuple[float, int] | None = None,
        alpha: float = EWMA_ALPHA,
    ) -> tuple[int, tuple[float, int]]:
        """Incrementally consume durations that landed after ``since``.

        Feeds every completion past the ``since`` watermark (oldest first)
        through :meth:`observe` and returns ``(consumed, watermark)``.  The
        watermark is a ``(finished_at, row_id)`` pair — the id tiebreak
        means equal timestamps from a coarse clock cannot drop a sample —
        and ``None`` means "from the beginning"; pass the returned value
        back as the next call's ``since`` so each sample is counted exactly
        once.
        """
        consumed = 0
        watermark = since if since is not None else (0.0, 0)
        for experiment, params, duration, finished_at, row_id in store.duration_samples(
            experiments, since=since
        ):
            self.observe(experiment, params, duration, alpha=alpha)
            consumed += 1
            watermark = max(watermark, (finished_at, row_id))
        return consumed, watermark

    def to_priors(self) -> dict[str, dict[str, Any]]:
        """The fitted statistics as a JSON-able priors mapping."""
        return {
            experiment: {
                "samples": costs.samples,
                "mean_duration": costs.mean_duration,
                "hint_scale": costs.hint_scale,
            }
            for experiment, costs in sorted(self.per_experiment.items())
            if costs.samples > 0
        }

    @classmethod
    def from_priors(cls, priors: Mapping[str, Mapping[str, Any]]) -> "CostModel":
        """A model backed purely by imported priors (no local history yet)."""
        model = cls()
        model.merge_priors(priors)
        return model

    def estimate(self, experiment: str, params: Mapping[str, Any]) -> float:
        """Expected duration (seconds, or hint units without history) of one cell."""
        costs = self.per_experiment.get(experiment)
        hint = _spec_hint(experiment, params)
        if costs is not None:
            if hint is not None and costs.hint_scale is not None:
                return max(costs.hint_scale * hint, 0.0)
            if costs.mean_duration is not None:
                return costs.mean_duration
        if hint is not None:
            return max(float(hint), 0.0)
        return DEFAULT_COST


def _blend(
    local: float | None, local_weight: int, prior: float | None, prior_weight: int
) -> float | None:
    """Sample-count-weighted average; either side may be missing."""
    if local is None:
        return float(prior) if prior is not None else None
    if prior is None:
        return float(local)
    total = local_weight + prior_weight
    if total <= 0:
        return float(local)
    return (local * local_weight + prior * prior_weight) / total


def save_priors(model: CostModel, path: str | os.PathLike[str]) -> int:
    """Write the model's per-experiment statistics as a priors JSON file.

    The format (versioned; also the shape
    :meth:`~repro.orchestration.store.ExperimentStore.save_cost_priors`
    accepts) ships fitted scales *across stores*::

        {"version": 1,
         "experiments": {"e3": {"samples": 12,
                                "mean_duration": 0.84,
                                "hint_scale": 0.0041}}}

    Returns how many experiments were written.
    """
    experiments = model.to_priors()
    payload = {"version": PRIORS_VERSION, "experiments": experiments}
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return len(experiments)


def load_priors(path: str | os.PathLike[str]) -> CostModel:
    """Load a priors JSON file written by :func:`save_priors`."""
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"cannot read priors file {path}: {exc}") from exc
    if not isinstance(payload, dict) or "experiments" not in payload:
        raise ValueError(f"{path} is not a priors file (no 'experiments' key)")
    version = payload.get("version")
    if version != PRIORS_VERSION:
        raise ValueError(
            f"{path} has priors version {version!r}; this build reads {PRIORS_VERSION}"
        )
    experiments = payload["experiments"]
    if not isinstance(experiments, dict):
        raise ValueError(f"{path}: 'experiments' must be an object, got {type(experiments).__name__}")
    for name, stats in experiments.items():
        if not isinstance(stats, dict):
            raise ValueError(f"{path}: priors for {name!r} must be an object")
        if not isinstance(stats.get("samples", 0), (int, float)):
            raise ValueError(f"{path}: priors for {name!r} have a non-numeric 'samples'")
        for field in ("mean_duration", "hint_scale"):
            value = stats.get(field)
            if value is not None and not isinstance(value, (int, float)):
                raise ValueError(f"{path}: priors for {name!r} have a non-numeric {field!r}")
    return CostModel.from_priors(experiments)


def _spec_hint(experiment: str, params: Mapping[str, Any]) -> float | None:
    """The grid-declared relative cost of one cell, when the spec has one."""
    from . import registry  # local import: registry pulls in the grids lazily

    try:
        spec = registry.get_spec(experiment)
    except KeyError:
        return None  # rows of retired/ad-hoc experiments still schedule
    if spec.cost_hint is None:
        return None
    try:
        return float(spec.cost_hint(dict(params)))
    except Exception:
        return None  # a broken hint must never block scheduling


def plan_priorities(
    store: "StoreProtocol",
    experiments: Sequence[str] | None = None,
    *,
    model: CostModel | None = None,
) -> dict[str, Any]:
    """Write cost-model priorities onto every pending row (longest first).

    Returns a summary: rows updated and the per-experiment estimate totals
    (used by ``repro orch plan``).  Rows of the ``prereq`` pseudo-experiment
    are deliberately skipped: their priority is their own estimate *plus*
    the summed estimates of everything they gate
    (:func:`~repro.orchestration.planner.apply_gate_boosts`), and writing
    the bare estimate here — as a naive ``plan_priorities(store)`` over
    ``store.experiments()`` used to do — would silently wipe that boost and
    drain dependents behind ordinary cells.
    """
    if model is None:
        model = CostModel.fit(store, None)  # all history, even other experiments
    entries, totals = priority_entries(store, experiments, model)
    updated = store.set_schedule(entries)
    return {"updated": updated, "totals": totals}


def priority_entries(
    store: "StoreProtocol",
    experiments: Sequence[str] | None,
    model: CostModel,
) -> tuple[list[tuple[str, str, float, float | None]], dict[str, float]]:
    """The ``set_schedule`` entries :func:`plan_priorities` would write.

    Split out so :func:`repro.orchestration.planner.replan` can combine them
    with the prerequisite gate boosts into a *single* ``set_schedule``
    transaction — concurrent claimers then never observe a half-re-ranked
    store.  ``prereq`` rows are excluded here (see :func:`plan_priorities`).
    """
    from .planner import PREREQ_EXPERIMENT  # deferred: planner imports us

    entries: list[tuple[str, str, float, float | None]] = []
    totals: dict[str, float] = {}
    names = experiments if experiments is not None else store.experiments()
    for experiment in names:
        if experiment == PREREQ_EXPERIMENT:
            continue
        for row in store.fetch_rows(experiment, status="pending"):
            estimate = model.estimate(experiment, row.params)
            entries.append(
                (experiment, params_hash(experiment, row.params), estimate, estimate)
            )
            totals[experiment] = totals.get(experiment, 0.0) + estimate
    return entries, totals


def claim_order(costs: Sequence[float], *, fifo_every: int = 0) -> list[int]:
    """The exact sequence of indices the store's claim loop would hand out.

    Highest cost first (ties broken by insertion index, like the SQL
    ``ORDER BY priority DESC, id``); with ``fifo_every > 0`` every
    ``fifo_every``-th claim takes the oldest remaining index instead.
    """
    remaining = list(range(len(costs)))
    order: list[int] = []
    claim_no = 0
    while remaining:
        claim_no += 1
        if fifo_every > 0 and claim_no % fifo_every == 0:
            pick = 0  # oldest remaining (list stays id-sorted)
        else:
            pick = max(
                range(len(remaining)),
                key=lambda slot: (costs[remaining[slot]], -remaining[slot]),
            )
        order.append(remaining.pop(pick))
    return order


def simulate_makespan(
    costs: Sequence[float],
    workers: int,
    *,
    order: str = "priority",
    fifo_every: int = 0,
) -> float:
    """Makespan of the claim loop on ``workers`` parallel workers.

    ``order="fifo"`` claims in insertion order (the pre-scheduling store);
    ``order="priority"`` claims through :func:`claim_order`.  Workers claim
    the next row the moment they free up — classic list scheduling, which is
    exactly what the claim-execute loop implements.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if order == "fifo":
        sequence: Sequence[int] = range(len(costs))
    elif order == "priority":
        sequence = claim_order(costs, fifo_every=fifo_every)
    else:
        raise ValueError(f"unknown order {order!r}; expected 'fifo' or 'priority'")
    free = [0.0] * workers
    heapq.heapify(free)
    makespan = 0.0
    for index in sequence:
        start = heapq.heappop(free)
        finish = start + float(costs[index])
        heapq.heappush(free, finish)
        makespan = max(makespan, finish)
    return makespan
