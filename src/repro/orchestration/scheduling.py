"""Cost-aware scheduling: turning FIFO claiming into a makespan minimiser.

The paper's experiment grids mix cells whose durations differ by orders of
magnitude (an exact MILP on 32 jobs versus an LPT run on 10).  With FIFO
claiming an expensive cell picked up late dangles off the end of the run and
dominates the wall time; claiming *longest-expected-first* is exactly the LPT
rule the paper studies, applied to the experiment run itself, and carries the
same Graham guarantee (makespan at most ``4/3 - 1/(3w)`` times optimal for
``w`` workers when the estimates are right).

Two pieces live here:

* :class:`CostModel` — per-experiment cost estimates fitted from the
  ``duration`` history persisted in the store, with the grid-declared
  ``cost_hint`` of the :class:`~repro.orchestration.registry.ExperimentSpec`
  as the shape prior (history rescales the hint; without history the raw
  hint is used; without either, a constant).  Estimates are written to the
  ``priority`` / ``cost_estimate`` columns, which
  :meth:`~repro.orchestration.store.ExperimentStore.claim_next` consumes.
* :func:`claim_order` / :func:`simulate_makespan` — a faithful in-memory
  model of the claim loop (priority order, FIFO interleave every
  ``fifo_every``-th claim, workers grabbing the next row as they free up),
  used by the planner's projections and by the scheduler test battery.

Starvation: pure longest-first claiming can starve a cheap cell behind an
arbitrarily long stream of expensive ones.  The store therefore takes the
*oldest* claimable row on every ``fifo_every``-th claim, which bounds any
cell's wait at ``position * fifo_every`` claims — the deterministic
bounded-wait property the tests pin down.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from .store import ExperimentStore, params_hash

__all__ = [
    "DEFAULT_COST",
    "CostModel",
    "ExperimentCosts",
    "claim_order",
    "plan_priorities",
    "simulate_makespan",
]

# Cost assigned when neither duration history nor a grid hint exists.  Its
# absolute value is irrelevant (priorities only order rows); all-equal
# estimates degrade claiming to FIFO, the pre-scheduling behaviour.
DEFAULT_COST = 1.0


@dataclass(frozen=True, slots=True)
class ExperimentCosts:
    """Fitted per-experiment statistics backing one :class:`CostModel`."""

    samples: int
    mean_duration: float | None  # mean observed cell duration (seconds)
    hint_scale: float | None  # seconds per hint unit, when hints cover history


class CostModel:
    """Expected cell durations from stored history plus grid cost hints."""

    def __init__(self, per_experiment: Mapping[str, ExperimentCosts] | None = None) -> None:
        self.per_experiment = dict(per_experiment or {})

    @classmethod
    def fit(
        cls, store: ExperimentStore, experiments: Sequence[str] | None = None
    ) -> "CostModel":
        """Fit from the ``duration`` column of completed rows.

        For every experiment with history the mean duration is recorded;
        when the spec declares a ``cost_hint`` the mean *per hint unit* is
        recorded too, so within-experiment variation (an E3 cell at n=128
        versus n=16) is captured instead of averaged away.
        """
        grouped: dict[str, list[tuple[dict[str, Any], float]]] = {}
        for experiment, params, duration in store.duration_history(experiments):
            grouped.setdefault(experiment, []).append((params, duration))
        fitted: dict[str, ExperimentCosts] = {}
        for experiment, samples in grouped.items():
            durations = [duration for _, duration in samples]
            mean_duration = sum(durations) / len(durations)
            hint_scale = None
            hints = [
                _spec_hint(experiment, params) for params, _ in samples
            ]
            if all(hint is not None and hint > 0 for hint in hints):
                mean_hint = sum(hints) / len(hints)  # type: ignore[arg-type]
                if mean_hint > 0:
                    hint_scale = mean_duration / mean_hint
            fitted[experiment] = ExperimentCosts(
                samples=len(samples),
                mean_duration=mean_duration,
                hint_scale=hint_scale,
            )
        return cls(fitted)

    def estimate(self, experiment: str, params: Mapping[str, Any]) -> float:
        """Expected duration (seconds, or hint units without history) of one cell."""
        costs = self.per_experiment.get(experiment)
        hint = _spec_hint(experiment, params)
        if costs is not None:
            if hint is not None and costs.hint_scale is not None:
                return max(costs.hint_scale * hint, 0.0)
            if costs.mean_duration is not None:
                return costs.mean_duration
        if hint is not None:
            return max(float(hint), 0.0)
        return DEFAULT_COST


def _spec_hint(experiment: str, params: Mapping[str, Any]) -> float | None:
    """The grid-declared relative cost of one cell, when the spec has one."""
    from . import registry  # local import: registry pulls in the grids lazily

    try:
        spec = registry.get_spec(experiment)
    except KeyError:
        return None  # rows of retired/ad-hoc experiments still schedule
    if spec.cost_hint is None:
        return None
    try:
        return float(spec.cost_hint(dict(params)))
    except Exception:
        return None  # a broken hint must never block scheduling


def plan_priorities(
    store: ExperimentStore,
    experiments: Sequence[str] | None = None,
    *,
    model: CostModel | None = None,
) -> dict[str, Any]:
    """Write cost-model priorities onto every pending row (longest first).

    Returns a summary: rows updated and the per-experiment estimate totals
    (used by ``repro orch plan``).  Prerequisite rows get an extra gate
    boost from the planner on top of this pass.
    """
    if model is None:
        model = CostModel.fit(store, None)  # all history, even other experiments
    entries: list[tuple[str, str, float, float | None]] = []
    totals: dict[str, float] = {}
    names = experiments if experiments is not None else store.experiments()
    for experiment in names:
        for row in store.fetch_rows(experiment, status="pending"):
            estimate = model.estimate(experiment, row.params)
            entries.append(
                (experiment, params_hash(experiment, row.params), estimate, estimate)
            )
            totals[experiment] = totals.get(experiment, 0.0) + estimate
    updated = store.set_schedule(entries)
    return {"updated": updated, "totals": totals}


def claim_order(costs: Sequence[float], *, fifo_every: int = 0) -> list[int]:
    """The exact sequence of indices the store's claim loop would hand out.

    Highest cost first (ties broken by insertion index, like the SQL
    ``ORDER BY priority DESC, id``); with ``fifo_every > 0`` every
    ``fifo_every``-th claim takes the oldest remaining index instead.
    """
    remaining = list(range(len(costs)))
    order: list[int] = []
    claim_no = 0
    while remaining:
        claim_no += 1
        if fifo_every > 0 and claim_no % fifo_every == 0:
            pick = 0  # oldest remaining (list stays id-sorted)
        else:
            pick = max(
                range(len(remaining)),
                key=lambda slot: (costs[remaining[slot]], -remaining[slot]),
            )
        order.append(remaining.pop(pick))
    return order


def simulate_makespan(
    costs: Sequence[float],
    workers: int,
    *,
    order: str = "priority",
    fifo_every: int = 0,
) -> float:
    """Makespan of the claim loop on ``workers`` parallel workers.

    ``order="fifo"`` claims in insertion order (the pre-scheduling store);
    ``order="priority"`` claims through :func:`claim_order`.  Workers claim
    the next row the moment they free up — classic list scheduling, which is
    exactly what the claim-execute loop implements.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if order == "fifo":
        sequence: Sequence[int] = range(len(costs))
    elif order == "priority":
        sequence = claim_order(costs, fifo_every=fifo_every)
    else:
        raise ValueError(f"unknown order {order!r}; expected 'fifo' or 'priority'")
    free = [0.0] * workers
    heapq.heapify(free)
    makespan = 0.0
    for index in sequence:
        start = heapq.heappop(free)
        finish = start + float(costs[index])
        heapq.heappush(free, finish)
        makespan = max(makespan, finish)
    return makespan
