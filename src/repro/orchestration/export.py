"""Pull completed store rows back into tables, CSV and LaTeX.

The export path reuses the exact same ``reduce_rows`` aggregation as the
inline drivers, so a table exported from an orchestrated (parallel, resumed,
cached) run is identical to the table the classic
``repro.experiments.drivers`` functions produce.
"""

from __future__ import annotations

import math
import os
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping

from ..experiments.tables import ExperimentTable
from . import registry
from .store import params_hash

if TYPE_CHECKING:  # the extracted store surface; local and remote stores both satisfy it
    from ..distributed.protocol import StoreProtocol

__all__ = [
    "table_from_store",
    "render_table",
    "to_latex",
    "export_experiment",
    "aggregate_service_telemetry",
    "aggregate_solver_telemetry",
    "format_service_telemetry",
    "format_solver_telemetry",
    "replan_trend",
    "service_table",
    "FORMATS",
]

FORMATS = ("text", "markdown", "csv", "latex")

_LATEX_SPECIALS = {
    "&": r"\&",
    "%": r"\%",
    "$": r"\$",
    "#": r"\#",
    "_": r"\_",
    "{": r"\{",
    "}": r"\}",
    "~": r"\textasciitilde{}",
    "^": r"\textasciicircum{}",
    "\\": r"\textbackslash{}",
}


def _latex_escape(text: str) -> str:
    return "".join(_LATEX_SPECIALS.get(char, char) for char in text)


def _latex_cell(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if value is None:
        return "--"
    if isinstance(value, float):
        if value != value:  # NaN
            return "--"
        return f"{value:.4g}"
    return _latex_escape(str(value))


def to_latex(table: ExperimentTable) -> str:
    """Render a table as a standalone LaTeX ``table`` environment."""
    columns = table.columns
    lines = [
        r"\begin{table}[ht]",
        r"\centering",
        rf"\caption{{{_latex_escape(f'{table.experiment_id}: {table.title}')}}}",
        r"\begin{tabular}{" + "l" * len(columns) + "}",
        r"\toprule",
        " & ".join(_latex_escape(str(column)) for column in columns) + r" \\",
        r"\midrule",
    ]
    for row in table.rows:
        lines.append(" & ".join(_latex_cell(row.get(column)) for column in columns) + r" \\")
    lines.append(r"\bottomrule")
    lines.append(r"\end{tabular}")
    for note in table.notes:
        lines.append(rf"\par\small {_latex_escape(note)}")
    lines.append(r"\end{table}")
    return "\n".join(lines)


def aggregate_solver_telemetry(done_rows: list[Any]) -> dict[str, Any] | None:
    """Sum the per-cell ``_solver_telemetry`` payloads of completed rows.

    The runner attaches a solver-service stats delta (solve count, wall
    time, the queue-wait/solve/wire time split, backend-fingerprint and
    serving-endpoint histograms) to every completed cell; this rolls them
    up for the export note and ``orch status``.  Returns ``None`` when no
    row carries telemetry.
    """
    totals: dict[str, Any] = {
        "solves": 0,
        "pooled_solves": 0,
        "wall_time": 0.0,
        "queue_wait_s": 0.0,
        "solve_s": 0.0,
        "wire_s": 0.0,
        "backends": {},
        "endpoints": {},
    }
    for row in done_rows:
        payload = (row.result or {}).get("_solver_telemetry")
        if not isinstance(payload, dict):
            continue
        totals["solves"] += int(payload.get("solves", 0))
        totals["pooled_solves"] += int(payload.get("pooled_solves", 0))
        for key in ("wall_time", "queue_wait_s", "solve_s", "wire_s"):
            totals[key] += float(payload.get(key, 0.0))
        for histogram in ("backends", "endpoints"):
            for name, count in (payload.get(histogram) or {}).items():
                totals[histogram][name] = totals[histogram].get(name, 0) + int(count)
    return totals if totals["solves"] else None


def format_solver_telemetry(totals: dict[str, Any]) -> str:
    """One-line rollup of :func:`aggregate_solver_telemetry` totals."""
    backend_text = ", ".join(
        f"{fingerprint} x{count}"
        for fingerprint, count in sorted(totals["backends"].items())
    )
    text = (
        f"solver telemetry: {totals['solves']} MILP solves "
        f"({totals['pooled_solves']} pooled), "
        f"{totals['wall_time']:.2f}s solver wall time"
    )
    # The split only exists for pooled/fabric solves; a purely inline run
    # would print an all-zero breakdown nobody asked for.
    if totals["queue_wait_s"] or totals["wire_s"]:
        text += (
            f" (queue {totals['queue_wait_s']:.2f}s"
            f" + solve {totals['solve_s']:.2f}s"
            f" + wire {totals['wire_s']:.2f}s)"
        )
    text += f"; backends: {backend_text}"
    if totals["endpoints"]:
        endpoint_text = ", ".join(
            f"{endpoint} x{count}"
            for endpoint, count in sorted(totals["endpoints"].items())
        )
        text += f"; endpoints: {endpoint_text}"
    return text


def _solver_telemetry_note(done_rows: list[Any]) -> str | None:
    totals = aggregate_solver_telemetry(done_rows)
    return format_solver_telemetry(totals) if totals else None


def aggregate_service_telemetry(
    done_rows: list[Any], tail: Mapping[str, int] | None = None
) -> dict[str, int] | None:
    """Sum the per-request ``_service_telemetry`` deltas of completed rows.

    The scheduling service (:mod:`repro.service`) flushes its counter
    deltas — requests seen, admitted, rejected at admission, served from
    cache, actually solved — into each journal row it completes, the same
    per-row-delta convention the runner uses for ``_solver_telemetry``, so
    summing over done rows reconstructs the service totals from the store
    file alone.  ``tail`` is the journaled remainder for counters that never
    reach a completed row (rejections, replays, retries) — pass the store's
    ``service_telemetry_tail()`` so restarts don't silently zero them.
    Returns ``None`` when no row carries telemetry and the tail is empty.
    """
    totals = {"requests": 0, "admitted": 0, "rejected": 0, "cache_hits": 0, "solves": 0}
    seen = False
    for row in done_rows:
        # Literal key (not imported from repro.service): export must render
        # stores written by any service version without importing solvers.
        payload = (row.result or {}).get("_service_telemetry")
        if not isinstance(payload, dict):
            continue
        seen = True
        for key in totals:
            totals[key] += int(payload.get(key, 0))
    for key, count in (tail or {}).items():
        if key in totals and count:
            seen = True
            totals[key] += int(count)
    return totals if seen else None


def format_service_telemetry(totals: dict[str, int]) -> str:
    """One-line rollup of :func:`aggregate_service_telemetry` totals."""
    return (
        f"service telemetry: {totals['requests']} requests "
        f"({totals['admitted']} admitted, {totals['rejected']} rejected), "
        f"{totals['cache_hits']} cache hits, {totals['solves']} solves"
    )


def service_table(store: "StoreProtocol") -> ExperimentTable:
    """Per-solver rollup of the scheduling service's ``service`` journal.

    The ``service`` namespace is ad-hoc request history, not a registered
    experiment grid, so it gets its own table: one row per solver with
    request/error counts and duration statistics, plus the telemetry note.
    """
    rows = store.fetch_rows("service")
    table = ExperimentTable("service", "scheduling service request journal")
    per_solver: dict[str, dict[str, Any]] = {}
    for row in rows:
        solver = str((row.params or {}).get("solver", "?"))
        bucket = per_solver.setdefault(
            solver, {"requests": 0, "done": 0, "errors": 0, "durations": []}
        )
        bucket["requests"] += 1
        if row.status == "done":
            bucket["done"] += 1
            if row.duration is not None:
                bucket["durations"].append(float(row.duration))
        elif row.status == "error":
            bucket["errors"] += 1
    for solver in sorted(per_solver):
        bucket = per_solver[solver]
        durations = bucket["durations"]
        table.add_row(
            {
                "solver": solver,
                "requests": bucket["requests"],
                "done": bucket["done"],
                "errors": bucket["errors"],
                "mean_duration_s": (sum(durations) / len(durations)) if durations else None,
                "max_duration_s": max(durations) if durations else None,
            }
        )
    done_rows = [row for row in rows if row.status == "done"]
    # Older stores (or plain dict-shaped fakes) may predate the journaled
    # tail; render them without it rather than failing the export.
    tail_getter = getattr(store, "service_telemetry_tail", None)
    tail = tail_getter() if callable(tail_getter) else None
    totals = aggregate_service_telemetry(done_rows, tail)
    if totals:
        table.add_note(format_service_telemetry(totals))
    if not rows:
        table.add_note("no service requests journaled in this store")
    return table


def _scheduling_note(done_rows: list[Any]) -> str | None:
    """Roll scheduler bookkeeping up into one table note.

    Reports how well the cost model *ordered* the cells — the fraction of
    cell pairs where the estimate and the measured duration agree on which
    is bigger.  Rank agreement is unit-free, so it stays meaningful while
    estimates are still in hint units (before any duration history exists).
    Also counts cells gated on hoisted prerequisites.
    """
    estimated = [
        (row.cost_estimate, row.duration)
        for row in done_rows
        if row.cost_estimate is not None and row.duration is not None
    ]
    gated = sum(1 for row in done_rows if row.depends_on)
    if not estimated and not gated:
        return None
    parts: list[str] = []
    if estimated:
        parts.append(f"{len(estimated)}/{len(done_rows)} cells cost-estimated")
        concordant = discordant = 0
        for index, (est_a, dur_a) in enumerate(estimated):
            for est_b, dur_b in estimated[index + 1 :]:
                product = (est_a - est_b) * (dur_a - dur_b)
                if product > 0:
                    concordant += 1
                elif product < 0:
                    discordant += 1
        if concordant + discordant:
            agreement = concordant / (concordant + discordant)
            parts.append(f"claim-order agreement {agreement:.0%}")
    if gated:
        parts.append(f"{gated} cells gated on hoisted prerequisites")
    return "scheduling: " + "; ".join(parts)


def replan_trend(done_rows: list[Any]) -> list[dict[str, Any]]:
    """Cost-model accuracy per re-plan epoch, one point per epoch.

    Every claimed row carries the re-plan epoch it was claimed under; the
    geometric mean of ``cost_estimate / duration`` per epoch shows the
    online refit converging toward 1x (epoch 0 estimates are raw hint
    units, so their ratio is usually off by orders of magnitude — that
    starting point *is* the story).  Each point is
    ``{"epoch": int, "accuracy": float, "n": int}``; empty when no row
    carries a usable estimate/duration pair.  Shared by the export note
    and the dashboard's convergence sparkline.
    """
    by_epoch: dict[int, list[float]] = {}
    for row in done_rows:
        if (
            row.cost_estimate is not None
            and row.cost_estimate > 0
            and row.duration is not None
            and row.duration > 0
        ):
            by_epoch.setdefault(row.epoch, []).append(row.cost_estimate / row.duration)
    trend = []
    for epoch in sorted(by_epoch):
        ratios = by_epoch[epoch]
        gmean = math.exp(sum(math.log(ratio) for ratio in ratios) / len(ratios))
        trend.append({"epoch": epoch, "accuracy": gmean, "n": len(ratios)})
    return trend


def _replan_trend_note(done_rows: list[Any]) -> str | None:
    """:func:`replan_trend` rendered as a one-line convergence note.

    Emitted only when re-planning actually fired, i.e. some row was
    claimed under an epoch > 0.
    """
    trend = replan_trend(done_rows)
    if not trend or max(point["epoch"] for point in trend) == 0:
        return None
    parts = [
        f"epoch {point['epoch']}: {point['accuracy']:.3g}x (n={point['n']})"
        for point in trend
    ]
    return (
        "cost-model accuracy by re-plan epoch (estimate/actual, geometric "
        "mean): " + " -> ".join(parts)
    )


def table_from_store(
    store: "StoreProtocol",
    experiment: str,
    *,
    quick: bool = True,
    seed: int = 0,
    require_complete: bool = False,
) -> ExperimentTable:
    """Assemble the experiment's table from the store, scoped to one grid.

    The table is built against the *definition* of the grid (``quick`` and
    ``seed`` must match the ``repro orch run`` invocation): only rows whose
    content hash belongs to that grid are used, so quick- and full-variant
    rows coexisting in one store never contaminate each other's aggregates,
    and cells that were never populated still count as missing.
    """
    spec = registry.get_spec(experiment)
    expected = registry.expand_grid(spec, quick=quick, seed=seed)
    grid_order = {
        params_hash(spec.name, params): index for index, params in enumerate(expected)
    }
    rows = [
        row
        for row in store.fetch_rows(spec.name)
        if params_hash(spec.name, row.params) in grid_order
    ]
    rows.sort(key=lambda row: grid_order[params_hash(spec.name, row.params)])
    done = [row for row in rows if row.status == "done" and row.result]
    missing = len(expected) - len(done)
    variant = "quick" if quick else "full"
    if require_complete and missing:
        raise RuntimeError(
            f"experiment {spec.name!r} has {missing} unfinished cells of the "
            f"{variant} grid (seed={seed}); run `repro orch run` to completion first"
        )
    table = registry.assemble_table(spec, [(row.params, row.result) for row in done])
    telemetry_note = _solver_telemetry_note(done)
    if telemetry_note:
        table.add_note(telemetry_note)
    scheduling_note = _scheduling_note(done)
    if scheduling_note:
        table.add_note(scheduling_note)
    trend_note = _replan_trend_note(done)
    if trend_note:
        table.add_note(trend_note)
    if missing:
        # Never let a partially-run grid masquerade as a finished experiment:
        # reduced columns (means over seeds) would silently cover a subset.
        statuses = sorted({row.status for row in rows if row.status != "done"})
        table.add_note(
            f"INCOMPLETE: {len(done)}/{len(expected)} cells of the {variant} grid "
            f"(seed={seed}) are done"
            + (f"; statuses present: {statuses}" if statuses else "; rest never populated")
            + " — aggregates cover only the completed cells"
        )
    return table


def render_table(table: ExperimentTable, fmt: str) -> str:
    """Render a table in one of :data:`FORMATS`."""
    if fmt == "text":
        return table.to_text()
    if fmt == "markdown":
        return table.to_markdown()
    if fmt == "csv":
        return table.to_csv()
    if fmt == "latex":
        return to_latex(table)
    raise ValueError(f"unknown export format {fmt!r}; available: {FORMATS}")


_EXTENSIONS = {"text": ".txt", "markdown": ".md", "csv": ".csv", "latex": ".tex"}


def export_experiment(
    store: "StoreProtocol",
    experiment: str,
    fmt: str = "text",
    *,
    quick: bool = True,
    seed: int = 0,
    output_dir: str | os.PathLike[str] | None = None,
) -> str:
    """Render one experiment; optionally also write it under ``output_dir``."""
    table = table_from_store(store, experiment, quick=quick, seed=seed)
    rendered = render_table(table, fmt)
    if output_dir is not None:
        directory = Path(output_dir)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{registry.get_spec(experiment).name}{_EXTENSIONS[fmt]}"
        path.write_text(rendered + ("\n" if not rendered.endswith("\n") else ""))
    return rendered
