"""Parallel, crash-safe execution of store rows.

The runner is deliberately dumb: *all* coordination lives in the store's
atomic claim semantics.  Each worker process opens its own
:class:`~repro.orchestration.store.ExperimentStore`, activates the persistent
result cache against the same file, and loops ``claim → execute → write
back`` until no pending rows remain.  Because claims are status-guarded row
updates, any number of workers on one host (including workers of *other*
runner invocations) cooperate safely.  Do not share the store file across
machines: SQLite WAL mode is unsafe on network filesystems.

Crash safety: a worker killed mid-cell leaves its row ``running``.  The next
:func:`run_pool` invocation calls ``reclaim_stale`` before spawning workers,
so interrupted rows are re-executed while ``done`` rows are never touched —
that is the resume path.

Distributed fleets: :func:`run_worker` and :func:`run_workers` take a
``tcp://host:port`` target in place of a store path — the worker then
opens a :class:`repro.distributed.RemoteStore` against a ``repro orch
serve`` process instead of the SQLite file, and the whole
claim/complete/re-plan loop (including the persistent result cache, which
rides the same connection) runs unchanged across machines.
:func:`run_workers` is the attach-and-drain entry point behind ``repro
orch worker --connect``: no grid expansion, no planning — just reclaim +
drain against a store that was seeded elsewhere.  :func:`run_pool` is the
seed-plan-drain pipeline and stays local-only (it rejects remote targets):
grids are expanded and planned once, where the file lives.

Solver servers: with ``solver_servers > 0`` each worker process installs a
shared :class:`repro.solver.SolverPool` of that many subprocess solver
servers around its claim–execute loop, so the MILP solves inside a cell can
overlap instead of blocking the worker (``repro orch run --solver-servers
N``).  With ``solver_connect`` the worker instead routes its MILP solves
over a :class:`repro.solver.SolverFabric` of remote solver endpoints
(``repro orch solver-serve`` processes on any machines; ``--solver-connect
HOST:PORT[,HOST:PORT...]``) — least-loaded routing, content-hash result
memoisation, and exactly-once work-stealing around endpoint failures; a
nonzero ``solver_servers`` then contributes a local pool as one more
endpoint.  The per-cell solver telemetry delta (solve count, wall time,
queue-wait/solve/wire split, backend fingerprints, serving endpoints) is
attached to every result under ``_solver_telemetry`` and surfaced by
``repro orch export`` and ``repro orch status``.

Scheduling: ``run_pool`` plans before it drains (``plan=True``): the
:mod:`~repro.orchestration.planner` hoists shared prerequisites and the
:mod:`~repro.orchestration.scheduling` cost model assigns claim priorities,
so workers execute longest-expected cells first instead of FIFO.  A worker
whose claim comes back empty while rows are still *blocked* on
prerequisites does not exit: it heals stale dependency counters, cascades
prerequisite failures, reclaims dependency-blocking rows abandoned by dead
workers (``stale_after``), and polls until the blocked rows resolve or no
live path to them remains.

Online re-planning (``replan_every > 0``, the default): the scheduling
decision is no longer spent once per run.  After every landed completion a
worker offers the store a re-plan round
(:meth:`~repro.orchestration.store.ExperimentStore.try_begin_replan`); the
epoch protocol guarantees exactly one winner per ``replan_every``
completions, and the winner EWMA-refits its cost model from the durations
that streamed in since its last refit, then re-ranks every still-pending
row (prerequisite gate boosts are recomputed, not wiped).  A grid whose
``cost_hint`` calibration is off by orders of magnitude therefore converges
to near-LPT claim order within the first few completions instead of never.
"""

from __future__ import annotations

import os
import time
import traceback
import uuid
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Sequence

from ..observability import events, metrics
from ..solver import get_solver_service, solver_service_scope
from . import registry
from .cache import cache_scope
from .planner import PREREQ_EXPERIMENT, replan
from .scheduling import CostModel
from .store import ExperimentStore

if TYPE_CHECKING:
    from ..distributed.protocol import StoreProtocol

__all__ = ["RunReport", "populate", "run_pool", "run_worker", "run_workers"]

SOLVER_TELEMETRY_KEY = "_solver_telemetry"

# How long an idle worker sleeps between polls while rows it could run are
# still blocked on an in-flight prerequisite of another worker.
BLOCKED_POLL_SECONDS = 0.05
# Remote workers poll blocked rows more gently: one poll cycle is several
# RPCs that all serialize through the store server's single dispatch lock,
# and a large fleet spinning at the local cadence would starve the worker
# actually executing the prerequisite of claim/complete latency.
REMOTE_BLOCKED_POLL_SECONDS = 0.5

# Default re-plan cadence: one priority refresh per this many landed
# completions.  Small enough that a badly calibrated grid converges within
# its first few cells, large enough that re-ranking (a handful of SELECTs
# plus one bulk UPDATE) stays negligible next to cell execution.
DEFAULT_REPLAN_EVERY = 5


@dataclass(slots=True)
class RunReport:
    """Aggregate outcome of one runner invocation."""

    claimed: int = 0
    done: int = 0
    errors: int = 0
    reclaimed: int = 0
    populated: int = 0
    workers: int = 1
    wall_time: float = 0.0
    worker_tags: list[str] = field(default_factory=list)
    # Planner summary (zero when planning is disabled or nothing to hoist).
    hoisted: int = 0
    dependency_edges: int = 0
    # Re-plan rounds this invocation's workers won (0 with --no-replan).
    replans: int = 0

    def merge(self, other: "RunReport") -> None:
        self.claimed += other.claimed
        self.done += other.done
        self.errors += other.errors
        self.replans += other.replans
        self.worker_tags.extend(other.worker_tags)


def _open_store(
    target: "str | os.PathLike[str]",
    *,
    fifo_every: int | None = None,
    token: str | None = None,
) -> "StoreProtocol":
    """A store for a target: local path or ``tcp://host:port`` server address."""
    # Deferred import: repro.distributed imports this package's store module.
    from ..distributed import open_store

    return open_store(target, fifo_every=fifo_every, token=token)


def _is_remote(target: "str | os.PathLike[str]") -> bool:
    from ..distributed import is_remote_target

    return is_remote_target(target)


def populate(
    store: ExperimentStore,
    experiments: Sequence[str],
    *,
    quick: bool = True,
    seed: int = 0,
) -> int:
    """Expand the grids of the named experiments into the store (idempotent)."""
    added = 0
    for name in experiments:
        spec = registry.get_spec(name)
        grid = registry.expand_grid(spec, quick=quick, seed=seed)
        added += store.add_rows(spec.name, grid)
    return added


def _blocked_rows_can_progress(
    store: ExperimentStore,
    experiments: Sequence[str] | None,
    *,
    stale_after: float,
) -> bool:
    """Housekeeping for dependency-blocked rows; True if claiming may retry.

    Called when a claim came back empty but blocked pending rows remain.
    In order: heal stale ``deps_pending`` counters, cascade prerequisite
    failures onto their dependents, reclaim blocking rows whose worker died
    (``stale_after``-old ``running`` claims), and finally decide whether any
    unfinished prerequisite can still complete — if every blocking row is
    unreachable (deleted, or pending outside this runner's experiment
    filter), waiting would deadlock and the worker gives up instead.
    """
    if store.sync_dependencies(experiments):
        return True
    if store.fail_blocked_on_error(experiments):
        return True
    blocking = store.blocking_dependencies(experiments)
    if not blocking:
        return False
    running_experiments = sorted(
        {dep["experiment"] for dep in blocking if dep["status"] == "running"}
    )
    if running_experiments:
        store.reclaim_stale(older_than=stale_after, experiments=running_experiments)
        return True
    for dep in blocking:
        if (
            dep["status"] == "pending"
            and dep["deps_pending"] == 0
            and (experiments is None or dep["experiment"] in experiments)
        ):
            # Genuinely claimable by this very loop (or a sibling): the
            # empty claim was a race against another worker's state change.
            # A pending dependency that is itself gated does NOT count —
            # a dependency cycle (or a chain whose root is gone) must break
            # the loop, not spin it at the poll interval forever.
            return True
    return False


def run_worker(
    db_path: str,
    experiments: Sequence[str] | None,
    worker_tag: str,
    *,
    use_cache: bool = True,
    solver_servers: int = 0,
    solver_connect: str | Sequence[str] | None = None,
    stale_after: float = 600.0,
    replan_every: int = 0,
    fifo_every: int | None = None,
    token: str | None = None,
) -> RunReport:
    """Claim-execute-writeback loop of a single worker (also used inline).

    ``db_path`` may be a local store path or a ``tcp://host:port`` server
    address — the loop is identical either way; against a server, the
    persistent result cache is the *server's* cache table, reached over the
    same connection as the claims (``token`` authenticates every request).

    ``solver_servers > 0`` installs a shared subprocess solver pool for the
    lifetime of the loop: every MILP solved by any cell this worker executes
    goes through the same pool of long-lived solver servers.
    ``stale_after`` bounds how long the loop waits on a dependency-blocking
    row claimed by a worker that may have died before reclaiming it.

    ``replan_every > 0`` turns on online re-planning: after each landed
    completion the worker offers the store a re-plan round, and when it wins
    the epoch it refits its cost model (EWMA over the durations completed
    since its previous refit, across *all* workers) and re-ranks the pending
    rows.  Each worker keeps its own model; only round winners write
    priorities, and a round has exactly one winner, so concurrent workers
    never interleave partial priority updates.  ``fifo_every`` overrides the
    store's bounded-wait interleave (``None`` keeps the store default).
    """
    report = RunReport(worker_tags=[worker_tag])
    # This worker's cost model, materialised lazily on its first re-plan
    # win: store priors seed it, then every win EWMA-consumes the durations
    # finished after `refit_watermark` (its last refit), so samples are
    # counted exactly once per worker regardless of who won other rounds.
    model: CostModel | None = None
    refit_watermark: tuple[float, int] | None = None
    remote = _is_remote(db_path)
    blocked_poll = REMOTE_BLOCKED_POLL_SECONDS if remote else BLOCKED_POLL_SECONDS
    store = _open_store(db_path, fifo_every=fifo_every, token=token)
    if not use_cache:
        cache_target = None
    elif remote:
        cache_target = store  # cache reads/writes ride the server connection
    else:
        cache_target = db_path
    # cache_scope (not activate_cache) so the inline workers=1 path does not
    # leave the process-global cache pointed at this store after returning;
    # a None target pins the persistent layer (and its env fallback) off, so
    # use_cache=False cannot be overridden by REPRO_CACHE_DB.
    with store, cache_scope(cache_target), solver_service_scope(
        solver_servers, solver_connect, token=token
    ) as solver_service:
        while True:
            claim_started = time.perf_counter()
            claimed = store.claim_next(worker_tag, experiments)
            metrics.observe(
                "runner.claim_latency_s", time.perf_counter() - claim_started
            )
            if claimed is None:
                if store.blocked_count(experiments) == 0:
                    break
                if not _blocked_rows_can_progress(
                    store, experiments, stale_after=stale_after
                ):
                    break
                time.sleep(blocked_poll)
                continue
            report.claimed += 1
            metrics.counter("runner.claims")
            # The claim's wire op id (None against a local store): stamping
            # the execution span with it is what chains client.call →
            # server.dispatch → worker.cell in the journaled trace.
            claim_op = getattr(store, "last_op", None)
            start = time.perf_counter()
            solver_before = solver_service.stats()
            try:
                result = registry.execute_cell(claimed.experiment, claimed.params)
            except Exception:
                duration = time.perf_counter() - start
                store.fail(
                    claimed.id,
                    traceback.format_exc(),
                    duration=duration,
                    worker=worker_tag,
                )
                report.errors += 1
                metrics.counter("runner.failures")
                events.emit(
                    "worker.cell",
                    op=claim_op,
                    actor=worker_tag,
                    duration=duration,
                    detail={
                        "experiment": claimed.experiment,
                        "row_id": claimed.id,
                        "error": True,
                    },
                )
            else:
                duration = time.perf_counter() - start
                delta = solver_service.stats_delta(solver_before)
                if delta["solves"]:
                    result = {**result, SOLVER_TELEMETRY_KEY: delta}
                store.complete(
                    claimed.id,
                    result,
                    duration=duration,
                    worker=worker_tag,
                )
                report.done += 1
                metrics.counter("runner.completes")
                metrics.observe("runner.cell_duration_s", duration)
                events.emit(
                    "worker.cell",
                    op=claim_op,
                    actor=worker_tag,
                    duration=duration,
                    detail={"experiment": claimed.experiment, "row_id": claimed.id},
                )
            # Journal this cell's spans (plus any client.call spans buffered
            # alongside them).  Best-effort by contract; against a pre-events
            # server the spans drop and are counted instead.
            events.flush(store)
            if replan_every > 0:
                round_no = store.try_begin_replan(replan_every)
                if round_no is not None:
                    if model is None:
                        model = CostModel.from_priors(store.load_cost_priors())
                    # Refit over every experiment's history, not just the
                    # claim scope: prereq rows and sibling runners' cells
                    # calibrate the same per-experiment scales.
                    _, refit_watermark = model.refit(store, since=refit_watermark)
                    summary = replan(
                        store,
                        model=model,
                        experiments=experiments,
                        round_no=round_no,
                    )
                    # The guarded write published the epoch atomically with
                    # the new priorities; a stale round (a newer winner
                    # superseded this one mid-refit) wrote nothing.
                    if not summary["stale"]:
                        report.replans += 1
                        metrics.counter("runner.replans")
    return report


def _claim_scope(store: Any, names: Sequence[str] | None) -> Sequence[str] | None:
    """Widen an experiment filter to include unfinished ``prereq`` rows.

    Workers must be able to claim the prerequisite rows their cells are
    gated on — including when no new planning happens, since edges already
    in the store still apply: stranding prereq rows outside the claim scope
    would leave gated cells pending forever while the drain exits 0.
    "running" counts too: an orphaned prereq claimed by a dead worker must
    fall inside the reclaim and claim scope or its dependents would wait on
    it forever.  ``names=None`` (claim everything) already covers prereqs.
    """
    if names is None or PREREQ_EXPERIMENT in names:
        return names
    prereq_counts = store.status_counts().get(PREREQ_EXPERIMENT, {})
    unfinished = prereq_counts.get("pending", 0) + prereq_counts.get("running", 0)
    return list(names) + [PREREQ_EXPERIMENT] if unfinished else names


def _drain(
    target: "str | os.PathLike[str]",
    claim_names: Sequence[str] | None,
    report: RunReport,
    *,
    use_cache: bool,
    solver_servers: int,
    solver_connect: str | Sequence[str] | None,
    stale_after: float,
    replan_every: int,
    fifo_every: int | None,
    token: str | None = None,
) -> None:
    """Run ``report.workers`` claim loops against ``target``, merging results.

    Worker tags must be unique across the whole fleet, not just this host:
    the store's late-writeback guard (``complete ... AND worker = ?``)
    would otherwise let a stalled worker on one machine clobber the claim
    of an identically-tagged worker on another after a stale reclaim.  A
    worker index + pid alone can collide across machines (and containers
    may even share hostnames), so each invocation adds a random fleet
    suffix.
    """
    fleet = f"{os.getpid()}.{uuid.uuid4().hex[:6]}"
    if report.workers == 1:
        report.merge(
            run_worker(
                target,
                claim_names,
                f"w0.{fleet}",
                use_cache=use_cache,
                solver_servers=solver_servers,
                solver_connect=solver_connect,
                stale_after=stale_after,
                replan_every=replan_every,
                fifo_every=fifo_every,
                token=token,
            )
        )
        return
    with ProcessPoolExecutor(max_workers=report.workers) as pool:
        futures = [
            pool.submit(
                run_worker,
                target,
                claim_names,
                f"w{i}.{fleet}",
                use_cache=use_cache,
                solver_servers=solver_servers,
                solver_connect=solver_connect,
                stale_after=stale_after,
                replan_every=replan_every,
                fifo_every=fifo_every,
                token=token,
            )
            for i in range(report.workers)
        ]
        for future in futures:
            report.merge(future.result())


def run_workers(
    target: "str | os.PathLike[str]",
    experiments: Sequence[str] | None = None,
    *,
    workers: int = 2,
    stale_after: float = 600.0,
    use_cache: bool = True,
    solver_servers: int = 0,
    solver_connect: str | Sequence[str] | None = None,
    replan_every: int = DEFAULT_REPLAN_EVERY,
    fifo_every: int | None = None,
    token: str | None = None,
) -> RunReport:
    """Attach to an existing store and drain its pending rows with workers.

    The fleet half of :func:`run_pool`, behind ``repro orch worker``: no
    grid expansion and no planning — the store was seeded and planned where
    the file lives (``repro orch run`` / ``repro orch plan``), and this
    invocation only contributes claim loops.  ``target`` is a local path
    or, for remote fleets, the ``tcp://host:port`` of a ``repro orch
    serve`` process.  Stale rows in scope are reclaimed first (the resume
    path after a worker machine dies), and online re-planning stays on by
    default: the store's priorities keep refitting as this fleet's
    durations land, exactly as in a local run.
    """
    start = time.perf_counter()
    names = [registry.get_spec(name).name for name in experiments] if experiments else None
    report = RunReport(workers=max(1, int(workers)))
    with _open_store(target, fifo_every=fifo_every, token=token) as store:
        claim_names = _claim_scope(store, names)
        report.reclaimed = store.reclaim_stale(
            older_than=stale_after, experiments=claim_names
        )
        pending = store.pending_count(claim_names)
    if pending > 0:
        _drain(
            target,
            claim_names,
            report,
            use_cache=use_cache,
            solver_servers=solver_servers,
            solver_connect=solver_connect,
            stale_after=stale_after,
            replan_every=replan_every,
            fifo_every=fifo_every,
            token=token,
        )
    report.wall_time = time.perf_counter() - start
    return report


def run_pool(
    db_path: str | os.PathLike[str],
    experiments: Sequence[str] | None = None,
    *,
    workers: int = 2,
    quick: bool = True,
    seed: int = 0,
    do_populate: bool | None = None,
    stale_after: float = 600.0,
    use_cache: bool = True,
    solver_servers: int = 0,
    solver_connect: str | Sequence[str] | None = None,
    solver_token: str | None = None,
    plan: bool = True,
    replan_every: int = DEFAULT_REPLAN_EVERY,
    fifo_every: int | None = None,
) -> RunReport:
    """Populate (optionally), plan, reclaim stale rows, then drain with workers.

    ``experiments=None`` drains every experiment already present in the
    store (grid expansion needs explicit names, so ``do_populate`` then
    defaults to off; it defaults to on when names are given).  Stale-row
    reclaim is scoped to the experiments being run, so this invocation never
    steals in-progress rows a concurrent runner was asked to handle.
    ``stale_after`` is the age in seconds beyond which a ``running`` row is
    considered orphaned by a dead worker and reclaimed; pass ``0`` to
    reclaim all running rows (safe when no other runner shares the file).
    ``solver_servers`` gives every worker its own pool of that many
    subprocess solver servers (0 = inline solves, the default).
    ``solver_connect`` routes every worker's MILP solves over a
    :class:`repro.solver.SolverFabric` of remote solver endpoints instead
    (``repro orch solver-serve`` processes, authenticated by
    ``solver_token``); combined with ``solver_servers`` each worker also
    contributes a local pool of that size as one more fabric endpoint.
    The store itself stays local either way.

    ``plan=True`` (the default, applied when explicit names are given) runs
    the dependency-aware planner before draining: shared prerequisites are
    hoisted into ``prereq`` rows the workers also claim, and cost-model
    priorities replace FIFO ordering.  ``plan=False`` restores the plain
    FIFO queue (existing priorities/edges in the store still apply).

    ``replan_every`` is the online re-planning cadence (completions per
    priority refresh, default :data:`DEFAULT_REPLAN_EVERY`; ``0`` — the CLI's
    ``--no-replan`` — freezes priorities at their initial plan).
    ``plan=False`` implies ``replan_every=0``: its contract is "no
    scheduling, priorities already in the store still apply", and a
    mid-drain re-rank would write brand-new ones.  ``fifo_every`` overrides
    the workers' bounded-wait FIFO interleave (``None`` keeps the store
    default).
    """
    from .planner import plan as plan_grids

    db_path = str(db_path)
    if _is_remote(db_path):
        # Passing a tcp:// target to Path() would silently create a local
        # "tcp:" directory and drain a brand-new empty store.
        raise ValueError(
            "run_pool seeds and plans a local store; attach to a served "
            "store with run_workers() / `repro orch worker --connect`"
        )
    start = time.perf_counter()
    names = [registry.get_spec(name).name for name in experiments] if experiments else None
    if do_populate is None:
        do_populate = names is not None
    report = RunReport(workers=max(1, int(workers)))
    claim_names = names
    if not plan:
        replan_every = 0
    store_kwargs = {} if fifo_every is None else {"fifo_every": fifo_every}
    with ExperimentStore(db_path, **store_kwargs) as store:
        if do_populate:
            if names is None:
                raise ValueError("populate requires an explicit experiment list")
            report.populated = populate(store, names, quick=quick, seed=seed)
        if plan and names is not None:
            plan_report = plan_grids(
                store,
                names,
                quick=quick,
                seed=seed,
                workers=report.workers,
                populate_rows=False,
                # Hoisted results travel via the persistent cache; without
                # it a prerequisite row would be dead weight.
                hoist=use_cache,
            )
            report.hoisted = len(plan_report.hoisted)
            report.dependency_edges = plan_report.edges
        # Unfinished prereq rows of *earlier* plans are picked up too —
        # finishing them only warms the cache their dependents are
        # waiting for (see _claim_scope).
        claim_names = _claim_scope(store, claim_names)
        report.reclaimed = store.reclaim_stale(
            older_than=stale_after, experiments=claim_names
        )
        pending = store.pending_count(claim_names)
    if pending > 0:
        _drain(
            db_path,
            claim_names,
            report,
            use_cache=use_cache,
            solver_servers=solver_servers,
            solver_connect=solver_connect,
            stale_after=stale_after,
            replan_every=replan_every,
            fifo_every=fifo_every,
            token=solver_token,
        )
    report.wall_time = time.perf_counter() - start
    return report
