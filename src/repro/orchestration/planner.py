"""Dependency-aware grid planning: hoist shared sub-solves, gate dependents.

E2, E4 and E10 all start a cell by computing the exact optimum of the cell's
instance — and several cells of one grid (all E4 eps values, all E10
variants) share the *same* instance, so a FIFO run either solves the same
exact MILP repeatedly (no cache) or serialises every sibling behind whichever
cell happens to reach it first (cache, but cold).  The planner makes the
sharing explicit:

1. Specs declare their expensive shared sub-solves via
   ``ExperimentSpec.prerequisites`` — a callable mapping cell params to
   :class:`PrereqCall` descriptions (instance + solver + backend, i.e.
   exactly the identity of a :func:`~repro.orchestration.cache.cached_solve`
   invocation).
2. :func:`plan` groups the calls of every pending cell by their content-hash
   cache key.  Keys needed by at least ``min_shared`` cells (and not already
   in the persistent cache) are *hoisted*: a dedicated row of the pseudo
   experiment ``prereq`` is inserted, and every dependent cell is gated on
   it with a ``depends_on`` edge — the store refuses to hand a gated cell to
   a worker until the prerequisite row is ``done``.
3. The prerequisite row's cell (:func:`~repro.orchestration.grids.cell_prereq`)
   routes the solve through ``cached_solve`` with the *same* key, so when
   the dependents run, their own ``cached_solve`` call is a guaranteed
   cache hit: each shared exact MILP is solved exactly once per store.

The planner also fits the :class:`~repro.orchestration.scheduling.CostModel`
and assigns priorities: ordinary cells get their cost estimate, prerequisite
rows get their own estimate *plus* the summed estimates of the cells they
gate (a prerequisite delays everything behind it, so it goes first).

Online re-planning (PR 4): :func:`replan` re-ranks the still-pending rows
under a refitted model mid-drain — :func:`apply_gate_boosts` recomputes the
prerequisite boosts from store state afterwards, so gate ordering survives
every refit.  The runner calls it each time it wins a re-plan epoch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

from ..core.instance import Instance
from ..core.result import SolverResult
from .cache import cache_key
from .scheduling import CostModel, priority_entries, simulate_makespan
from .store import params_hash

if TYPE_CHECKING:  # the extracted store surface; local and remote stores both satisfy it
    from ..distributed.protocol import StoreProtocol

__all__ = [
    "PREREQ_EXPERIMENT",
    "PrereqCall",
    "HoistedPrereq",
    "PlanReport",
    "apply_gate_boosts",
    "discover_prerequisites",
    "plan",
    "replan",
]

# Pseudo experiment holding hoisted prerequisite rows.  Registered in
# grids.py like any other spec (empty grid: rows are planner-inserted).
PREREQ_EXPERIMENT = "prereq"


@dataclass(frozen=True)
class PrereqCall:
    """One expensive sub-solve a cell will perform, in cache-key terms.

    ``compute`` re-runs the solve from scratch; the remaining fields must
    match the dependent cell's own ``cached_solve`` invocation exactly, or
    the hoisted result would land under a different key and help nobody.
    """

    instance: Instance
    solver: str
    compute: Callable[[], SolverResult]
    config: Mapping[str, Any] | None = None
    backend: Any = None
    cost_hint: float = 10.0

    def key(self) -> str:
        return cache_key(self.instance, self.solver, self.config, backend=self.backend)


@dataclass
class HoistedPrereq:
    """One shared sub-solve promoted to a store row."""

    params: dict[str, Any]  # {"source", "cell", "index", "solver"}
    param_hash: str  # hash of (PREREQ_EXPERIMENT, params)
    cache_key: str
    cost_hint: float
    dependents: list[tuple[str, str]] = field(default_factory=list)  # (experiment, hash)


@dataclass
class PlanReport:
    """What one planning pass did (rendered by ``repro orch plan``)."""

    experiments: list[str]
    hoisted: list[HoistedPrereq]
    prereq_rows_added: int = 0
    edges: int = 0
    skipped_cached: int = 0
    priorities_updated: int = 0
    estimate_totals: dict[str, float] = field(default_factory=dict)
    projected_fifo: float = 0.0
    projected_priority: float = 0.0

    @property
    def dependent_cells(self) -> int:
        return sum(len(prereq.dependents) for prereq in self.hoisted)


def discover_prerequisites(
    experiments: Sequence[str], *, quick: bool = True, seed: int = 0
) -> dict[str, HoistedPrereq]:
    """Group every declared sub-solve of the named grids by cache key.

    Only builds instances (cheap); nothing is solved.  The representative
    ``(source, cell, index)`` stored in the prerequisite params is the first
    cell encountered in deterministic grid order, so re-planning the same
    grids always produces identical rows (idempotent inserts).
    """
    from . import registry  # deferred: pulls in the full grid module

    groups: dict[str, HoistedPrereq] = {}
    for name in experiments:
        spec = registry.get_spec(name)
        if spec.prerequisites is None:
            continue
        for params in registry.expand_grid(spec, quick=quick, seed=seed):
            cell_hash = params_hash(spec.name, params)
            for index, call in enumerate(spec.prerequisites(**params)):
                key = call.key()
                group = groups.get(key)
                if group is None:
                    prereq_params = {
                        "source": spec.name,
                        "cell": dict(params),
                        "index": index,
                        "solver": call.solver,
                    }
                    group = HoistedPrereq(
                        params=prereq_params,
                        param_hash=params_hash(PREREQ_EXPERIMENT, prereq_params),
                        cache_key=key,
                        cost_hint=call.cost_hint,
                    )
                    groups[key] = group
                group.dependents.append((spec.name, cell_hash))
    return groups


def prereq_cost_hint(params: dict[str, Any]) -> float:
    """Cost hint of a hoisted row: re-derive the declared call's hint."""
    from . import registry

    spec = registry.get_spec(params["source"])
    if spec.prerequisites is None:
        return 10.0
    calls = spec.prerequisites(**params["cell"])
    index = int(params["index"])
    if 0 <= index < len(calls):
        return float(calls[index].cost_hint)
    return 10.0


def plan(
    store: "StoreProtocol",
    experiments: Sequence[str],
    *,
    quick: bool = True,
    seed: int = 0,
    workers: int = 2,
    populate_rows: bool = True,
    min_shared: int = 2,
    hoist: bool = True,
) -> PlanReport:
    """Populate (optionally), hoist shared prerequisites, assign priorities.

    Idempotent: re-planning inserts nothing new and rewrites the same edges
    and priorities.  Cells already running or finished are left alone.
    ``min_shared`` is the hoisting threshold — a sub-solve needed by a single
    cell gains nothing from a dedicated row (the cell caches it anyway).
    ``hoist=False`` skips prerequisite extraction entirely and only assigns
    priorities — hoisting is pointless when the runner disables the
    persistent cache, since the hoisted result could never reach dependents.
    """
    from . import registry
    from .runner import populate

    names = [registry.get_spec(name).name for name in experiments]
    report = PlanReport(experiments=list(names), hoisted=[])
    if populate_rows:
        populate(store, names, quick=quick, seed=seed)

    hoisted: list[HoistedPrereq] = []
    if hoist:
        # Only rows still pending can be gated (and can consume the hoisted
        # result): cells already done/running must not count toward the
        # hoisting threshold, or a re-plan over a finished uncached grid
        # would solve an expensive prerequisite nobody reads.
        pending_cells = {
            (name, params_hash(name, row.params))
            for name in names
            for row in store.fetch_rows(name, status="pending")
        }
        groups = discover_prerequisites(names, quick=quick, seed=seed)
        for key in sorted(groups):
            group = groups[key]
            group.dependents = [
                dependent for dependent in group.dependents if dependent in pending_cells
            ]
            if len(group.dependents) < min_shared:
                continue
            if store.cache_contains(group.cache_key):
                report.skipped_cached += 1
                continue
            hoisted.append(group)
    report.hoisted = hoisted

    if hoisted:
        report.prereq_rows_added = store.add_rows(
            PREREQ_EXPERIMENT, [group.params for group in hoisted]
        )
        # A cell may be gated on several prerequisites: collect edges per
        # cell first so one set_dependencies call writes the full list.
        edges: dict[tuple[str, str], list[str]] = {}
        for group in hoisted:
            for dependent in group.dependents:
                edges.setdefault(dependent, []).append(group.param_hash)
        for (experiment, cell_hash), deps in edges.items():
            if store.set_dependencies(experiment, cell_hash, deps):
                report.edges += 1

    # Priorities: longest-expected-first for ordinary cells; prerequisites
    # additionally carry the estimates of everything they gate.  The gate
    # boost is recomputed from store state, so prereq rows of *earlier*
    # plans keep outranking their dependents across re-plans too.  One
    # combined set_schedule write, with the just-computed estimates reused
    # for the boost sums so each cost-hint callable runs once per cell.
    model = CostModel.fit(store)
    entries, totals = priority_entries(store, names, model)
    known = {
        (experiment, row_hash): priority
        for experiment, row_hash, priority, _ in entries
    }
    boosts, boost_total = _gate_boost_entries(store, model, known)
    report.priorities_updated = store.set_schedule(entries + boosts)
    report.estimate_totals = totals
    if boosts:
        report.estimate_totals[PREREQ_EXPERIMENT] = boost_total

    # Projection: what this plan buys over FIFO on the requested worker
    # count (list-scheduling simulation over the pending cost estimates;
    # dependency edges are ignored — prerequisites sort first anyway).
    costs = [
        row.cost_estimate
        for name in dict.fromkeys(names + [PREREQ_EXPERIMENT])
        for row in store.fetch_rows(name, status="pending")
        if row.cost_estimate is not None
    ]
    if costs:
        report.projected_fifo = simulate_makespan(costs, workers, order="fifo")
        report.projected_priority = simulate_makespan(
            costs, workers, order="priority", fifo_every=store.fifo_every
        )
    return report


def _gate_boost_entries(
    store: "StoreProtocol",
    model: CostModel,
    known_estimates: Mapping[tuple[str, str], float] | None = None,
) -> tuple[list[tuple[str, str, float, float | None]], float]:
    """``set_schedule`` entries boosting every pending ``prereq`` row.

    The gate sum is derived from ground truth over the *whole* store —
    every pending row whose ``depends_on`` lists the prerequisite's hash,
    regardless of which experiments the caller is planning — because the
    rewritten prereq rows are global too: summing only an experiment-scoped
    subset would silently wipe the boost owed to out-of-scope dependents
    (the same bug class as the bare ``plan_priorities(store)`` wipe).
    Dependent estimates come from ``model`` directly, so they match the
    priorities being written alongside rather than whatever an earlier
    plan left in ``cost_estimate``; ``known_estimates`` (keyed by
    ``(experiment, param_hash)``) short-circuits rows the caller already
    estimated this pass, so a re-plan never runs the hint callables twice
    over the same cells.
    """
    prereq_rows = store.fetch_rows(PREREQ_EXPERIMENT, status="pending")
    if not prereq_rows:
        return [], 0.0
    gate_sums: dict[str, float] = {}
    for name in store.experiments():
        if name == PREREQ_EXPERIMENT:
            continue
        for row in store.fetch_rows(name, status="pending"):
            if not row.depends_on:
                continue
            estimate = None
            if known_estimates is not None:
                estimate = known_estimates.get((name, params_hash(name, row.params)))
            if estimate is None:
                estimate = model.estimate(name, row.params)
            for dep in row.depends_on:
                gate_sums[dep] = gate_sums.get(dep, 0.0) + estimate
    boosts: list[tuple[str, str, float, float | None]] = []
    total = 0.0
    for row in prereq_rows:
        own = model.estimate(PREREQ_EXPERIMENT, row.params)
        row_hash = params_hash(PREREQ_EXPERIMENT, row.params)
        boosts.append(
            (PREREQ_EXPERIMENT, row_hash, own + gate_sums.get(row_hash, 0.0), own)
        )
        total += own
    return boosts, total


def apply_gate_boosts(store: "StoreProtocol", model: CostModel) -> dict[str, Any]:
    """Recompute the priority of every pending ``prereq`` row from the store.

    A prerequisite delays everything behind it, so its priority is its own
    estimate *plus* the summed estimates of the still-pending cells gated on
    it (``cost_estimate`` stays the own estimate) — see
    :func:`_gate_boost_entries` for why the sum is store-wide.  Returns
    ``{"updated": rows_changed, "total": summed_own_estimates}``.
    """
    boosts, total = _gate_boost_entries(store, model)
    return {"updated": store.set_schedule(boosts), "total": total}


def replan(
    store: "StoreProtocol",
    *,
    model: CostModel,
    experiments: Sequence[str] | None = None,
    round_no: int | None = None,
) -> dict[str, Any]:
    """Re-rank all still-pending rows under a freshly refitted cost model.

    The online half of the planner: no grid expansion, no hoisting — the
    :func:`~repro.orchestration.scheduling.priority_entries` of the scoped
    pending rows plus the store-wide prerequisite gate boosts, written in a
    *single* ``set_schedule`` transaction so concurrent claimers never
    observe a half-re-ranked store.  ``round_no`` (the value
    :meth:`~repro.orchestration.store.ExperimentStore.try_begin_replan`
    handed the caller) guards the write: if a newer round was won while
    this one was still refitting, nothing is written and the summary comes
    back ``{"stale": True}`` — a stalled winner can never clobber fresher
    priorities.  Rows already claimed keep their spent scheduling decision.
    """
    entries, totals = priority_entries(store, experiments, model)
    known = {
        (experiment, row_hash): priority
        for experiment, row_hash, priority, _ in entries
    }
    boosts, _ = _gate_boost_entries(store, model, known)
    updated = store.set_schedule(entries + boosts, if_replan_round=round_no)
    if updated is None:
        return {"updated": 0, "boosted": 0, "totals": totals, "stale": True}
    return {
        "updated": updated,
        "boosted": len(boosts),
        "totals": totals,
        "stale": False,
    }
