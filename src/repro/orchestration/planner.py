"""Dependency-aware grid planning: hoist shared sub-solves, gate dependents.

E2, E4 and E10 all start a cell by computing the exact optimum of the cell's
instance — and several cells of one grid (all E4 eps values, all E10
variants) share the *same* instance, so a FIFO run either solves the same
exact MILP repeatedly (no cache) or serialises every sibling behind whichever
cell happens to reach it first (cache, but cold).  The planner makes the
sharing explicit:

1. Specs declare their expensive shared sub-solves via
   ``ExperimentSpec.prerequisites`` — a callable mapping cell params to
   :class:`PrereqCall` descriptions (instance + solver + backend, i.e.
   exactly the identity of a :func:`~repro.orchestration.cache.cached_solve`
   invocation).
2. :func:`plan` groups the calls of every pending cell by their content-hash
   cache key.  Keys needed by at least ``min_shared`` cells (and not already
   in the persistent cache) are *hoisted*: a dedicated row of the pseudo
   experiment ``prereq`` is inserted, and every dependent cell is gated on
   it with a ``depends_on`` edge — the store refuses to hand a gated cell to
   a worker until the prerequisite row is ``done``.
3. The prerequisite row's cell (:func:`~repro.orchestration.grids.cell_prereq`)
   routes the solve through ``cached_solve`` with the *same* key, so when
   the dependents run, their own ``cached_solve`` call is a guaranteed
   cache hit: each shared exact MILP is solved exactly once per store.

The planner also fits the :class:`~repro.orchestration.scheduling.CostModel`
and assigns priorities: ordinary cells get their cost estimate, prerequisite
rows get their own estimate *plus* the summed estimates of the cells they
gate (a prerequisite delays everything behind it, so it goes first).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from ..core.instance import Instance
from ..core.result import SolverResult
from .cache import cache_key
from .scheduling import CostModel, simulate_makespan
from .store import ExperimentStore, params_hash

__all__ = [
    "PREREQ_EXPERIMENT",
    "PrereqCall",
    "HoistedPrereq",
    "PlanReport",
    "discover_prerequisites",
    "plan",
]

# Pseudo experiment holding hoisted prerequisite rows.  Registered in
# grids.py like any other spec (empty grid: rows are planner-inserted).
PREREQ_EXPERIMENT = "prereq"


@dataclass(frozen=True)
class PrereqCall:
    """One expensive sub-solve a cell will perform, in cache-key terms.

    ``compute`` re-runs the solve from scratch; the remaining fields must
    match the dependent cell's own ``cached_solve`` invocation exactly, or
    the hoisted result would land under a different key and help nobody.
    """

    instance: Instance
    solver: str
    compute: Callable[[], SolverResult]
    config: Mapping[str, Any] | None = None
    backend: Any = None
    cost_hint: float = 10.0

    def key(self) -> str:
        return cache_key(self.instance, self.solver, self.config, backend=self.backend)


@dataclass
class HoistedPrereq:
    """One shared sub-solve promoted to a store row."""

    params: dict[str, Any]  # {"source", "cell", "index", "solver"}
    param_hash: str  # hash of (PREREQ_EXPERIMENT, params)
    cache_key: str
    cost_hint: float
    dependents: list[tuple[str, str]] = field(default_factory=list)  # (experiment, hash)


@dataclass
class PlanReport:
    """What one planning pass did (rendered by ``repro orch plan``)."""

    experiments: list[str]
    hoisted: list[HoistedPrereq]
    prereq_rows_added: int = 0
    edges: int = 0
    skipped_cached: int = 0
    priorities_updated: int = 0
    estimate_totals: dict[str, float] = field(default_factory=dict)
    projected_fifo: float = 0.0
    projected_priority: float = 0.0

    @property
    def dependent_cells(self) -> int:
        return sum(len(prereq.dependents) for prereq in self.hoisted)


def discover_prerequisites(
    experiments: Sequence[str], *, quick: bool = True, seed: int = 0
) -> dict[str, HoistedPrereq]:
    """Group every declared sub-solve of the named grids by cache key.

    Only builds instances (cheap); nothing is solved.  The representative
    ``(source, cell, index)`` stored in the prerequisite params is the first
    cell encountered in deterministic grid order, so re-planning the same
    grids always produces identical rows (idempotent inserts).
    """
    from . import registry  # deferred: pulls in the full grid module

    groups: dict[str, HoistedPrereq] = {}
    for name in experiments:
        spec = registry.get_spec(name)
        if spec.prerequisites is None:
            continue
        for params in registry.expand_grid(spec, quick=quick, seed=seed):
            cell_hash = params_hash(spec.name, params)
            for index, call in enumerate(spec.prerequisites(**params)):
                key = call.key()
                group = groups.get(key)
                if group is None:
                    prereq_params = {
                        "source": spec.name,
                        "cell": dict(params),
                        "index": index,
                        "solver": call.solver,
                    }
                    group = HoistedPrereq(
                        params=prereq_params,
                        param_hash=params_hash(PREREQ_EXPERIMENT, prereq_params),
                        cache_key=key,
                        cost_hint=call.cost_hint,
                    )
                    groups[key] = group
                group.dependents.append((spec.name, cell_hash))
    return groups


def prereq_cost_hint(params: dict[str, Any]) -> float:
    """Cost hint of a hoisted row: re-derive the declared call's hint."""
    from . import registry

    spec = registry.get_spec(params["source"])
    if spec.prerequisites is None:
        return 10.0
    calls = spec.prerequisites(**params["cell"])
    index = int(params["index"])
    if 0 <= index < len(calls):
        return float(calls[index].cost_hint)
    return 10.0


def plan(
    store: ExperimentStore,
    experiments: Sequence[str],
    *,
    quick: bool = True,
    seed: int = 0,
    workers: int = 2,
    populate_rows: bool = True,
    min_shared: int = 2,
    hoist: bool = True,
) -> PlanReport:
    """Populate (optionally), hoist shared prerequisites, assign priorities.

    Idempotent: re-planning inserts nothing new and rewrites the same edges
    and priorities.  Cells already running or finished are left alone.
    ``min_shared`` is the hoisting threshold — a sub-solve needed by a single
    cell gains nothing from a dedicated row (the cell caches it anyway).
    ``hoist=False`` skips prerequisite extraction entirely and only assigns
    priorities — hoisting is pointless when the runner disables the
    persistent cache, since the hoisted result could never reach dependents.
    """
    from . import registry
    from .runner import populate
    from .scheduling import plan_priorities

    names = [registry.get_spec(name).name for name in experiments]
    report = PlanReport(experiments=list(names), hoisted=[])
    if populate_rows:
        populate(store, names, quick=quick, seed=seed)

    hoisted: list[HoistedPrereq] = []
    if hoist:
        # Only rows still pending can be gated (and can consume the hoisted
        # result): cells already done/running must not count toward the
        # hoisting threshold, or a re-plan over a finished uncached grid
        # would solve an expensive prerequisite nobody reads.
        pending_cells = {
            (name, params_hash(name, row.params))
            for name in names
            for row in store.fetch_rows(name, status="pending")
        }
        groups = discover_prerequisites(names, quick=quick, seed=seed)
        for key in sorted(groups):
            group = groups[key]
            group.dependents = [
                dependent for dependent in group.dependents if dependent in pending_cells
            ]
            if len(group.dependents) < min_shared:
                continue
            if store.cache_contains(group.cache_key):
                report.skipped_cached += 1
                continue
            hoisted.append(group)
    report.hoisted = hoisted

    if hoisted:
        report.prereq_rows_added = store.add_rows(
            PREREQ_EXPERIMENT, [group.params for group in hoisted]
        )
        # A cell may be gated on several prerequisites: collect edges per
        # cell first so one set_dependencies call writes the full list.
        edges: dict[tuple[str, str], list[str]] = {}
        for group in hoisted:
            for dependent in group.dependents:
                edges.setdefault(dependent, []).append(group.param_hash)
        for (experiment, cell_hash), deps in edges.items():
            if store.set_dependencies(experiment, cell_hash, deps):
                report.edges += 1

    # Priorities: longest-expected-first for ordinary cells; prerequisites
    # additionally carry the estimates of everything they gate.
    model = CostModel.fit(store)
    schedule_names = names + ([PREREQ_EXPERIMENT] if hoisted else [])
    summary = plan_priorities(store, schedule_names, model=model)
    report.priorities_updated = summary["updated"]
    report.estimate_totals = summary["totals"]
    if hoisted:
        boosts: list[tuple[str, str, float, float | None]] = []
        dependent_estimates: dict[str, float] = {}
        for name in names:
            for row in store.fetch_rows(name, status="pending"):
                dependent_estimates[params_hash(name, row.params)] = (
                    row.cost_estimate
                    if row.cost_estimate is not None
                    else model.estimate(name, row.params)
                )
        for group in hoisted:
            own = model.estimate(PREREQ_EXPERIMENT, group.params)
            gate = sum(
                dependent_estimates.get(cell_hash, 0.0)
                for _, cell_hash in group.dependents
            )
            boosts.append(
                (PREREQ_EXPERIMENT, group.param_hash, own + gate, own)
            )
        store.set_schedule(boosts)

    # Projection: what this plan buys over FIFO on the requested worker
    # count (list-scheduling simulation over the pending cost estimates;
    # dependency edges are ignored — prerequisites sort first anyway).
    costs = [
        row.cost_estimate
        for name in dict.fromkeys(schedule_names)
        for row in store.fetch_rows(name, status="pending")
        if row.cost_estimate is not None
    ]
    if costs:
        report.projected_fifo = simulate_makespan(costs, workers, order="fifo")
        report.projected_priority = simulate_makespan(
            costs, workers, order="priority", fifo_every=store.fifo_every
        )
    return report
