"""Content-hash result caching for solver invocations.

A solver call is identified by ``(instance digest, solver name, config,
backend fingerprint)``: the digest covers the job multiset (ids, sizes,
bags) and the machine count — *not* the instance name, so renamed but
identical instances share cache entries.  For solvers that go through the
MILP service, callers pass the :class:`repro.solver.BackendSpec` and the
key includes the registry-emitted fingerprint (backend name + version +
option digest), so a scipy upgrade or a solver-option change never reuses
stale cached results.  Payloads are small JSON summaries (makespan, wall time, optimality
flag, diagnostics, optional solver-specific extras) — never full schedules —
so the cache stays cheap to read even on slow disks.

Two layers:

* an in-process memo (always on) so that one grid cell / driver table never
  recomputes the same exact optimum twice inside a process, and
* an optional persistent layer backed by the ``cache`` table of an
  :class:`~repro.orchestration.store.ExperimentStore`, activated per process
  via :func:`activate_cache` (the worker pool does this automatically) or the
  ``REPRO_CACHE_DB`` environment variable (used by the benchmark harness).
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Mapping

from ..analysis import racecheck
from ..core.instance import Instance
from ..core.result import SolverResult
from .store import ExperimentStore, _to_jsonable

__all__ = [
    "DEFAULT_MEMO_ENTRIES",
    "activate_cache",
    "deactivate_cache",
    "active_cache",
    "cache_key",
    "cached_payload",
    "cached_solve",
    "clear_memo",
    "instance_digest",
    "memo_stats",
    "set_memo_limit",
    "summarise_result",
]

# The in-process memo is LRU-bounded: one grid run never feels the cap, but
# a forever-lived process (the scheduling service) must not grow a dict per
# distinct instance it has ever seen.  Adjustable via set_memo_limit.
DEFAULT_MEMO_ENTRIES = 4096

_memo: "OrderedDict[str, dict[str, Any]]" = OrderedDict()
# The memo is shared mutable state: the scheduling service's executor
# threads all solve through cached_solve concurrently, and an unguarded
# OrderedDict corrupts under simultaneous move_to_end/popitem.
_memo_lock = racecheck.tracked_lock("cache.memo")
_memo_hits = 0
_memo_limit = DEFAULT_MEMO_ENTRIES
# The persistent layer: a local ExperimentStore, or any store-shaped object
# installed via cache_scope (a RemoteStore in distributed workers).
_active: Any = None
# Whether *this module* opened _active (and therefore must close it).  A
# caller-owned store installed via cache_scope is never closed here — its
# owner may be sharing the connection with claim/complete traffic.
_active_owned = False
_env_checked = False

ENV_CACHE_DB = "REPRO_CACHE_DB"


def instance_digest(instance: Instance) -> str:
    """Stable content hash of an instance (ignores the display name)."""
    blob = json.dumps(
        {
            "m": instance.num_machines,
            "jobs": [(job.id, float(job.size), int(job.bag)) for job in instance.jobs],
        },
        separators=(",", ":"),
    ).encode()
    return hashlib.sha256(blob).hexdigest()


def cache_key(
    instance: Instance,
    solver: str,
    config: Mapping[str, Any] | None = None,
    *,
    backend: "str | Any | None" = None,
) -> str:
    """Cache key for one solver invocation on one instance.

    ``backend`` (a name or :class:`repro.solver.BackendSpec`) adds the
    registry fingerprint to the key for MILP-backed solvers; combinatorial
    solvers (LPT, greedy, …) omit it so their entries survive backend
    upgrades they cannot be affected by.
    """
    config_blob = json.dumps(_to_jsonable(config or {}), sort_keys=True, separators=(",", ":"))
    fingerprint = ""
    if backend is not None:
        from ..solver import BackendSpec, backend_fingerprint

        fingerprint = backend_fingerprint(BackendSpec.coerce(backend))
    blob = f"{instance_digest(instance)}\x00{solver}\x00{config_blob}\x00{fingerprint}".encode()
    return hashlib.sha256(blob).hexdigest()


def activate_cache(path: str | os.PathLike[str]) -> ExperimentStore:
    """Point this process's persistent cache layer at a store file."""
    global _active, _active_owned
    if _active is not None and _active_owned:
        _active.close()
    _active = ExperimentStore(path)
    _active_owned = True
    return _active


@contextmanager
def cache_scope(
    target: "str | os.PathLike[str] | Any | None",
) -> Iterator[Any]:
    """Temporarily install a persistent cache layer, restoring the previous one.

    ``target=None`` disables the persistent layer for the scope's duration —
    including the ``REPRO_CACHE_DB`` env fallback, so ``--no-cache`` really
    means no persistent reads or writes.  A path opens (and owns) a local
    :class:`ExperimentStore`; an already-open store-shaped object — anything
    with the cache methods of
    :class:`~repro.distributed.protocol.StoreProtocol`, in practice a
    :class:`~repro.distributed.client.RemoteStore` — is used as-is and left
    open for its owner to close, which is how a remote worker's cache reads
    and writes travel over the same server connection as its claims.
    Unlike :func:`activate_cache` this never leaks process-global state: the
    runner wraps each worker loop in it, so a ``workers=1`` inline run
    inside a larger process (library use, tests) leaves the ambient cache
    untouched.
    """
    global _active, _active_owned, _env_checked
    prev_active, prev_owned, prev_checked = _active, _active_owned, _env_checked
    owned: ExperimentStore | None = None
    if target is None:
        store = None
    elif hasattr(target, "cache_get"):
        store = target
    else:
        store = owned = ExperimentStore(target)
    _active = store
    _active_owned = owned is not None
    _env_checked = True  # pin: no lazy env activation while the scope holds
    try:
        yield store
    finally:
        if _active is store:
            _active = prev_active
            _active_owned = prev_owned
            _env_checked = prev_checked
        if owned is not None:
            owned.close()


def deactivate_cache() -> None:
    global _active, _active_owned, _env_checked
    if _active is not None and _active_owned:
        _active.close()
    _active = None
    _active_owned = False
    _env_checked = True  # an explicit deactivate also disables the env fallback


def active_cache() -> Any:
    """The persistent cache layer, lazily honouring ``REPRO_CACHE_DB``."""
    global _active, _active_owned, _env_checked
    if _active is None and not _env_checked:
        _env_checked = True
        env_path = os.environ.get(ENV_CACHE_DB)
        if env_path:
            _active = ExperimentStore(env_path)
            _active_owned = True
    return _active


def clear_memo() -> None:
    global _memo_hits
    with _memo_lock:
        _memo.clear()
        _memo_hits = 0


def set_memo_limit(limit: int) -> None:
    """Cap the in-process memo at ``limit`` entries (LRU eviction)."""
    global _memo_limit
    if limit < 1:
        raise ValueError(f"memo limit must be >= 1, got {limit}")
    with _memo_lock:
        _memo_limit = limit
        while len(_memo) > _memo_limit:
            _memo.popitem(last=False)


def memo_stats() -> dict[str, int]:
    with _memo_lock:
        return {"entries": len(_memo), "hits": _memo_hits}


def _memo_get(key: str, *, count_hit: bool = False) -> dict[str, Any] | None:
    global _memo_hits
    with _memo_lock:
        hit = _memo.get(key)
        if hit is not None:
            _memo.move_to_end(key)
            if count_hit:
                _memo_hits += 1
        return hit


def _memo_put(key: str, payload: dict[str, Any]) -> None:
    with _memo_lock:
        _memo[key] = payload
        _memo.move_to_end(key)
        while len(_memo) > _memo_limit:
            _memo.popitem(last=False)


def summarise_result(result: SolverResult) -> dict[str, Any]:
    """The standard JSON summary payload for one solve (what gets cached)."""
    return {
        "makespan": float(result.makespan),
        "wall_time": float(result.wall_time),
        "optimal": bool(result.optimal),
        "solver": result.solver,
        "diagnostics": _to_jsonable(result.diagnostics),
    }


_summarise = summarise_result


def cached_payload(
    instance: Instance,
    solver: str,
    *,
    config: Mapping[str, Any] | None = None,
    backend: "str | Any | None" = None,
) -> dict[str, Any] | None:
    """Probe both cache layers for a solve's payload without computing it.

    Unlike :func:`cached_solve` a miss returns ``None`` (nothing runs), and
    unlike ``store.cache_get`` the in-process memo is consulted too.  The
    planner's cheaper existence probe is ``store.cache_contains`` (it skips
    the hit counter); this helper is for callers that want the payload —
    library users inspecting cached optima, and tests asserting a
    prerequisite's result actually landed in the cache.
    """
    key = cache_key(instance, solver, config, backend=backend)
    hit = _memo_get(key)
    if hit is not None:
        return dict(hit)
    store = active_cache()
    if store is not None:
        payload = store.cache_get(key)
        if payload is not None:
            _memo_put(key, payload)
            return dict(payload)
    return None


def cached_solve(
    instance: Instance,
    solver: str,
    compute: Callable[[], SolverResult],
    *,
    config: Mapping[str, Any] | None = None,
    backend: "str | Any | None" = None,
    extra: Callable[[SolverResult], Mapping[str, Any]] | None = None,
) -> dict[str, Any]:
    """Run ``compute`` through the cache; returns the JSON summary payload.

    ``backend`` names the MILP backend spec the solver will use (when it
    uses one); it folds the registry fingerprint into the cache key.
    ``extra`` extracts additional JSON-able fields from the
    :class:`SolverResult` (e.g. residual conflict counts) which are persisted
    alongside the standard summary, so cache hits reproduce them too.  The
    returned payload carries a ``cache_hit`` flag for reporting.
    """
    key = cache_key(instance, solver, config, backend=backend)
    hit = _memo_get(key, count_hit=True)
    if hit is not None:
        return {**hit, "cache_hit": True}
    store = active_cache()
    if store is not None:
        payload = store.cache_get(key)
        if payload is not None:
            _memo_put(key, payload)
            return {**payload, "cache_hit": True}
    result = compute()
    payload = summarise_result(result)
    if extra is not None:
        payload.update(_to_jsonable(extra(result)))
    _memo_put(key, payload)
    if store is not None:
        store.cache_put(key, solver, payload)
    return {**payload, "cache_hit": False}
