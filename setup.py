"""Setup shim.

The canonical project metadata lives in ``pyproject.toml``.  This file exists
so that fully offline environments without the ``wheel`` package can still do
an editable install via the legacy path (``python setup.py develop`` /
``pip install -e . --no-build-isolation``).
"""

from setuptools import setup

setup()
