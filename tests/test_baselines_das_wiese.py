"""Unit tests for the Das–Wiese-style configuration-ILP baseline."""

from __future__ import annotations

import pytest

from repro.baselines import DasWieseConfig, das_wiese_schedule
from repro.baselines.das_wiese import _enumerate_configurations, _rounded_size
from repro.bounds import combined_lower_bound
from repro.core.errors import SolverLimitError
from repro.exact import exact_milp_schedule
from repro.generators import figure1_adversarial_instance, uniform_random_instance

from helpers import assert_feasible


class TestHelpers:
    def test_rounded_size_is_power_and_upper_bound(self):
        eps = 0.25
        for size in (0.3, 0.5, 0.77, 1.0, 2.3):
            rounded = _rounded_size(size, eps)
            assert rounded >= size - 1e-12
            assert rounded <= size * (1 + eps) + 1e-12

    def test_rounded_size_zero(self):
        assert _rounded_size(0.0, 0.5) == 0.0

    def test_enumerate_configurations_respects_bags_and_capacity(self):
        groups = [(0, 0.6, 2), (0, 0.4, 1), (1, 0.5, 3)]
        configs = list(_enumerate_configurations(groups, 1.0, max_configurations=1000))
        for counts, height in configs:
            assert height <= 1.0 + 1e-9
            # at most one job per bag
            assert counts[0] + counts[1] <= 1
        # the empty configuration is present
        assert any(sum(counts) == 0 for counts, _ in configs)

    def test_enumeration_limit(self):
        groups = [(bag, 0.01, 5) for bag in range(20)]
        with pytest.raises(SolverLimitError):
            list(_enumerate_configurations(groups, 10.0, max_configurations=50))


class TestDasWieseScheduler:
    def test_feasible_and_near_optimal_on_figure1(self):
        instance = figure1_adversarial_instance(num_machines=4).instance
        result = das_wiese_schedule(instance, eps=0.25)
        assert_feasible(result.schedule)
        assert result.makespan <= (1 + 3 * 0.25) * 1.0 + 1e-9

    @pytest.mark.parametrize("seed", range(3))
    def test_feasible_on_random_instances(self, seed):
        instance = uniform_random_instance(
            num_jobs=16, num_machines=4, num_bags=6, seed=seed
        ).instance
        result = das_wiese_schedule(instance, eps=0.3)
        assert_feasible(result.schedule)
        assert result.makespan <= 2.0 * combined_lower_bound(instance) + 1e-9

    def test_quality_against_exact(self):
        instance = uniform_random_instance(
            num_jobs=14, num_machines=3, num_bags=5, seed=5
        ).instance
        optimum = exact_milp_schedule(instance).makespan
        result = das_wiese_schedule(instance, eps=0.25)
        # PTAS guarantee with the documented constant (1 + O(eps)).
        assert result.makespan <= (1 + 4 * 0.25) * optimum + 1e-9

    def test_diagnostics_and_params(self):
        instance = figure1_adversarial_instance(num_machines=3).instance
        result = das_wiese_schedule(instance, eps=0.5)
        assert result.params["eps"] == 0.5
        assert "search_iterations" in result.diagnostics
