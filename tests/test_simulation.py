"""Unit tests for the discrete-event cluster simulator."""

from __future__ import annotations

import pytest

from repro.baselines import lpt_schedule
from repro.core import Instance, Schedule
from repro.simulation import ClusterSimulator, MachineFailure, simulate_schedule


@pytest.fixture
def small_schedule():
    instance = Instance.from_sizes(
        [3.0, 2.0, 2.0, 1.0], bags=[0, 1, 0, 1], num_machines=2, name="sim"
    )
    schedule = Schedule(instance).assign_many([(0, 0), (3, 0), (1, 1), (2, 1)])
    return instance, schedule


class TestNoFailures:
    def test_everything_completes(self, small_schedule):
        instance, schedule = small_schedule
        report = simulate_schedule(instance, schedule)
        assert report.num_completed == 4
        assert report.num_failed == 0
        assert report.makespan == pytest.approx(schedule.makespan())
        assert report.bags_fully_completed == instance.num_bags
        assert report.survivability() == 1.0

    def test_busy_time_equals_loads(self, small_schedule):
        instance, schedule = small_schedule
        report = simulate_schedule(instance, schedule)
        loads = schedule.loads()
        for machine, busy in report.machine_busy_time.items():
            assert busy == pytest.approx(loads[machine])
        assert 0.0 < report.utilisation() <= 1.0

    def test_infeasible_schedule_rejected(self, small_schedule):
        instance, _ = small_schedule
        bad = Schedule(instance).assign_many([(0, 0), (2, 0), (1, 1), (3, 1)])
        with pytest.raises(Exception):
            ClusterSimulator(instance, bad)


class TestFailures:
    def test_failure_at_time_zero_loses_whole_machine(self, small_schedule):
        instance, schedule = small_schedule
        report = simulate_schedule(instance, schedule, [MachineFailure(machine=0, time=0.0)])
        lost = {job_id for job_id in report.failed_jobs}
        assert lost == {0, 3}
        assert report.num_completed == 2

    def test_failure_mid_run_keeps_finished_jobs(self, small_schedule):
        instance, schedule = small_schedule
        # Machine 0 runs job 0 (size 3) first, then job 3 (size 1).
        report = simulate_schedule(instance, schedule, [MachineFailure(machine=0, time=3.5)])
        assert 0 in report.completed_jobs
        assert 3 in report.failed_jobs

    def test_failure_after_makespan_changes_nothing(self, small_schedule):
        instance, schedule = small_schedule
        report = simulate_schedule(instance, schedule, [MachineFailure(machine=0, time=100.0)])
        assert report.num_failed == 0

    def test_survivability_counts_partial_bags(self, small_schedule):
        instance, schedule = small_schedule
        report = simulate_schedule(instance, schedule, [MachineFailure(machine=0, time=0.0)])
        # bag 0 lost job 0 but kept job 2; bag 1 lost job 3 but kept job 1.
        assert report.bags_partially_completed == 2
        assert report.bags_fully_lost == 0
        assert report.survivability() == 1.0

    def test_random_failures_deterministic_given_seed(self):
        instance = Instance.from_sizes(
            [1.0] * 8, bags=list(range(8)), num_machines=4, name="det"
        )
        schedule = lpt_schedule(instance).schedule
        simulator = ClusterSimulator(instance, schedule)
        a = simulator.run_with_random_failures(num_failures=2, seed=5)
        b = simulator.run_with_random_failures(num_failures=2, seed=5)
        assert a.failed_jobs == b.failed_jobs
        assert a.to_dict() == b.to_dict()

    def test_bag_separation_limits_damage(self):
        # Two replicas per service on distinct machines: one failure can
        # never wipe out a service.
        instance = Instance.from_sizes(
            [1.0, 1.0, 2.0, 2.0], bags=[0, 0, 1, 1], num_machines=2, name="replicated"
        )
        schedule = Schedule(instance).assign_many([(0, 0), (1, 1), (2, 0), (3, 1)])
        report = simulate_schedule(instance, schedule, [MachineFailure(machine=0, time=0.0)])
        assert report.bags_fully_lost == 0

    def test_report_serialisation(self, small_schedule):
        instance, schedule = small_schedule
        report = simulate_schedule(instance, schedule)
        data = report.to_dict()
        assert data["completed"] == 4
        assert data["survivability"] == 1.0
