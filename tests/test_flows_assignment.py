"""Unit tests for the bag-to-machine assignment helpers (Lemma-3 substrate)."""

from __future__ import annotations

import pytest

from repro.flows import (
    AssignmentProblem,
    maximum_bipartite_matching,
    solve_bag_assignment,
)


class TestBagAssignment:
    def test_simple_satisfiable(self):
        problem = AssignmentProblem(
            demands={"A": 2, "B": 1},
            machine_capacities={0: 1, 1: 1, 2: 1},
            allowed={"A": [0, 1, 2], "B": [0, 1]},
        )
        result = solve_bag_assignment(problem)
        assert result.satisfied
        assert result.placed == 3
        assert len(result.assignment["A"]) == 2
        assert len(set(result.assignment["A"])) == 2  # distinct machines
        assert len(result.assignment["B"]) == 1

    def test_respects_allowed_machines(self):
        problem = AssignmentProblem(
            demands={"A": 2},
            machine_capacities={0: 2, 1: 2, 2: 2},
            allowed={"A": [0, 1]},
        )
        result = solve_bag_assignment(problem)
        assert result.satisfied
        assert set(result.assignment["A"]) <= {0, 1}

    def test_unsatisfiable_demand(self):
        problem = AssignmentProblem(
            demands={"A": 3},
            machine_capacities={0: 1, 1: 1},
            allowed={"A": [0, 1]},
        )
        result = solve_bag_assignment(problem)
        assert not result.satisfied
        assert result.placed == 2

    def test_capacity_limits(self):
        problem = AssignmentProblem(
            demands={"A": 1, "B": 1, "C": 1},
            machine_capacities={0: 1, 1: 1},
            allowed={"A": [0], "B": [0], "C": [1]},
        )
        result = solve_bag_assignment(problem)
        assert result.placed == 2  # machine 0 can only take one of A/B

    def test_total_demand(self):
        problem = AssignmentProblem(
            demands={"A": 2, "B": 3}, machine_capacities={}, allowed={}
        )
        assert problem.total_demand() == 5

    def test_at_most_one_item_per_group_per_machine(self):
        # Even with a large machine capacity, one group can place at most one
        # item per machine (unit group->machine edges mirror the bag rule).
        problem = AssignmentProblem(
            demands={"A": 3},
            machine_capacities={0: 10, 1: 10, 2: 10},
            allowed={"A": [0, 1, 2]},
        )
        result = solve_bag_assignment(problem)
        assert result.satisfied
        assert sorted(result.assignment["A"]) == [0, 1, 2]


class TestBipartiteMatching:
    def test_perfect_matching(self):
        matching = maximum_bipartite_matching(
            ["a", "b", "c"],
            [1, 2, 3],
            [("a", 1), ("a", 2), ("b", 2), ("c", 3)],
        )
        assert len(matching) == 3
        assert len(set(matching.values())) == 3

    def test_partial_matching(self):
        matching = maximum_bipartite_matching(
            ["a", "b"], [1], [("a", 1), ("b", 1)]
        )
        assert len(matching) == 1

    def test_empty(self):
        assert maximum_bipartite_matching([], [], []) == {}
