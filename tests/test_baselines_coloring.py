"""Unit tests for the coloring-based 2-approximation baseline."""

from __future__ import annotations

import pytest

from repro.baselines import coloring_schedule
from repro.bounds import combined_lower_bound
from repro.generators import bag_heavy_instance, uniform_random_instance

from helpers import assert_feasible


def test_feasible_on_fixtures(tiny_instance, uniform_instance, full_bag_instance):
    for instance in (tiny_instance, uniform_instance, full_bag_instance):
        result = coloring_schedule(instance)
        assert_feasible(result.schedule)


def test_figure1_solved_well(figure1_instance):
    result = coloring_schedule(figure1_instance)
    assert_feasible(result.schedule)
    assert result.makespan <= 2.0 + 1e-9


@pytest.mark.parametrize("seed", range(4))
def test_within_twice_lower_bound(seed):
    instance = uniform_random_instance(
        num_jobs=30, num_machines=5, num_bags=8, seed=seed
    ).instance
    result = coloring_schedule(instance)
    assert result.makespan <= 2.0 * combined_lower_bound(instance) + 1e-9


def test_bag_heavy_instances(seed=0):
    instance = bag_heavy_instance(num_machines=4, num_full_bags=4, extra_jobs=6, seed=seed).instance
    result = coloring_schedule(instance)
    assert_feasible(result.schedule)
    assert result.makespan <= 2.0 * combined_lower_bound(instance) + 1e-9
