"""Unit tests for pattern (configuration) enumeration (Definition 3)."""

from __future__ import annotations

import pytest

from repro.core import Instance
from repro.core.errors import SolverLimitError
from repro.eptas import (
    classify_bags,
    classify_jobs,
    collect_entry_types,
    enumerate_patterns,
)
from repro.eptas.patterns import WILDCARD_BAG, PatternEntry


def _entry(size: float, bag: int) -> PatternEntry:
    return PatternEntry(size=size, bag=bag)


class TestEnumeration:
    def test_empty_pattern_always_present(self):
        patterns = enumerate_patterns([], budget=1.0, max_slots=3)
        assert len(patterns) == 1
        assert patterns.patterns[0].entries == ()
        assert patterns.patterns[0].height == 0.0

    def test_budget_respected(self):
        entries = [(_entry(0.6, 0), 3), (_entry(0.5, 1), 3)]
        patterns = enumerate_patterns(entries, budget=1.0, max_slots=5)
        for pattern in patterns.patterns:
            assert pattern.height <= 1.0 + 1e-9
        # 0.6 + 0.5 > 1.0, so no pattern holds both
        assert not any(
            pattern.uses_bag(0) and pattern.uses_bag(1) for pattern in patterns.patterns
        )

    def test_at_most_one_slot_per_priority_bag(self):
        entries = [(_entry(0.3, 0), 5), (_entry(0.2, 0), 5), (_entry(0.25, 1), 5)]
        patterns = enumerate_patterns(entries, budget=2.0, max_slots=6)
        for pattern in patterns.patterns:
            slots_bag0 = sum(
                count
                for entry, count in pattern.entries
                if entry.bag == 0
            )
            assert slots_bag0 <= 1

    def test_wildcard_multiplicity_up_to_availability(self):
        entries = [(_entry(0.3, WILDCARD_BAG), 2)]
        patterns = enumerate_patterns(entries, budget=2.0, max_slots=10)
        max_count = max(
            (pattern.count_of(_entry(0.3, WILDCARD_BAG)) for pattern in patterns.patterns),
            default=0,
        )
        assert max_count == 2  # bounded by availability, not by the budget

    def test_wildcard_bounded_by_max_slots(self):
        entries = [(_entry(0.1, WILDCARD_BAG), 50)]
        patterns = enumerate_patterns(entries, budget=10.0, max_slots=4)
        for pattern in patterns.patterns:
            assert pattern.num_slots <= 4

    def test_max_patterns_limit(self):
        entries = [(_entry(0.05, bag), 1) for bag in range(20)]
        with pytest.raises(SolverLimitError):
            enumerate_patterns(entries, budget=5.0, max_slots=20, max_patterns=100)

    def test_pattern_helpers(self):
        entries = [(_entry(0.5, 3), 1), (_entry(0.4, WILDCARD_BAG), 2)]
        patterns = enumerate_patterns(entries, budget=2.0, max_slots=4)
        full = max(patterns.patterns, key=lambda p: p.num_slots)
        assert full.uses_bag(3)
        assert not full.uses_bag(99)
        assert full.wildcard_slots() == {0.4: 2}
        assert full.priority_slots() == {(3, 0.5): 1}
        assert "B^0.5_3" in full.label()
        summary = patterns.summary()
        assert summary["num_patterns"] == len(patterns)


class TestCollectEntryTypes:
    def test_priority_and_wildcard_split(self):
        # bag 0 priority with one large job, bags 1..3 non-priority with large jobs
        sizes = [0.5, 0.5, 0.5, 0.5, 0.02]
        bags = [0, 1, 2, 3, 0]
        instance = Instance.from_sizes(sizes, bags, num_machines=4)
        job_classes = classify_jobs(instance, 0.5, k=1)
        bag_classes = classify_bags(instance, job_classes, practical_priority_cap=1)
        entry_types = collect_entry_types(instance, job_classes, bag_classes)
        wildcard = [(e, c) for e, c in entry_types if e.is_wildcard]
        priority = [(e, c) for e, c in entry_types if not e.is_wildcard]
        assert len(priority) == 1
        assert priority[0][1] == 1
        assert len(wildcard) == 1
        assert wildcard[0][1] == 3  # three non-priority large jobs of size 0.5

    def test_small_jobs_ignored(self):
        instance = Instance.from_sizes([0.5, 0.01, 0.02], bags=[0, 0, 1], num_machines=2)
        job_classes = classify_jobs(instance, 0.5, k=1)
        bag_classes = classify_bags(instance, job_classes, practical_priority_cap=2)
        entry_types = collect_entry_types(instance, job_classes, bag_classes)
        assert all(entry.size >= 0.25 for entry, _ in entry_types)

    def test_entries_sorted_large_first(self):
        instance = Instance.from_sizes(
            [0.3, 0.6, 0.9], bags=[0, 1, 2], num_machines=3
        )
        job_classes = classify_jobs(instance, 0.5, k=1)
        bag_classes = classify_bags(instance, job_classes, practical_priority_cap=5)
        entry_types = collect_entry_types(instance, job_classes, bag_classes)
        sizes = [entry.size for entry, _ in entry_types]
        assert sizes == sorted(sizes, reverse=True)
