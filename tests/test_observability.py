"""Tests for the live observability layer.

Covers the metrics registry, the span buffer and its journaling through
the store's ``events`` table (local and over the wire), the dashboard
snapshot/HTTP surface, and the acceptance path: a live two-worker remote
drain during which the dashboard endpoints report advancing counters and
at least one op-correlated client -> server -> worker span chain.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.distributed import RemoteStore, StoreServer
from repro.observability import events, metrics
from repro.observability.dashboard import DashboardServer, build_snapshot
from repro.observability.metrics import MetricsRegistry, render_prometheus
from repro.orchestration import ExperimentStore, run_workers
from repro.orchestration.runner import populate


@pytest.fixture(autouse=True)
def _clean_slate():
    """Observability state is process-global; isolate every test."""
    metrics.reset()
    events.drain()
    yield
    metrics.reset()
    events.drain()


@pytest.fixture
def db_path(tmp_path):
    return tmp_path / "obs.sqlite"


def _get(url: str) -> bytes:
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.read()


class TestMetricsRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("a")
        reg.counter("a", 4)
        assert reg.snapshot()["counters"] == {"a": 5}

    def test_gauge_set_and_add(self):
        reg = MetricsRegistry()
        reg.gauge("depth", 7)
        reg.gauge("depth", 3)
        reg.gauge_add("depth", -1)
        assert reg.snapshot()["gauges"] == {"depth": 2}

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        for value in (0.002, 0.002, 1.0):
            reg.observe("lat", value)
        hist = reg.snapshot()["histograms"]["lat"]
        assert hist["count"] == 3
        assert hist["min"] == pytest.approx(0.002)
        assert hist["max"] == pytest.approx(1.0)
        assert hist["sum"] == pytest.approx(1.004)
        # 0.002 lands in the 0.005 bucket, 1.0 in the 2.0 bucket.
        assert hist["buckets"]["0.005"] == 2
        assert hist["buckets"]["2.0"] == 1

    def test_non_numeric_values_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(TypeError):
            reg.counter("a", "1")  # type: ignore[arg-type]
        with pytest.raises(TypeError):
            reg.gauge("b", None)  # type: ignore[arg-type]
        with pytest.raises(TypeError):
            reg.observe("c", True)  # bools are not metric values

    def test_snapshot_is_a_copy(self):
        reg = MetricsRegistry()
        reg.counter("a")
        snap = reg.snapshot()
        snap["counters"]["a"] = 99
        assert reg.snapshot()["counters"]["a"] == 1

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("a")
        reg.gauge("b", 1)
        reg.observe("c", 1.0)
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_snapshot_json_safe(self):
        reg = MetricsRegistry()
        reg.counter("a", 2)
        reg.observe("c", 0.5)
        json.dumps(reg.snapshot())  # must not raise

    def test_render_prometheus(self):
        reg = MetricsRegistry()
        reg.counter("rpc.requests", 3)
        reg.gauge("queue.depth", 2)
        reg.observe("claim_s", 0.003)
        text = render_prometheus(reg.snapshot(), extra_gauges={"rows_done": 5})
        assert "repro_rpc_requests_total 3" in text
        assert "repro_queue_depth 2" in text
        assert 'repro_claim_s_bucket{le="+Inf"} 1' in text
        assert "repro_claim_s_count 1" in text
        assert "repro_rows_done 5" in text
        # Buckets are cumulative: every finite bound >= 0.005 includes it.
        assert 'repro_claim_s_bucket{le="0.005"} 1' in text
        assert 'repro_claim_s_bucket{le="60.0"} 1' in text


class TestEventBuffer:
    def test_emit_and_drain(self):
        events.emit("client.call", op="op-1", actor="t", duration=0.1)
        events.emit("server.dispatch", op="op-1")
        assert events.pending() == 2
        spans = events.drain()
        assert [s["kind"] for s in spans] == ["client.call", "server.dispatch"]
        assert spans[0]["op"] == "op-1"
        assert spans[0]["duration"] == pytest.approx(0.1)
        assert events.pending() == 0

    def test_buffer_is_bounded(self):
        for i in range(events.MAX_BUFFERED_SPANS + 50):
            events.emit("k", op=str(i))
        spans = events.drain()
        assert len(spans) == events.MAX_BUFFERED_SPANS
        # Oldest spans were evicted, newest retained.
        assert spans[-1]["op"] == str(events.MAX_BUFFERED_SPANS + 49)

    def test_span_context_manager_times_block(self):
        with events.span("worker.cell", op="op-2", detail={"row_id": 3}):
            pass
        (span_row,) = events.drain()
        assert span_row["kind"] == "worker.cell"
        assert span_row["op"] == "op-2"
        assert span_row["duration"] >= 0.0
        assert span_row["detail"]["row_id"] == 3

    def test_span_context_manager_records_error(self):
        with pytest.raises(ValueError):
            with events.span("worker.cell", op="op-3"):
                raise ValueError("boom")
        (span_row,) = events.drain()
        assert span_row["detail"]["error"] == "ValueError"

    def test_flush_is_best_effort(self):
        class BrokenStore:
            def record_events(self, spans):
                raise RuntimeError("mid-restart")

        events.emit("k", op="op-4")
        assert events.flush(BrokenStore()) == 0
        assert events.pending() == 0  # dropped, not requeued
        counters = metrics.snapshot()["counters"]
        assert counters["events.flush_errors"] == 1
        assert counters["events.spans_dropped"] == 1

    def test_chains_groups_by_op(self):
        spans = [
            {"kind": "server.dispatch", "op": "a", "ts": 2.0},
            {"kind": "client.call", "op": "a", "ts": 1.0},
            {"kind": "worker.cell", "op": None, "ts": 3.0},
            {"kind": "client.call", "op": "b", "ts": 4.0},
        ]
        grouped = events.chains(spans)
        assert set(grouped) == {"a", "b"}
        assert [s["kind"] for s in grouped["a"]] == ["client.call", "server.dispatch"]


class TestEventsTable:
    def test_record_and_fetch_round_trip(self, db_path):
        with ExperimentStore(db_path) as store:
            count = store.record_events(
                [
                    {"kind": "client.call", "op": "op-a", "actor": "c", "ts": 1.0},
                    {
                        "kind": "server.dispatch",
                        "op": "op-a",
                        "duration": 0.25,
                        "detail": {"method": "complete"},
                    },
                    {"kind": "worker.cell", "op": "op-b", "ts": 2.0},
                ]
            )
            assert count == 3
            rows = store.fetch_events()
            assert [r["kind"] for r in rows] == [
                "client.call",
                "server.dispatch",
                "worker.cell",
            ]
            assert rows[1]["detail"] == {"method": "complete"}
            assert rows[1]["duration"] == pytest.approx(0.25)

    def test_fetch_filters_by_op_and_kind(self, db_path):
        with ExperimentStore(db_path) as store:
            store.record_events(
                [
                    {"kind": "client.call", "op": "op-a"},
                    {"kind": "worker.cell", "op": "op-a"},
                    {"kind": "client.call", "op": "op-b"},
                ]
            )
            by_op = store.fetch_events(op="op-a")
            assert [r["kind"] for r in by_op] == ["client.call", "worker.cell"]
            by_kind = store.fetch_events(kinds=["client.call"])
            assert {r["op"] for r in by_kind} == {"op-a", "op-b"}

    def test_retention_trims_oldest(self, db_path):
        with ExperimentStore(db_path) as store:
            store.record_events(
                [{"kind": "k", "op": str(i)} for i in range(10)], retain=3
            )
            rows = store.fetch_events()
            assert [r["op"] for r in rows] == ["7", "8", "9"]

    def test_fetch_limit_returns_newest(self, db_path):
        with ExperimentStore(db_path) as store:
            store.record_events([{"kind": "k", "op": str(i)} for i in range(5)])
            rows = store.fetch_events(limit=2)
            assert [r["op"] for r in rows] == ["3", "4"]

    def test_empty_batch_is_noop(self, db_path):
        with ExperimentStore(db_path) as store:
            assert store.record_events([]) == 0
            assert store.fetch_events() == []

    def test_remote_parity(self, db_path):
        with ExperimentStore(db_path):
            pass
        with StoreServer(db_path, port=0).start() as server:
            with RemoteStore(server.url) as remote:
                assert remote.record_events([{"kind": "k", "op": "op-r"}]) == 1
                rows = remote.fetch_events(op="op-r")
                assert len(rows) == 1 and rows[0]["kind"] == "k"


class TestDashboardSnapshot:
    def test_snapshot_shape_on_empty_store(self, db_path):
        with ExperimentStore(db_path) as store:
            snap = build_snapshot(store)
        assert snap["totals"]["total"] == 0
        assert snap["experiments"] == {}
        assert snap["service"] is None
        assert snap["spans"] == {"recent": [], "chains": {}}
        assert set(snap["metrics"]) == {"counters", "gauges", "histograms"}
        json.dumps(snap)  # the whole snapshot must be JSON-serializable

    def test_snapshot_counts_rows(self, db_path):
        with ExperimentStore(db_path) as store:
            populate(store, ["smoke"], quick=True, seed=0)
            snap = build_snapshot(store)
            assert snap["totals"]["pending"] == snap["totals"]["total"] > 0
            assert "smoke" in snap["experiments"]


class TestDashboardServer:
    def test_endpoints_serve_live_store(self, db_path):
        with ExperimentStore(db_path) as store:
            populate(store, ["smoke"], quick=True, seed=0)
        with DashboardServer(db_path, port=0, refresh_s=0.0).start() as server:
            page = _get(server.url).decode()
            assert "repro orch dashboard" in page
            snap = json.loads(_get(server.url + "snapshot.json"))
            assert snap["totals"]["total"] > 0
            text = _get(server.url + "metrics").decode()
            assert "repro_store_rows_pending" in text
            assert "repro_store_rows_done 0" in text

    def test_unknown_route_is_404(self, db_path):
        with ExperimentStore(db_path):
            pass
        with DashboardServer(db_path, port=0, refresh_s=0.0).start() as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server.url + "nope")
            assert excinfo.value.code == 404


class TestLiveDrainAcceptance:
    """The ISSUE acceptance path: dashboard observing a live remote drain."""

    def test_counters_advance_and_chains_correlate(self, db_path):
        with ExperimentStore(db_path) as store:
            populate(store, ["smoke"], quick=True, seed=0)
        with StoreServer(db_path, port=0).start() as server:
            with DashboardServer(
                server.url,
                token=None,
                port=0,
                refresh_s=0.0,
            ).start() as dash:
                before = json.loads(_get(dash.url + "snapshot.json"))
                assert before["totals"]["done"] == 0

                report = run_workers(
                    server.url, ["smoke"], workers=2, stale_after=0.0
                )
                assert report.errors == 0 and report.done > 0

                after = json.loads(_get(dash.url + "snapshot.json"))
                text = _get(dash.url + "metrics").decode()

        # Claim/complete counters advanced monotonically across the drain.
        assert after["totals"]["done"] > before["totals"]["done"]
        assert after["totals"]["claimed"] >= after["totals"]["done"]
        assert after["totals"]["completions"] >= report.done
        assert f"repro_store_rows_done {after['totals']['done']}" in text
        assert f"repro_store_completions {after['totals']['completions']}" in text

        # At least one op-id ties all three hops of the chain together:
        # client.call -> server.dispatch -> worker.cell.
        chains = after["spans"]["chains"]
        full = [
            op
            for op, spans in chains.items()
            if {"client.call", "server.dispatch", "worker.cell"}
            <= {s["kind"] for s in spans}
        ]
        assert full, f"no complete span chain in {sorted(chains)}"
        for op in full:
            kinds = [s["kind"] for s in chains[op]]
            assert kinds.index("client.call") < kinds.index("worker.cell")

    def test_status_json_matches_snapshot_shape(self, db_path, capsys):
        from repro.cli import main

        with ExperimentStore(db_path) as store:
            populate(store, ["smoke"], quick=True, seed=0)
        assert main(["orch", "status", "--db", str(db_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) >= {"totals", "experiments", "spans", "metrics"}
        assert payload["totals"]["pending"] > 0
