"""Unit tests for scaling and geometric rounding (Section 2)."""

from __future__ import annotations

import math

import pytest

from repro.core import Instance
from repro.eptas import round_instance, round_up_to_power, scale_and_round


class TestRoundUpToPower:
    def test_result_is_power_of_one_plus_eps(self):
        eps = 0.25
        for size in (0.013, 0.2, 0.77, 1.0, 3.5, 11.0):
            rounded = round_up_to_power(size, eps)
            exponent = math.log(rounded, 1 + eps)
            assert abs(exponent - round(exponent)) < 1e-6

    def test_never_smaller_and_within_factor(self):
        eps = 0.5
        for size in (0.01, 0.5, 0.9, 1.0, 7.3):
            rounded = round_up_to_power(size, eps)
            assert rounded >= size - 1e-12
            assert rounded <= size * (1 + eps) + 1e-12

    def test_exact_powers_stay_fixed(self):
        eps = 0.5
        for exponent in (-3, -1, 0, 2, 5):
            value = (1 + eps) ** exponent
            assert round_up_to_power(value, eps) == pytest.approx(value)

    def test_zero_stays_zero(self):
        assert round_up_to_power(0.0, 0.25) == 0.0


class TestRoundInstance:
    def test_all_sizes_rounded(self, uniform_instance):
        eps = 0.25
        rounded = round_instance(uniform_instance, eps)
        assert rounded.num_jobs == uniform_instance.num_jobs
        for original, new in zip(uniform_instance.jobs, rounded.jobs):
            assert new.id == original.id
            assert new.bag == original.bag
            assert original.size <= new.size <= original.size * (1 + eps) + 1e-12

    def test_total_work_bounded(self, uniform_instance):
        eps = 0.5
        rounded = round_instance(uniform_instance, eps)
        assert rounded.total_work <= (1 + eps) * uniform_instance.total_work + 1e-9


class TestScaleAndRound:
    def test_scaling_normalises_guess(self, uniform_instance):
        guess = 3.7
        result = scale_and_round(uniform_instance, 0.25, guess)
        assert result.scale == pytest.approx(1 / guess)
        # Converting a makespan back recovers the original units.
        assert result.to_original_makespan(1.0) == pytest.approx(guess)

    def test_assignment_transfer_makespan(self):
        instance = Instance.from_sizes([2.0, 1.0], bags=[0, 1], num_machines=2)
        result = scale_and_round(instance, 0.5, 2.0)
        # job sizes become 1.0 and 0.5 -> rounded to powers of 1.5: 1.0, 0.5->? 0.5 is not a power of 1.5
        for original, scaled in zip(instance.jobs, result.instance.jobs):
            assert scaled.size >= original.size / 2.0 - 1e-12

    def test_invalid_guess_rejected(self, uniform_instance):
        with pytest.raises(ValueError):
            scale_and_round(uniform_instance, 0.25, 0.0)
