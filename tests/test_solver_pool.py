"""Tests for the async subprocess solver pool (repro.solver.pool).

Covers the reliability contract of ISSUE 2:

* ``solve_many`` preserves request order;
* a solver server that crashes mid-solve is restarted and the request is
  retried (and cleanly raises once retries are exhausted);
* a per-solve hard timeout cancels the solve without poisoning the pool;
* the pooled service plugs into the EPTAS driver's speculative search.

The chaos backend is registered at import time so the ``fork``-started
server processes inherit it.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.eptas import EptasConfig, eptas_schedule
from repro.generators import uniform_random_instance
from repro.milp import LinearModel, MilpSolution, SolutionStatus
from repro.solver import (
    BackendSpec,
    SolveRequest,
    SolverPool,
    SolverPoolTimeoutError,
    SolverServerCrashError,
    pooled_service_scope,
    register_backend,
    unregister_backend,
)


class ChaosBackend:
    """A backend with scriptable failure modes for pool testing."""

    name = "chaos"
    version = "1"

    def solve(self, model, *, time_limit, mip_rel_gap, options):
        if options.get("sleep"):
            time.sleep(float(options["sleep"]))
        if options.get("crash"):
            os._exit(17)
        sentinel = options.get("crash_unless_file")
        if sentinel and not os.path.exists(sentinel):
            # Crash exactly once: leave a marker so the retried attempt
            # (on the restarted server) succeeds.
            with open(sentinel, "w"):
                pass
            os._exit(17)
        return MilpSolution(
            status=SolutionStatus.OPTIMAL, objective=float(options.get("value", 0.0))
        )


register_backend(ChaosBackend(), replace=True)


def _trivial_model() -> LinearModel:
    return LinearModel("trivial")


@pytest.fixture(scope="module")
def pool():
    with SolverPool(2, max_retries=1) as shared:
        yield shared


class TestSolveMany:
    def test_preserves_order(self, pool):
        requests = [
            SolveRequest(model=_trivial_model(), spec=BackendSpec.make("chaos", value=i))
            for i in range(10)
        ]
        solutions = pool.solve_many(requests)
        assert [solution.objective for solution in solutions] == [float(i) for i in range(10)]

    def test_real_backend_matches_inline(self, pool):
        from repro.milp import solve_with_scipy

        models = []
        for target in (1.5, 2.5, 3.5, 4.5):
            model = LinearModel(f"m{target}")
            model.add_variable("x", integer=True, objective=1.0)
            model.add_ge("c", {"x": 1.0}, target)
            models.append(model)
        pooled = pool.solve_many([SolveRequest(model=model) for model in models])
        inline = [solve_with_scipy(model) for model in models]
        assert [s.objective for s in pooled] == [s.objective for s in inline]
        assert all(s.status is SolutionStatus.OPTIMAL for s in pooled)


class TestCrashRecovery:
    def test_crash_once_restarts_and_retries(self, pool, tmp_path):
        sentinel = tmp_path / "crash-once"
        restarts_before = pool.stats().restarts
        future = pool.submit(
            _trivial_model(),
            spec=BackendSpec.make("chaos", crash_unless_file=str(sentinel), value=42.0),
        )
        assert future.result(timeout=60).objective == 42.0
        assert pool.stats().restarts > restarts_before

    def test_repeated_crash_raises_cleanly(self, pool):
        future = pool.submit(_trivial_model(), spec=BackendSpec.make("chaos", crash=True))
        with pytest.raises(SolverServerCrashError):
            future.result(timeout=60)
        # The pool is not poisoned: fresh servers keep solving.
        ok = pool.submit(_trivial_model(), spec=BackendSpec.make("chaos", value=1.0))
        assert ok.result(timeout=60).objective == 1.0


class TestTimeouts:
    def test_hard_timeout_cancels_without_poisoning(self, pool):
        slow = pool.submit(
            _trivial_model(),
            spec=BackendSpec.make("chaos", sleep=60),
            hard_timeout=1.0,
        )
        started = time.monotonic()
        with pytest.raises(SolverPoolTimeoutError):
            slow.result(timeout=60)
        assert time.monotonic() - started < 30
        # Later solves on the restarted server succeed.
        ok = pool.submit(_trivial_model(), spec=BackendSpec.make("chaos", value=5.0))
        assert ok.result(timeout=60).objective == 5.0
        assert pool.stats().timeouts >= 1


class TestErrorAndCancelSemantics:
    def test_library_errors_keep_their_type_across_the_pipe(self, pool):
        """A SolverLimitError raised in a server must arrive as itself."""
        from repro.core.errors import SolverLimitError
        from repro.milp import solve_model

        model = LinearModel()
        for index in range(6):
            model.add_variable(f"x_{index}", integer=True, upper=1.0, objective=-float(index + 1))
        model.add_le("cap", {f"x_{index}": 1.0 for index in range(6)}, 2.0)
        spec = BackendSpec.make("bnb", max_nodes=0, raise_on_limit=True)
        with pytest.raises(SolverLimitError):
            solve_model(model, backend=spec)  # inline reference behaviour
        future = pool.submit(model, spec=spec)
        with pytest.raises(SolverLimitError) as excinfo:
            future.result(timeout=60)
        assert hasattr(excinfo.value, "remote_traceback")

    def test_cancel_while_queued_does_not_poison_the_pool(self, pool):
        # Occupy both servers, queue one more, cancel it before dispatch.
        blockers = [
            pool.submit(_trivial_model(), spec=BackendSpec.make("chaos", sleep=2))
            for _ in range(2)
        ]
        queued = pool.submit(_trivial_model(), spec=BackendSpec.make("chaos", value=9.0))
        assert queued.cancel()
        for blocker in blockers:
            blocker.result(timeout=60)
        ok = pool.submit(_trivial_model(), spec=BackendSpec.make("chaos", value=4.0))
        assert ok.result(timeout=60).objective == 4.0
        assert queued.cancelled()


class TestPooledServiceIntegration:
    def test_service_degrades_timeout_to_limit_status(self):
        with pooled_service_scope(1) as service:
            requests = [
                SolveRequest(
                    model=_trivial_model(),
                    spec=BackendSpec.make("chaos", sleep=60),
                    hard_timeout=1.0,
                ),
                SolveRequest(model=_trivial_model(), spec=BackendSpec.make("chaos", value=3.0)),
            ]
            solutions = service.solve_many(requests)
        assert solutions[0].status is SolutionStatus.LIMIT
        assert solutions[1].objective == 3.0
        assert solutions[1].telemetry is not None and solutions[1].telemetry.pooled

    def test_speculative_eptas_matches_sequential(self):
        instance = uniform_random_instance(
            num_jobs=12, num_machines=3, num_bags=5, seed=7
        ).instance
        sequential = eptas_schedule(instance, eps=0.5)
        config = EptasConfig(eps=0.5, speculative_guesses=2)
        with pooled_service_scope(2):
            speculative = eptas_schedule(instance, eps=0.5, config=config)
        assert speculative.makespan <= sequential.makespan + 1e-9
        speculative.schedule.validate(require_complete=True)


class TestParentDeathWatchdog:
    def test_sigkilled_pool_owner_does_not_strand_servers(self, tmp_path):
        """Solver servers must exit when their owner dies hard.

        ``daemon=True`` only cleans children up on a *graceful* parent exit,
        and under ``fork`` the child inherits the parent's end of its own
        pipe, so SIGKILL of the owner produces neither atexit cleanup nor
        pipe EOF.  The server loop's re-parenting watchdog is what keeps a
        hard-killed ``solver-serve`` host from accumulating orphans.
        """
        import signal
        import subprocess
        import sys

        script = (
            "import time\n"
            "from repro.solver.pool import SolverPool\n"
            "pool = SolverPool(num_servers=1)\n"
            "print(f'CHILD={pool._servers[0].process.pid}', flush=True)\n"
            "time.sleep(60)\n"
        )
        repo_src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
        owner = subprocess.Popen(
            [sys.executable, "-c", script],
            stdout=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            line = owner.stdout.readline()
            child_pid = int(line.strip().split("=", 1)[1])
            os.kill(owner.pid, signal.SIGKILL)
            owner.wait()
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if _gone_or_zombie(child_pid):
                    break
                time.sleep(0.1)
            assert _gone_or_zombie(child_pid), (
                f"solver server {child_pid} survived SIGKILL of its owner"
            )
        finally:
            if owner.poll() is None:
                owner.kill()
            owner.stdout.close()
            try:
                os.kill(child_pid, signal.SIGKILL)
            except (ProcessLookupError, UnboundLocalError):
                pass


def _gone_or_zombie(pid: int) -> bool:
    """True once *pid* has exited (reaped, or left as an unreaped zombie)."""
    try:
        with open(f"/proc/{pid}/stat") as handle:
            state = handle.read().rsplit(") ", 1)[1].split()[0]
    except (FileNotFoundError, ProcessLookupError, IndexError):
        return True
    return state == "Z"


def teardown_module(module):
    unregister_backend("chaos")
