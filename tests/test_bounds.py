"""Unit tests for :mod:`repro.bounds`."""

from __future__ import annotations

import pytest

from repro.bounds import (
    area_lower_bound,
    bag_cardinality_lower_bound,
    best_lower_bound,
    combined_lower_bound,
    lp_relaxation_lower_bound,
    max_job_lower_bound,
    pairwise_lower_bound,
)
from repro.core import Instance
from repro.exact import brute_force_optimum
from repro.generators import uniform_random_instance


class TestIndividualBounds:
    def test_area_bound(self, tiny_instance):
        assert area_lower_bound(tiny_instance) == pytest.approx(4.0)

    def test_max_job_bound(self, tiny_instance):
        assert max_job_lower_bound(tiny_instance) == 3.0

    def test_pairwise_bound_plain(self):
        # 3 machines, 4 equal jobs: two of the top 4 must share a machine.
        instance = Instance.without_bags([5, 5, 5, 5], num_machines=3)
        assert pairwise_lower_bound(instance) == 10.0

    def test_pairwise_bound_no_extra_jobs(self):
        instance = Instance.without_bags([5, 5], num_machines=3)
        assert pairwise_lower_bound(instance) == 0.0

    def test_bag_cardinality_full_bag(self, full_bag_instance):
        # bag 0 has m=3 jobs of size 2, extra jobs of size 1 exist.
        assert bag_cardinality_lower_bound(full_bag_instance) == pytest.approx(3.0)

    def test_bag_cardinality_infeasible_bag(self):
        instance = Instance.from_sizes(
            [1, 1, 1], bags=[0, 0, 0], num_machines=2, validate=False
        )
        assert bag_cardinality_lower_bound(instance) == float("inf")

    def test_bag_cardinality_no_full_bags(self, singleton_bags_instance):
        assert bag_cardinality_lower_bound(singleton_bags_instance) == 0.0


class TestCombinedBounds:
    def test_combined_is_max(self, tiny_instance):
        combined = combined_lower_bound(tiny_instance)
        assert combined == max(
            area_lower_bound(tiny_instance),
            max_job_lower_bound(tiny_instance),
            pairwise_lower_bound(tiny_instance),
            bag_cardinality_lower_bound(tiny_instance),
        )

    def test_report_structure(self, tiny_instance):
        report = best_lower_bound(tiny_instance, use_lp=True)
        data = report.to_dict()
        assert data["best"] >= data["area"]
        assert data["lp_relaxation"] is not None

    def test_report_without_lp(self, tiny_instance):
        report = best_lower_bound(tiny_instance)
        assert report.lp_relaxation is None


class TestSoundness:
    """Every bound must be at most the true optimum."""

    @pytest.mark.parametrize("seed", range(5))
    def test_bounds_below_optimum_on_random_instances(self, seed):
        instance = uniform_random_instance(
            num_jobs=9, num_machines=3, num_bags=4, seed=seed
        ).instance
        optimum = brute_force_optimum(instance)
        report = best_lower_bound(instance, use_lp=True)
        assert report.best <= optimum + 1e-9
        assert report.lp_relaxation <= optimum + 1e-6

    def test_lp_bound_at_least_area_and_max(self, uniform_instance):
        lp = lp_relaxation_lower_bound(uniform_instance)
        assert lp >= area_lower_bound(uniform_instance) - 1e-6
        assert lp >= max_job_lower_bound(uniform_instance) - 1e-6

    def test_figure1_bound_is_tight(self, figure1_instance):
        # The figure-1 family has optimum exactly 1.
        assert combined_lower_bound(figure1_instance) == pytest.approx(1.0)
